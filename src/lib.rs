//! # qcc — aggregated-instruction quantum compiler
//!
//! Umbrella crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of *Optimized Compilation of Aggregated Instructions for
//! Realistic Quantum Computers* (Shi et al., ASPLOS 2019).
//!
//! The sub-crates are re-exported under short module names:
//!
//! * [`math`] — dense complex linear algebra (matrices, expm, fidelities);
//! * [`graph`] — matchings, recursive-bisection partitioning, graph generators;
//! * [`ir`] — gates, circuits, QASM, commutation analysis;
//! * [`sim`] — state-vector simulation and pulse propagation (verification);
//! * [`hw`] — device topologies, control limits, latency models;
//! * [`control`] — the GRAPE optimal-control unit;
//! * [`compiler`] — the aggregated-instruction compilation pipeline itself: a
//!   composable pass pipeline (`compiler::passes`), `Strategy` preset recipes,
//!   and the batch `CompileService` front door;
//! * [`workloads`] — the Table 3 benchmark generators.
//!
//! ## Quick start
//!
//! ```
//! use qcc::compiler::{compile_with_default_model, CompilerOptions, Strategy};
//! use qcc::hw::Device;
//! use qcc::workloads::qaoa;
//!
//! let circuit = qaoa::paper_triangle_example();
//! let device = Device::transmon_line(3);
//! let baseline = compile_with_default_model(
//!     &circuit, &device, &CompilerOptions::strategy(Strategy::IsaBaseline));
//! let aggregated = compile_with_default_model(
//!     &circuit, &device, &CompilerOptions::strategy(Strategy::ClsAggregation));
//! assert!(aggregated.total_latency_ns < baseline.total_latency_ns);
//! ```

#![warn(missing_docs)]

pub use qcc_control as control;
pub use qcc_core as compiler;
pub use qcc_graph as graph;
pub use qcc_hw as hw;
pub use qcc_ir as ir;
pub use qcc_math as math;
pub use qcc_sim as sim;
pub use qcc_workloads as workloads;
