//! Vendored stand-in for `serde`.
//!
//! The build environment is offline, so this crate provides just the surface
//! the workspace uses: the `Serialize`/`Deserialize` marker traits and their
//! derives. No code in the workspace serializes through serde yet; the derives
//! keep annotated types source-compatible with the real crate so it can be
//! swapped in when a registry is available.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (lifetime elided: nothing in
/// the workspace names the `'de` parameter).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
