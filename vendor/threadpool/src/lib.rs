//! Vendored stand-in for a scoped thread pool, backed by `std::thread::scope`.
//!
//! The build environment is offline, so this crate supplies the minimal
//! parallel-iteration API the workspace uses: a [`ThreadPool`] describing a
//! worker count and a [`ThreadPool::parallel_map`] that fans a read-only
//! closure out over a slice and collects the results **in input order**,
//! regardless of which worker computed which item. Workers are plain scoped
//! `std::thread`s spawned per call — there is no persistent worker registry to
//! shut down, and borrowed (non-`'static`) data flows into the closure freely.
//!
//! Work distribution is dynamic: workers pull the next unclaimed index from a
//! shared atomic counter, so a few expensive items (e.g. GRAPE solves) do not
//! leave the other workers idle behind a static chunking.
//!
//! The default worker count honours the `QCC_THREADS` environment variable
//! (any integer ≥ 1) and otherwise falls back to
//! [`std::thread::available_parallelism`]. A pool of one thread runs entirely
//! on the caller's thread — no spawning, no synchronization.
//!
//! The [`mpmc`] module supplies the other primitive the staged pass pipeline
//! needs: a small bounded multi-producer/multi-consumer channel for typed
//! hand-offs between stage workers.

pub mod mpmc;

use std::sync::atomic::{AtomicUsize, Ordering};

/// A scoped thread pool: a worker count plus per-call scoped spawning.
///
/// Cheap to create and copy (it holds no threads of its own); every
/// [`parallel_map`](ThreadPool::parallel_map) call spawns its workers inside a
/// [`std::thread::scope`] and joins them before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

impl ThreadPool {
    /// Creates a pool with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: every `parallel_map` runs serially on the
    /// calling thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool sized by [`default_parallelism`].
    pub fn with_default_parallelism() -> Self {
        Self::new(default_parallelism())
    }

    /// Number of workers this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every element of `items` and returns the results in
    /// input order.
    ///
    /// With more than one worker and more than one item, the items are pulled
    /// dynamically by scoped worker threads; the output order (and therefore
    /// the result, for a deterministic `f`) is identical to the serial
    /// `items.iter().map(f).collect()`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` after all workers have stopped, re-raising
    /// the original payload (so the caller sees the real panic message).
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // Re-raise a worker panic with its original payload so the
                    // caller sees the real message (e.g. a compile error), not
                    // a generic "worker panicked" wrapper.
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in buckets.into_iter().flatten() {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index computed exactly once"))
            .collect()
    }
}

/// Worker count used by [`ThreadPool::with_default_parallelism`]: the
/// `QCC_THREADS` environment variable when set to an integer ≥ 1, otherwise
/// the machine's available parallelism (1 if that cannot be determined).
///
/// # Panics
///
/// Panics with a message naming the offending value when `QCC_THREADS` is set
/// but is not an integer ≥ 1. A typo'd thread count must be a loud startup
/// error, not a silent fallback to a different parallelism level.
pub fn default_parallelism() -> usize {
    match parse_thread_count(std::env::var("QCC_THREADS").ok().as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(e) => panic!("{e}"),
    }
}

/// Parses a `QCC_THREADS` value: `None` (unset) or an empty/whitespace string
/// means "use the machine default" (`Ok(None)`); an integer ≥ 1 is the
/// explicit count; anything else is an error describing the offending value.
pub fn parse_thread_count(value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = value else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!(
            "invalid QCC_THREADS value '{raw}': expected an integer >= 1"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.parallel_map(&items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_is_computed_exactly_once() {
        let items: Vec<usize> = (0..256).collect();
        let calls = AtomicUsize::new(0);
        let pool = ThreadPool::new(8);
        let out = pool.parallel_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), items.len());
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn borrowed_data_flows_into_the_closure() {
        // The whole point of the scoped design: no 'static bound.
        let owned = vec![String::from("a"), String::from("bb")];
        let pool = ThreadPool::new(4);
        let lens = pool.parallel_map(&owned, |s| s.len());
        assert_eq!(lens, vec![1, 2]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panics_propagate_with_their_original_payload() {
        let pool = ThreadPool::new(2);
        let items: Vec<u32> = (0..8).collect();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_map(&items, |&x| {
                if x == 3 {
                    panic!("boom {x}");
                }
                x
            })
        }))
        .unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .expect("payload is the formatted panic message");
        assert_eq!(msg, "boom 3");
    }

    #[test]
    fn thread_env_parsing_accepts_integers_and_rejects_garbage() {
        // Pure-function tests: mutating the real environment would race with
        // sibling test threads reading it (a libc-level hazard).
        assert_eq!(parse_thread_count(None), Ok(None));
        assert_eq!(parse_thread_count(Some("")), Ok(None));
        assert_eq!(parse_thread_count(Some("  ")), Ok(None));
        assert_eq!(parse_thread_count(Some("1")), Ok(Some(1)));
        assert_eq!(parse_thread_count(Some(" 8 ")), Ok(Some(8)));
        for bad in ["0", "-2", "four", "2.5", "8x"] {
            let err = parse_thread_count(Some(bad)).unwrap_err();
            assert!(err.contains("QCC_THREADS"), "{err}");
            assert!(err.contains(bad), "error must name the value: {err}");
        }
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::serial().threads(), 1);
        assert!(ThreadPool::with_default_parallelism().threads() >= 1);
    }

    #[test]
    fn uneven_work_is_balanced_dynamically() {
        // One very slow item must not serialize the rest behind it: with the
        // atomic-counter pull model the other worker drains the cheap items.
        // (Correctness check only — timing is not asserted.)
        let items: Vec<u64> = (0..16).collect();
        let pool = ThreadPool::new(2);
        let out = pool.parallel_map(&items, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }
}
