//! A small bounded multi-producer/multi-consumer channel.
//!
//! The staged pass pipeline needs a typed hand-off queue between stage
//! workers: bounded (so a slow stage exerts backpressure on the stage ahead
//! of it instead of buffering unboundedly), cloneable on both ends (so any
//! number of workers can feed or drain one stage), and free of any global
//! registry (the channel is just an `Arc` around a mutex-protected deque,
//! matching the offline, vendored design of this crate).
//!
//! Semantics mirror the std mpsc API where they overlap:
//!
//! * [`Sender::send`] blocks while the channel is full and fails only when
//!   every [`Receiver`] is gone.
//! * [`Sender::try_send`] never blocks: a full channel returns
//!   [`TrySendError::Full`] with the value handed back.
//! * [`Receiver::recv`] blocks while the channel is empty and fails only when
//!   it is empty **and** every [`Sender`] is gone — in-flight values are
//!   always delivered before disconnection is reported.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Creates a bounded channel with room for `capacity` queued values
/// (clamped to ≥ 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`]: every receiver was dropped. The
/// unsent value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the value is handed back.
    Full(T),
    /// Every receiver was dropped; the value is handed back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender was dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender was dropped.
    Disconnected,
}

/// The sending half of a [`bounded`] channel. Cloneable: any number of
/// producers may feed the same queue.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full. Fails (handing
    /// the value back) only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("mpmc poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("mpmc poisoned");
        }
    }

    /// Enqueues `value` without blocking; a full channel returns
    /// [`TrySendError::Full`] immediately.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("mpmc poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.queue.len() >= inner.capacity {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("mpmc poisoned").senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("mpmc poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake blocked receivers so they can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half of a [`bounded`] channel. Cloneable: any number of
/// consumers may drain the same queue; each value is delivered to exactly
/// one of them.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Dequeues the next value, blocking while the channel is empty. Fails
    /// only when the channel is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("mpmc poisoned");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("mpmc poisoned");
        }
    }

    /// Dequeues the next value without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("mpmc poisoned");
        if let Some(value) = inner.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Drains every value currently queued, without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.shared.inner.lock().expect("mpmc poisoned");
        let drained: Vec<T> = inner.queue.drain(..).collect();
        if !drained.is_empty() {
            self.shared.not_full.notify_all();
        }
        drained
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("mpmc poisoned").receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("mpmc poisoned");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Wake blocked senders so they can observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_arrive_in_fifo_order() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_reports_full_and_hands_the_value_back() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let (tx, _rx) = bounded(0);
        tx.try_send(7).unwrap();
        assert_eq!(tx.try_send(8), Err(TrySendError::Full(8)));
    }

    #[test]
    fn receivers_drain_in_flight_values_before_seeing_disconnect() {
        let (tx, rx) = bounded(4);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Ok("b"));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn senders_fail_once_every_receiver_is_gone() {
        let (tx, rx) = bounded(2);
        let rx2 = rx.clone();
        drop(rx);
        tx.send(1).unwrap();
        drop(rx2);
        assert_eq!(tx.send(2), Err(SendError(2)));
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn blocked_sender_resumes_when_space_frees_up() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        std::thread::scope(|s| {
            let producer = s.spawn(|| tx.send(1));
            // The consumer frees the slot; the blocked producer completes.
            assert_eq!(rx.recv(), Ok(0));
            producer.join().unwrap().unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn each_value_is_delivered_to_exactly_one_consumer() {
        let (tx, rx) = bounded(64);
        let n = 200usize;
        let received = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        });
        assert_eq!(received, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn drain_empties_the_queue_without_blocking() {
        let (tx, rx) = bounded(8);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain(), vec![0, 1, 2]);
        assert!(rx.drain().is_empty());
    }
}
