//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot` API subset the workspace uses — `Mutex` and
//! `RwLock` whose `lock`/`read`/`write` return guards directly instead of
//! `Result`s. Poisoning is ignored (`into_inner` on a poisoned lock), which
//! matches parking_lot's no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that does not poison and whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
