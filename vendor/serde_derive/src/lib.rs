//! Vendored stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the minimal surface it uses. No type in this workspace relies on a
//! `Serialize`/`Deserialize` *bound* — the derives exist so annotated types
//! keep their public serde-ready shape — so the derives expand to marker-trait
//! impls and nothing more.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name (the identifier following `struct`/`enum`) and any
/// generic parameter names so the emitted impl matches the item's generics.
fn type_header(input: &TokenStream) -> Option<(String, Vec<String>)> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let mut generics = Vec::new();
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            tokens.next();
                            let mut depth = 1usize;
                            let mut expect_param = true;
                            for tt in tokens.by_ref() {
                                match tt {
                                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                    TokenTree::Punct(p) if p.as_char() == '>' => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    // Lifetime (`'a`), const (`const N:
                                    // usize`), and bounded (`T: Clone`)
                                    // parameters would need to be reproduced
                                    // verbatim in the impl header; this simple
                                    // parser can't, so emit no impl at all —
                                    // the traits are only markers, nothing
                                    // bounds on them.
                                    TokenTree::Punct(p)
                                        if (p.as_char() == '\'' || p.as_char() == ':')
                                            && depth == 1 =>
                                    {
                                        return None;
                                    }
                                    TokenTree::Ident(g)
                                        if depth == 1
                                            && expect_param
                                            && g.to_string() == "const" =>
                                    {
                                        return None;
                                    }
                                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                        expect_param = true;
                                    }
                                    TokenTree::Ident(g) if depth == 1 && expect_param => {
                                        generics.push(g.to_string());
                                        expect_param = false;
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    return Some((name.to_string(), generics));
                }
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let Some((name, generics)) = type_header(&input) else {
        return TokenStream::new();
    };
    let impl_src = if generics.is_empty() {
        format!("impl {trait_path} for {name} {{}}")
    } else {
        let params = generics.join(", ");
        format!("impl<{params}> {trait_path} for {name}<{params}> {{}}")
    };
    impl_src.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits a marker-trait impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// No-op `Deserialize` derive: emits a marker-trait impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
