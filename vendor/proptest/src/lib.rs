//! Vendored mini property-testing harness.
//!
//! The build environment is offline, so this crate reimplements the subset of
//! the `proptest` API the workspace's test-suites use: the [`Strategy`] trait
//! with `prop_map` / `prop_filter_map`, range and tuple strategies,
//! `prop::collection::vec`, `prop_oneof!`, `ProptestConfig::with_cases`, and
//! the `proptest!` / `prop_assert*` macros. Test cases are driven by a
//! deterministic seeded RNG, so failures are reproducible run-to-run; there is
//! no shrinking — a failing case reports its case index and the assertion
//! message instead.

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Fixed base seed; each test function offsets it by a hash of its name so
    /// sibling tests explore different streams.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Error produced by a failing `prop_assert*` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!`-block configuration.
///
/// Rejection sampling in `prop_filter` / `prop_filter_map` uses a fixed
/// 65 536-retry budget; it is not configurable here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is just
/// a samplable distribution.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, rejecting (and resampling) when it
    /// returns `None`. `whence` labels the rejection in the panic message if
    /// the retry budget is exhausted.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps only values for which `f` returns `true`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        for _ in 0..65_536 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map retry budget exhausted: {}", self.whence);
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..65_536 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over non-empty `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategies over standard collections (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "empty length range for collection::vec"
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop` (so `prop::collection::vec` works).
pub mod prop {
    pub use crate::collection;
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a `proptest!` test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else {}` (as in std's `assert!`) rather than `if !cond`,
        // so float comparisons don't trip `clippy::neg_cmp_op_on_partial_ord`
        // at every call site.
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: `{}` == `{}` (left: {:?}, right: {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: `{}` != `{}` (both: {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Mirrors `proptest::proptest!` for the syntax
/// subset used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::__rt::rng_for(concat!(module_path!(), "::", stringify!($name)));
                // Bind each strategy once, then shadow the binding with the
                // sampled value inside the per-case scope.
                $(let $arg = $strategy;)*
                for case in 0..config.cases {
                    let result: $crate::TestCaseResult = (|| {
                        $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = result {
                        panic!(
                            "proptest `{}` failed on case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn halves() -> impl Strategy<Value = f64> {
        (0.0f64..10.0).prop_map(|x| x / 2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn map_and_filter_compose(x in halves(), pair in (0usize..4, 0usize..4)
            .prop_filter_map("distinct", |(a, b)| if a == b { None } else { Some((a, b)) }))
        {
            prop_assert!(x < 5.0);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![0usize..3, 10usize..13], 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 3 || (10..13).contains(&x)));
        }

        #[test]
        fn early_return_is_allowed(x in 0usize..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }
}
