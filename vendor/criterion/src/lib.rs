//! Vendored minimal `criterion`-compatible bench harness.
//!
//! The build environment is offline, so this crate supplies the subset of the
//! criterion API the `qcc-bench` targets use: `Criterion::{default,
//! sample_size, bench_function}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Each of the `sample_size`
//! iterations is timed individually and the report shows min/median/max over
//! those samples, so per-PR comparisons are keyed to the min (the least
//! noise-contaminated estimate) rather than a single wall-clock mean. There
//! is still no plotting, outlier rejection, or baseline storage.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives timed iterations inside `bench_function` closures.
pub struct Bencher {
    iterations: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per iteration of this bencher's budget, recording
    /// each iteration as its own sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        self.samples.reserve(self.iterations as usize);
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Order statistics over one benchmark's samples, in nanoseconds per
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample (mean of the middle two for even sample counts).
    pub median_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl SampleStats {
    /// Computes min/median/max over `samples`; `None` when empty.
    pub fn from_samples(samples: &[Duration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        let mid = ns.len() / 2;
        let median_ns = if ns.len().is_multiple_of(2) {
            (ns[mid - 1] + ns[mid]) / 2.0
        } else {
            ns[mid]
        };
        Some(Self {
            min_ns: ns[0],
            median_ns,
            max_ns: ns[ns.len() - 1],
        })
    }
}

/// Minimal benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Honors `--test` (run each routine once, as `cargo test --benches`
    /// does with real criterion) but otherwise ignores CLI arguments.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.sample_size = 1;
        }
        self
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let stats = SampleStats::from_samples(&b.samples).unwrap_or(SampleStats {
            min_ns: 0.0,
            median_ns: 0.0,
            max_ns: 0.0,
        });
        println!(
            "bench: {id:<60} {:>14.1} ns/iter (min) median {:>14.1} max {:>14.1} (n={})",
            stats.min_ns,
            stats.median_ns,
            stats.max_ns,
            b.samples.len()
        );
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_over_odd_sample_count() {
        let samples = [
            Duration::from_nanos(30),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
        ];
        let s = SampleStats::from_samples(&samples).unwrap();
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.median_ns, 20.0);
        assert_eq!(s.max_ns, 30.0);
    }

    #[test]
    fn stats_over_even_sample_count_average_the_middle_pair() {
        let samples = [
            Duration::from_nanos(40),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
            Duration::from_nanos(30),
        ];
        let s = SampleStats::from_samples(&samples).unwrap();
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.median_ns, 25.0);
        assert_eq!(s.max_ns, 40.0);
    }

    #[test]
    fn stats_over_empty_samples_is_none() {
        assert!(SampleStats::from_samples(&[]).is_none());
    }

    #[test]
    fn bencher_records_one_sample_per_iteration() {
        let mut b = Bencher {
            iterations: 5,
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 5);
        assert_eq!(b.samples.len(), 5);
    }
}
