//! Vendored minimal `criterion`-compatible bench harness.
//!
//! The build environment is offline, so this crate supplies the subset of the
//! criterion API the `qcc-bench` targets use: `Criterion::{default,
//! sample_size, bench_function}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock mean over `sample_size` iterations — good enough for the
//! relative comparisons the experiment benches print, with no statistics,
//! plotting, or baseline storage.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives timed iterations inside `bench_function` closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Minimal benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Honors `--test` (run each routine once, as `cargo test --benches`
    /// does with real criterion) but otherwise ignores CLI arguments.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.sample_size = 1;
        }
        self
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = b.elapsed.as_nanos() as f64 / b.iterations.max(1) as f64;
        println!(
            "bench: {id:<60} {:>14.1} ns/iter (n={})",
            mean_ns, b.iterations
        );
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
