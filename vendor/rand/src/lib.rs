//! Vendored stand-in for `rand` 0.8.
//!
//! The build environment is offline, so this crate implements the subset of
//! the `rand` API the workspace uses: a deterministic seedable `StdRng`
//! (xoshiro256++ seeded through SplitMix64), `Rng::{gen_range, gen_bool, gen}`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and `SliceRandom::{shuffle,
//! choose}`. Determinism for a fixed seed is the property the test-suites rely
//! on; statistical quality of xoshiro256++ is more than adequate for the
//! randomized linear-algebra and graph generators here.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from `Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A range that supports uniform sampling (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = f64::sample(rng) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Draws a value from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's deterministic default RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
