//! Property tests pinning the blocked and AVX2 matmul/expm kernels
//! bit-identical (`to_bits()` equality, not epsilon) to the scalar reference
//! path, across random shapes including non-square, 1×1, and matrices with
//! exact-zero entries that exercise the scalar loop's zero-skip branch.

use proptest::prelude::*;
use qcc_math::kernels::avx2_supported;
use qcc_math::{expm, matmul_with, CMatrix, ExpmWorkspace, MatmulKernel, MatmulWorkspace, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random matrix whose entries include exact zeros (with probability
/// `zero_p`), so the scalar loop's `a[i][k] == 0` skip path is exercised and
/// must be matched exactly by the tiled kernels.
fn random_with_zeros(rng: &mut StdRng, rows: usize, cols: usize, zero_p: f64) -> CMatrix {
    let mut m = CMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            if rng.gen::<f64>() >= zero_p {
                m[(i, j)] = C64::new(rng.gen_range(-2.0..2.0f64), rng.gen_range(-2.0..2.0f64));
            }
        }
    }
    m
}

/// Asserts `a` and `b` are bit-identical in every component.
fn assert_bits_equal(a: &CMatrix, b: &CMatrix, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.rows(), b.rows());
    prop_assert_eq!(a.cols(), b.cols());
    for (idx, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        let same = x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits();
        prop_assert!(
            same,
            "{} kernel differs from scalar at flat index {}",
            what,
            idx
        );
    }
    Ok(())
}

/// Tiers to compare against the scalar reference on this host.
fn candidate_kernels() -> Vec<MatmulKernel> {
    let mut tiers = vec![MatmulKernel::Blocked];
    if avx2_supported() {
        tiers.push(MatmulKernel::Avx2);
    }
    tiers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked and AVX2 matmul agree with the scalar ikj loop bit-for-bit on
    /// random (including non-square and degenerate 1×1) shapes.
    #[test]
    fn matmul_tiers_bit_identical_to_scalar(
        seed in 0u64..10_000,
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        zero_p in 0.0f64..0.9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_with_zeros(&mut rng, m, k, zero_p);
        let b = random_with_zeros(&mut rng, k, n, zero_p);

        let mut reference = CMatrix::default();
        a.matmul_into(&b, &mut reference);

        for kernel in candidate_kernels() {
            let mut ws = MatmulWorkspace::with_kernel(kernel);
            let mut out = CMatrix::default();
            matmul_with(&a, &b, &mut out, &mut ws);
            assert_bits_equal(&reference, &out, kernel.name())?;
        }
    }

    /// The 1×1 and single-row/column edges hold bit-for-bit on every tier.
    #[test]
    fn matmul_tiers_bit_identical_on_degenerate_shapes(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for (m, k, n) in [(1, 1, 1), (1, 7, 1), (5, 1, 3), (1, 1, 9), (3, 4, 1)] {
            let a = random_with_zeros(&mut rng, m, k, 0.2);
            let b = random_with_zeros(&mut rng, k, n, 0.2);
            let mut reference = CMatrix::default();
            a.matmul_into(&b, &mut reference);
            for kernel in candidate_kernels() {
                let mut ws = MatmulWorkspace::with_kernel(kernel);
                let mut out = CMatrix::default();
                matmul_with(&a, &b, &mut out, &mut ws);
                assert_bits_equal(&reference, &out, kernel.name())?;
            }
        }
    }

    /// `expm` routed through the blocked / AVX2 workspaces is bit-identical to
    /// `expm` over the scalar workspace.
    #[test]
    fn expm_tiers_bit_identical_to_scalar(
        seed in 0u64..10_000,
        dim in 1usize..12,
        scale in 0.05f64..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = random_with_zeros(&mut rng, dim, dim, 0.3);
        // Anti-Hermitian-ish scaling keeps the norm in the Padé sweet spot
        // without changing which code path runs.
        for v in 0..dim {
            for w in 0..dim {
                h[(v, w)] *= C64::new(scale, 0.0);
            }
        }

        let mut scalar_ws = ExpmWorkspace::with_kernel(MatmulKernel::Scalar);
        let reference = expm::expm_with(&h, &mut scalar_ws);

        for kernel in candidate_kernels() {
            let mut ws = ExpmWorkspace::with_kernel(kernel);
            let tiered = expm::expm_with(&h, &mut ws);
            assert_bits_equal(&reference, &tiered, kernel.name())?;
        }
    }
}
