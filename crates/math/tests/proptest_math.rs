//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use qcc_math::{expm, pauli, random_unitary, CMatrix, C64};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_angle() -> impl Strategy<Value = f64> {
    -6.0f64..6.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-qubit rotations compose additively about the same axis.
    #[test]
    fn rotations_compose_additively(a in small_angle(), b in small_angle()) {
        let lhs = pauli::rz(a).matmul(&pauli::rz(b));
        let rhs = pauli::rz(a + b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
        let lhs_x = pauli::rx(a).matmul(&pauli::rx(b));
        prop_assert!(lhs_x.approx_eq(&pauli::rx(a + b), 1e-10));
    }

    /// Rotation matrices are unitary for any angle.
    #[test]
    fn rotations_are_unitary(theta in small_angle()) {
        prop_assert!(pauli::rx(theta).is_unitary(1e-11));
        prop_assert!(pauli::ry(theta).is_unitary(1e-11));
        prop_assert!(pauli::rz(theta).is_unitary(1e-11));
        prop_assert!(pauli::zz_rotation(theta).is_unitary(1e-11));
        prop_assert!(pauli::xy_rotation(theta).is_unitary(1e-11));
    }

    /// The ZZ rotation always equals the CNOT–Rz–CNOT decomposition.
    #[test]
    fn zz_block_identity(theta in small_angle()) {
        let block = pauli::cnot()
            .matmul(&pauli::rz(theta).embed(2, &[1]))
            .matmul(&pauli::cnot());
        prop_assert!(block.approx_eq(&pauli::zz_rotation(theta), 1e-10));
    }

    /// Products of random unitaries stay unitary; daggers invert them.
    #[test]
    fn unitary_group_closure(seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_unitary(&mut rng, 4);
        let b = random_unitary(&mut rng, 4);
        let prod = a.matmul(&b);
        prop_assert!(prod.is_unitary(1e-8));
        prop_assert!(prod.matmul(&prod.dagger()).is_identity(1e-8));
    }

    /// expm of an anti-Hermitian matrix is unitary.
    #[test]
    fn expm_antihermitian_unitary(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = qcc_math::random_hermitian(&mut rng, 4);
        let u = expm::propagator(&h, 0.7);
        prop_assert!(u.is_unitary(1e-8));
    }

    /// Kronecker product dimensions multiply and unitarity is preserved.
    #[test]
    fn kron_of_unitaries_is_unitary(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_unitary(&mut rng, 2);
        let b = random_unitary(&mut rng, 4);
        let k = a.kron(&b);
        prop_assert_eq!(k.rows(), 8);
        prop_assert!(k.is_unitary(1e-8));
    }

    /// Trace is linear and invariant under cyclic permutation.
    #[test]
    fn trace_cyclic(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = qcc_math::random_complex_matrix(&mut rng, 3, 3);
        let b = qcc_math::random_complex_matrix(&mut rng, 3, 3);
        let ab = a.matmul(&b).trace();
        let ba = b.matmul(&a).trace();
        prop_assert!(ab.approx_eq(ba, 1e-9));
    }

    /// LU solve really solves the system.
    #[test]
    fn lu_solve_random_system(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random unitaries are always well-conditioned.
        let a = random_unitary(&mut rng, 5);
        let x: Vec<C64> = (0..5).map(|i| C64::new(i as f64 * 0.3 - 1.0, 0.1 * i as f64)).collect();
        let b = a.matvec(&x);
        let solved = qcc_math::solve(&a, &b).unwrap();
        for (got, want) in solved.iter().zip(x.iter()) {
            prop_assert!(got.approx_eq(*want, 1e-8));
        }
    }
}

#[test]
fn embed_is_consistent_with_kron_ordering() {
    // Embedding on the first / last qubit of 3 equals explicit kron products.
    let x = pauli::sigma_x();
    let id = CMatrix::identity(2);
    let on0 = x.embed(3, &[0]);
    let expected0 = pauli::kron_all(&[x.clone(), id.clone(), id.clone()]);
    assert!(on0.approx_eq(&expected0, 1e-13));
    let on2 = x.embed(3, &[2]);
    let expected2 = pauli::kron_all(&[id.clone(), id, x]);
    assert!(on2.approx_eq(&expected2, 1e-13));
}
