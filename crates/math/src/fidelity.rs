//! Fidelity and distance measures between unitaries and states.
//!
//! These definitions match the ones used by GRAPE-style optimal control: the
//! target functional is the phase-insensitive gate fidelity
//! `F = |tr(U_target† U)|² / d²`.

use crate::complex::C64;
use crate::matrix::CMatrix;

/// Phase-insensitive gate (process) fidelity between two unitaries.
///
/// `F = |tr(A† B)|² / d²` — equal to 1 exactly when `A` and `B` agree up to a
/// global phase.
///
/// # Panics
///
/// Panics if the matrices are not square or their dimensions differ.
pub fn gate_fidelity(a: &CMatrix, b: &CMatrix) -> f64 {
    assert!(
        a.is_square() && b.is_square(),
        "fidelity of non-square matrices"
    );
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    let d = a.rows() as f64;
    let overlap: C64 = a.hs_inner(b);
    overlap.norm_sqr() / (d * d)
}

/// Gate infidelity `1 - F`.
pub fn gate_infidelity(a: &CMatrix, b: &CMatrix) -> f64 {
    1.0 - gate_fidelity(a, b)
}

/// Average gate fidelity for a d-dimensional system,
/// `F_avg = (d·F_pro + 1) / (d + 1)` where `F_pro` is [`gate_fidelity`].
pub fn average_gate_fidelity(a: &CMatrix, b: &CMatrix) -> f64 {
    let d = a.rows() as f64;
    (d * gate_fidelity(a, b) + 1.0) / (d + 1.0)
}

/// Squared overlap `|⟨a|b⟩|²` between two pure states.
///
/// # Panics
///
/// Panics if the state vectors have different lengths.
pub fn state_fidelity(a: &[C64], b: &[C64]) -> f64 {
    assert_eq!(a.len(), b.len(), "state dimension mismatch");
    let overlap: C64 = a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum();
    overlap.norm_sqr()
}

/// Frobenius distance `‖A - B‖_F`.
pub fn frobenius_distance(a: &CMatrix, b: &CMatrix) -> f64 {
    (a - b).frobenius_norm()
}

/// Phase-insensitive distance: minimum Frobenius distance over a global phase,
/// `min_φ ‖A - e^{iφ}B‖_F`.
pub fn phase_invariant_distance(a: &CMatrix, b: &CMatrix) -> f64 {
    let overlap = b.hs_inner(a);
    let phase = if overlap.abs() < 1e-300 {
        C64::one()
    } else {
        overlap / C64::real(overlap.abs())
    };
    frobenius_distance(a, &b.scale(phase))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::expm::propagator;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    #[test]
    fn identical_unitaries_have_unit_fidelity() {
        let x = pauli_x();
        assert!((gate_fidelity(&x, &x) - 1.0).abs() < 1e-14);
        assert!(gate_infidelity(&x, &x).abs() < 1e-14);
    }

    #[test]
    fn global_phase_ignored() {
        let x = pauli_x();
        let phased = x.scale(C64::cis(2.13));
        assert!((gate_fidelity(&x, &phased) - 1.0).abs() < 1e-13);
        assert!(phase_invariant_distance(&x, &phased) < 1e-12);
    }

    #[test]
    fn orthogonal_gates_have_low_fidelity() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        // tr(X† I) = 0
        assert!(gate_fidelity(&x, &id) < 1e-14);
        assert!((average_gate_fidelity(&x, &id) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_continuity_under_small_rotation() {
        let id = CMatrix::identity(2);
        let slightly = propagator(&pauli_x(), 0.01);
        let f = gate_fidelity(&id, &slightly);
        assert!(f > 0.9999 && f <= 1.0);
    }

    #[test]
    fn state_fidelity_basics() {
        let zero = vec![C64::one(), C64::zero()];
        let one = vec![C64::zero(), C64::one()];
        let plus = vec![c64(1.0 / 2f64.sqrt(), 0.0), c64(1.0 / 2f64.sqrt(), 0.0)];
        assert!((state_fidelity(&zero, &zero) - 1.0).abs() < 1e-14);
        assert!(state_fidelity(&zero, &one) < 1e-14);
        assert!((state_fidelity(&zero, &plus) - 0.5).abs() < 1e-14);
    }

    #[test]
    fn frobenius_distance_zero_iff_equal() {
        let x = pauli_x();
        assert!(frobenius_distance(&x, &x) < 1e-15);
        assert!(frobenius_distance(&x, &CMatrix::identity(2)) > 1.0);
    }
}
