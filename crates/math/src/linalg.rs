//! Dense linear solvers: LU decomposition with partial pivoting, linear solves,
//! matrix inversion, and determinants for complex matrices.
//!
//! These are needed by the Padé matrix exponential ([`crate::expm::expm`]) and by the
//! optimal-control unit's diagnostics.

use crate::complex::C64;
use crate::matrix::CMatrix;
use std::fmt;

/// Error type for the linear-algebra routines in this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is numerically singular (a pivot fell below tolerance).
    Singular,
    /// The operation requires a square matrix.
    NotSquare,
    /// Right-hand side dimensions do not match the matrix.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotSquare => write!(f, "operation requires a square matrix"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// LU decomposition with partial pivoting: `P A = L U`.
///
/// The factors are stored packed in a single matrix (unit lower-triangular `L`
/// below the diagonal, `U` on and above it) together with the row permutation.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: CMatrix,
    /// Row permutation: row `i` of `PA` is row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Parity of the permutation (+1 or -1), used for determinants.
    sign: f64,
}

impl LuDecomposition {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] when a pivot is (near) zero.
    pub fn new(a: &CMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Find pivot: row with largest modulus in this column at/below diag.
            let mut pivot_row = col;
            let mut pivot_abs = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_abs {
                    pivot_abs = v;
                    pivot_row = r;
                }
            }
            if pivot_abs < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = lu[(col, c)];
                    lu[(col, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(col, col)];
            let pivot_inv = pivot.recip();
            for r in (col + 1)..n {
                let factor = lu[(r, col)] * pivot_inv;
                lu[(r, col)] = factor;
                for c in (col + 1)..n {
                    let sub = factor * lu[(col, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &[C64]) -> Result<Vec<C64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        // Apply permutation.
        let mut y: Vec<C64> = (0..n).map(|i| b[self.perm[i]]).collect();
        // Forward substitution with unit lower-triangular L.
        for i in 0..n {
            for j in 0..i {
                let sub = self.lu[(i, j)] * y[j];
                y[i] -= sub;
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let sub = self.lu[(i, j)] * y[j];
                y[i] -= sub;
            }
            y[i] /= self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B` has the wrong row count.
    pub fn solve_matrix(&self, b: &CMatrix) -> Result<CMatrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = CMatrix::zeros(n, b.cols());
        let mut col = vec![C64::zero(); n];
        for c in 0..b.cols() {
            for r in 0..n {
                col[r] = b[(r, c)];
            }
            let x = self.solve_vec(&col)?;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> C64 {
        let n = self.dim();
        let mut d = C64::real(self.sign);
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Solves `A x = b`.
///
/// # Errors
///
/// Propagates factorization errors; see [`LuDecomposition::new`].
pub fn solve(a: &CMatrix, b: &[C64]) -> Result<Vec<C64>, LinalgError> {
    LuDecomposition::new(a)?.solve_vec(b)
}

/// Solves `A X = B`.
///
/// # Errors
///
/// Propagates factorization errors; see [`LuDecomposition::new`].
pub fn solve_matrix(a: &CMatrix, b: &CMatrix) -> Result<CMatrix, LinalgError> {
    LuDecomposition::new(a)?.solve_matrix(b)
}

/// Computes the matrix inverse.
///
/// # Errors
///
/// Returns an error when the matrix is singular or not square.
pub fn inverse(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    let n = a.rows();
    solve_matrix(a, &CMatrix::identity(n))
}

/// Determinant via LU decomposition.
///
/// # Errors
///
/// Returns an error when the matrix is not square. A singular matrix returns
/// `Ok(0)` only when the factorization succeeds before hitting a zero pivot;
/// otherwise [`LinalgError::Singular`] is reported.
pub fn det(a: &CMatrix) -> Result<C64, LinalgError> {
    match LuDecomposition::new(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LinalgError::Singular) => Ok(C64::zero()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn test_matrix() -> CMatrix {
        CMatrix::from_rows(&[
            &[c64(2.0, 1.0), c64(0.0, -1.0), c64(3.0, 0.0)],
            &[c64(1.0, 0.0), c64(4.0, 2.0), c64(-1.0, 1.0)],
            &[c64(0.0, 2.0), c64(1.0, -1.0), c64(5.0, 0.0)],
        ])
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = test_matrix();
        let x_true = vec![c64(1.0, -1.0), c64(0.5, 2.0), c64(-2.0, 0.25)];
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).expect("solvable");
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!(got.approx_eq(*want, 1e-10), "{got} vs {want}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = test_matrix();
        let inv = inverse(&a).expect("invertible");
        assert!(a.matmul(&inv).is_identity(1e-10));
        assert!(inv.matmul(&a).is_identity(1e-10));
    }

    #[test]
    fn determinant_of_identity_and_scaled() {
        let id = CMatrix::identity(4);
        assert!(det(&id).unwrap().approx_eq(C64::one(), 1e-12));
        let two_id = id.scale_re(2.0);
        assert!(det(&two_id).unwrap().approx_eq(c64(16.0, 0.0), 1e-12));
    }

    #[test]
    fn determinant_sign_under_row_swap() {
        // A permutation matrix swapping two rows has determinant -1.
        let p = CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(det(&p).unwrap().approx_eq(c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn singular_matrix_reports_zero_det_or_error() {
        let s = CMatrix::from_real(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        let d = det(&s).unwrap();
        assert!(d.abs() < 1e-10);
        assert_eq!(
            solve(&s, &[C64::one(), C64::one()]),
            Err(LinalgError::Singular)
        );
    }

    #[test]
    fn non_square_rejected() {
        let a = CMatrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare)
        ));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = test_matrix();
        let b = CMatrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.0, 1.0)],
            &[c64(2.0, -1.0), c64(1.0, 1.0)],
            &[c64(0.0, 0.0), c64(3.0, 0.0)],
        ]);
        let x = solve_matrix(&a, &b).unwrap();
        assert!(a.matmul(&x).approx_eq(&b, 1e-10));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = test_matrix();
        let lu = LuDecomposition::new(&a).unwrap();
        assert_eq!(
            lu.solve_vec(&[C64::one(); 2]),
            Err(LinalgError::DimensionMismatch)
        );
    }
}
