//! Tiered numeric kernels for the dense complex matmul hot path.
//!
//! Every GRAPE-priced compile bottoms out in chains of [`CMatrix`] products
//! (the propagator products of a gradient iteration, the Padé polynomial of
//! `expm`), so this module rebuilds that one operation as a three-tier engine
//! while keeping every tier **bit-identical** to the original scalar loop:
//!
//! * **`scalar`** — the reference ikj loop of [`CMatrix::matmul_into`]:
//!   row-major AoS `Vec<C64>`, per-element accumulation in increasing-`k`
//!   order, zero rows of the left operand skipped.
//! * **`blocked`** — cache-blocked over j/k tiles with the right operand
//!   packed into contiguous split re/im planes ("SoA") at tile-pack time.
//!   The inner loop becomes four independent unit-stride `f64` streams that
//!   the autovectorizer turns into packed mul/add (SSE2 at the default
//!   target), with no FMA contraction — Rust never fuses `a*b + c` — so each
//!   per-element operation is the same IEEE op the scalar tier performs.
//! * **`avx2`** — the same blocked/SoA structure with the inner loop written
//!   in explicit 256-bit `std::arch` intrinsics (`_mm256_mul_pd` /
//!   `_mm256_add_pd` / `_mm256_sub_pd`; deliberately *not* `fmadd`, which
//!   would change rounding). Compiled on `x86_64` only and selected only when
//!   `is_x86_feature_detected!("avx2")` holds at runtime.
//!
//! # Bit-identity argument
//!
//! For a fixed output element `(i, j)` the scalar loop accumulates
//! `out[i][j] += a[i][k] * b[k][j]` for `k = 0, 1, …` in increasing order,
//! skipping `k` where `a[i][k]` is exactly zero, and each step performs the
//! complex-multiply-accumulate as six scalar IEEE ops in a fixed order
//! (`re·re`, `im·im`, sub, `re·im`, `im·re`, add, then the two accumulating
//! adds). The blocked tiers visit k-blocks in increasing order and `k` within
//! each block in increasing order, so the per-element `k` sequence — and the
//! zero-skip decisions, which depend only on `a[i][k]` — are unchanged; the
//! split-plane representation changes *where* `b[k][j]` is loaded from, not
//! the value or the operations. Vector lanes map to distinct `j` columns, and
//! IEEE arithmetic is deterministic per lane, so the SIMD tier computes the
//! same bit pattern as the scalar tier. The proptests in
//! `tests/kernel_equivalence.rs` pin this with `to_bits()` equality.
//!
//! # Dispatch
//!
//! [`selected_kernel`] picks the process-wide default tier once: the
//! `QCC_KERNEL` environment variable (`scalar` / `blocked` / `avx2` / `auto`,
//! strictly parsed — a typo or an `avx2` request on hardware without AVX2 is
//! a loud startup error naming the value, like `QCC_THREADS`) or, unset, the
//! best tier the host supports. [`MatmulWorkspace::new`] inherits that
//! selection and additionally falls back to the scalar tier for small
//! products (fewer than [`SMALL_PRODUCT_FLOPS`] multiply-accumulates), where
//! tile packing costs more than it saves; [`MatmulWorkspace::with_kernel`]
//! pins a tier exactly — no size fallback — which is what the equivalence
//! tests and the kernel bench matrix use.

use crate::matrix::CMatrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One tier of the matmul engine. All tiers produce bit-identical results;
/// they differ only in speed (see the module docs for the argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulKernel {
    /// Reference scalar ikj loop over the row-major AoS storage.
    Scalar,
    /// Cache-blocked tiles over packed split re/im planes; relies on the
    /// autovectorizer for SIMD at whatever width the target baseline allows.
    Blocked,
    /// Blocked tiles with an explicit 256-bit AVX2 inner loop (`x86_64` with
    /// runtime-detected AVX2 only).
    Avx2,
}

impl MatmulKernel {
    /// Canonical lower-case name, as accepted by `QCC_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            MatmulKernel::Scalar => "scalar",
            MatmulKernel::Blocked => "blocked",
            MatmulKernel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for MatmulKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Returns `true` when the running CPU supports the AVX2 tier.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Pure parsing unit behind [`selected_kernel`]: `None` or an empty or
/// whitespace value (or `auto`) selects the best tier `avx2_supported`
/// allows; otherwise the value must name a tier, case-insensitively, and the
/// error names the offending value. Requesting `avx2` on a host without AVX2
/// is an error, not a silent downgrade — a pinned kernel that cannot run must
/// fail loudly.
pub fn kernel_from(value: Option<&str>, avx2_supported: bool) -> Result<MatmulKernel, String> {
    let auto = || {
        if avx2_supported {
            MatmulKernel::Avx2
        } else {
            MatmulKernel::Blocked
        }
    };
    let Some(raw) = value else {
        return Ok(auto());
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(auto());
    }
    match trimmed.to_ascii_lowercase().as_str() {
        "auto" => Ok(auto()),
        "scalar" => Ok(MatmulKernel::Scalar),
        "blocked" => Ok(MatmulKernel::Blocked),
        "avx2" if avx2_supported => Ok(MatmulKernel::Avx2),
        "avx2" => Err(format!(
            "invalid QCC_KERNEL value '{raw}': the avx2 kernel is not supported on this host"
        )),
        _ => Err(format!(
            "invalid QCC_KERNEL value '{raw}': expected scalar, blocked, avx2, or auto"
        )),
    }
}

/// The process-wide kernel selection: `QCC_KERNEL` if set (strictly parsed),
/// otherwise the best tier the host supports. Resolved once and cached.
///
/// # Panics
///
/// Panics with a message naming the offending value when `QCC_KERNEL` is set
/// to an unknown tier or to `avx2` on hardware without AVX2.
pub fn selected_kernel() -> MatmulKernel {
    static SELECTED: OnceLock<MatmulKernel> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        kernel_from(
            std::env::var("QCC_KERNEL").ok().as_deref(),
            avx2_supported(),
        )
        .unwrap_or_else(|e| panic!("{e}"))
    })
}

/// Products smaller than this many complex multiply-accumulates (`m·p·n`)
/// run the scalar tier under automatic dispatch: below it, packing tiles into
/// planes costs more than the streaming wins. `16³` puts the crossover at a
/// 16×16 product — four-qubit unitaries and up engage the blocked tiers.
pub const SMALL_PRODUCT_FLOPS: usize = 16 * 16 * 16;

/// Cache budget the block sizes are derived from: half of a conservative
/// 512 KiB L2, so the packed tile plus the output row segments it streams
/// against stay resident while every row of the left operand visits the tile.
const TILE_CACHE_BYTES: usize = 512 * 1024 / 2;

/// Columns per tile. Sized so one output row segment (re + im planes) spans a
/// handful of cache lines — long enough to amortize the per-`(i,k)` setup,
/// short enough to leave the budget to the packed right-operand tile.
const BLOCK_J: usize = 128;

/// Rows of the right operand per tile, derived from the cache budget: the
/// packed tile holds `BLOCK_K × BLOCK_J` complex entries as two f64 planes.
const BLOCK_K: usize = TILE_CACHE_BYTES / (2 * 8 * BLOCK_J); // = 128

/// Nanoseconds spent inside [`matmul_with`] across the whole process (every
/// workspace, every thread). End-to-end benches read deltas of this to
/// attribute a compile's wall clock to the kernel tier.
static TOTAL_KERNEL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Total time spent inside the matmul kernels since process start, in
/// seconds. `expm` and the GRAPE propagator chain route their products
/// through [`matmul_with`], so this is the "GRAPE kernel seconds" of a
/// compile (the LU solve of `expm` is the only numeric cost it misses).
/// Under concurrent compiles the counter aggregates across threads.
pub fn total_kernel_seconds() -> f64 {
    TOTAL_KERNEL_NANOS.load(Ordering::Relaxed) as f64 * 1e-9
}

/// Reusable scratch of the blocked tiers plus the kernel-time counter: the
/// packed right-operand tile planes, the split-plane output accumulators, and
/// the per-workspace nanosecond/call counters. One workspace serves any
/// number of products of any shapes; buffers grow to the largest shape seen.
#[derive(Debug)]
pub struct MatmulWorkspace {
    kernel: MatmulKernel,
    /// `false` for [`with_kernel`](Self::with_kernel) workspaces: the pinned
    /// tier runs at every size, with no small-product scalar fallback.
    auto_small_fallback: bool,
    /// Packed right-operand tile, real plane (`BLOCK_K × BLOCK_J` max).
    bre: Vec<f64>,
    /// Packed right-operand tile, imaginary plane.
    bim: Vec<f64>,
    /// Output accumulator, real plane (`rows × cols` of the product).
    ore: Vec<f64>,
    /// Output accumulator, imaginary plane.
    oim: Vec<f64>,
    nanos: u64,
    calls: u64,
}

impl Default for MatmulWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl MatmulWorkspace {
    /// A workspace on the process-wide [`selected_kernel`], with the
    /// small-product scalar fallback enabled.
    pub fn new() -> Self {
        Self {
            kernel: selected_kernel(),
            auto_small_fallback: true,
            bre: Vec::new(),
            bim: Vec::new(),
            ore: Vec::new(),
            oim: Vec::new(),
            nanos: 0,
            calls: 0,
        }
    }

    /// A workspace pinned to `kernel` at every product size (no small-product
    /// fallback) — the form the equivalence tests and the kernel bench matrix
    /// use to exercise a tier exactly.
    pub fn with_kernel(kernel: MatmulKernel) -> Self {
        Self {
            kernel,
            auto_small_fallback: false,
            ..Self::new()
        }
    }

    /// The tier this workspace dispatches to (before the small-product
    /// fallback, if enabled).
    pub fn kernel(&self) -> MatmulKernel {
        self.kernel
    }

    /// Time spent inside [`matmul_with`] through this workspace, in seconds.
    pub fn kernel_seconds(&self) -> f64 {
        self.nanos as f64 * 1e-9
    }

    /// Number of products computed through this workspace.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The tier a product of `flops = m·p·n` multiply-accumulates will run.
    fn effective_kernel(&self, flops: usize) -> MatmulKernel {
        if self.auto_small_fallback && flops < SMALL_PRODUCT_FLOPS {
            MatmulKernel::Scalar
        } else {
            self.kernel
        }
    }
}

/// Writes `a * b` into `out` through the workspace's kernel tier. Results are
/// bit-for-bit identical to [`CMatrix::matmul_into`] on every tier (see the
/// module docs); `a` and `b` may alias each other (squaring) but neither may
/// alias `out`. Time spent is added to the workspace counter and the
/// process-wide total ([`total_kernel_seconds`]).
///
/// # Panics
///
/// Panics on inner-dimension mismatch or when `out` aliases an operand.
pub fn matmul_with(a: &CMatrix, b: &CMatrix, out: &mut CMatrix, ws: &mut MatmulWorkspace) {
    let started = Instant::now();
    let flops = a.rows() * a.cols() * b.cols();
    match ws.effective_kernel(flops) {
        MatmulKernel::Scalar => a.matmul_into(b, out),
        MatmulKernel::Blocked => matmul_blocked(a, b, out, ws, false),
        MatmulKernel::Avx2 => matmul_blocked(a, b, out, ws, true),
    }
    let elapsed = started.elapsed().as_nanos() as u64;
    ws.nanos += elapsed;
    ws.calls += 1;
    TOTAL_KERNEL_NANOS.fetch_add(elapsed, Ordering::Relaxed);
}

/// The blocked/SoA tiers: j/k tiling with the right operand packed into
/// contiguous re/im planes per tile and the output accumulated in full-size
/// planes, interleaved back into `out` once at the end. `use_avx2` switches
/// the inner loop between the autovectorizable scalar form and the explicit
/// 256-bit intrinsics; everything else is shared.
fn matmul_blocked(
    a: &CMatrix,
    b: &CMatrix,
    out: &mut CMatrix,
    ws: &mut MatmulWorkspace,
    use_avx2: bool,
) {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    assert!(
        !std::ptr::eq(a, out) && !std::ptr::eq(b, out),
        "matmul_with: `out` must not alias an operand"
    );
    let (m, p, n) = (a.rows(), a.cols(), b.cols());

    ws.ore.clear();
    ws.ore.resize(m * n, 0.0);
    ws.oim.clear();
    ws.oim.resize(m * n, 0.0);
    ws.bre.resize(BLOCK_K * BLOCK_J.min(n.max(1)), 0.0);
    ws.bim.resize(BLOCK_K * BLOCK_J.min(n.max(1)), 0.0);

    let a_data = a.as_slice();
    let b_data = b.as_slice();

    let mut jb = 0;
    while jb < n {
        let bj = BLOCK_J.min(n - jb);
        // k-blocks strictly ascending: together with the ascending `kk` loop
        // below this reproduces the scalar tier's per-element k order.
        let mut kb = 0;
        while kb < p {
            let bk = BLOCK_K.min(p - kb);
            // Pack the `bk × bj` tile of `b` into contiguous re/im planes.
            for kk in 0..bk {
                let src = &b_data[(kb + kk) * n + jb..(kb + kk) * n + jb + bj];
                let dst_re = &mut ws.bre[kk * bj..(kk + 1) * bj];
                let dst_im = &mut ws.bim[kk * bj..(kk + 1) * bj];
                for ((dr, di), s) in dst_re.iter_mut().zip(dst_im.iter_mut()).zip(src) {
                    *dr = s.re;
                    *di = s.im;
                }
            }
            for i in 0..m {
                let a_row = &a_data[i * p + kb..i * p + kb + bk];
                let o_re = &mut ws.ore[i * n + jb..i * n + jb + bj];
                let o_im = &mut ws.oim[i * n + jb..i * n + jb + bj];
                for (kk, &aik) in a_row.iter().enumerate() {
                    // Same skip as the scalar tier: it depends only on
                    // a[i][k], so every j lane skips together.
                    if aik.re == 0.0 && aik.im == 0.0 {
                        continue;
                    }
                    let b_re = &ws.bre[kk * bj..(kk + 1) * bj];
                    let b_im = &ws.bim[kk * bj..(kk + 1) * bj];
                    if use_avx2 {
                        // SAFETY: `use_avx2` is only set by kernel selection
                        // paths that verified AVX2 at runtime (or by an
                        // explicit `with_kernel(Avx2)` on such a host).
                        #[cfg(target_arch = "x86_64")]
                        unsafe {
                            axpy_avx2(aik.re, aik.im, b_re, b_im, o_re, o_im);
                        }
                        #[cfg(not(target_arch = "x86_64"))]
                        axpy_planes(aik.re, aik.im, b_re, b_im, o_re, o_im);
                    } else {
                        axpy_planes(aik.re, aik.im, b_re, b_im, o_re, o_im);
                    }
                }
            }
            kb += bk;
        }
        jb += bj;
    }

    // Interleave the planes back into the AoS output.
    reshape_for_product(out, m, n);
    for ((o, &re), &im) in out
        .as_mut_slice()
        .iter_mut()
        .zip(ws.ore.iter())
        .zip(ws.oim.iter())
    {
        o.re = re;
        o.im = im;
    }
}

/// Reshapes `out` to `m × n` reusing its allocation and without zero-filling
/// (the plane interleave overwrites every entry).
fn reshape_for_product(out: &mut CMatrix, m: usize, n: usize) {
    if out.rows() != m || out.cols() != n {
        out.reshape_raw(m, n);
    }
}

/// One rank-1 update row over split planes:
/// `o[j] += (are + i·aim) · (br[j] + i·bim[j])` with exactly the scalar
/// tier's operation order per element — `re·re`, `im·im`, sub; `re·im`,
/// `im·re`, add; then the two accumulating adds. Four independent unit-stride
/// streams; the autovectorizer packs them at the target's native width, and
/// Rust performs no FMA contraction, so each lane is bit-identical to the
/// scalar ops.
#[inline]
fn axpy_planes(are: f64, aim: f64, b_re: &[f64], b_im: &[f64], o_re: &mut [f64], o_im: &mut [f64]) {
    for (((or, oi), &br), &bi) in o_re
        .iter_mut()
        .zip(o_im.iter_mut())
        .zip(b_re.iter())
        .zip(b_im.iter())
    {
        let t_re = are * br - aim * bi;
        let t_im = are * bi + aim * br;
        *or += t_re;
        *oi += t_im;
    }
}

/// [`axpy_planes`] with an explicit 256-bit AVX2 body: `_mm256_mul_pd`,
/// `_mm256_sub_pd`, `_mm256_add_pd` — one IEEE operation per scalar op of the
/// reference loop, deliberately *no* `fmadd` (fusing the multiply-add would
/// change rounding and break bit-identity). The tail shorter than a vector
/// runs the scalar form.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(
    are: f64,
    aim: f64,
    b_re: &[f64],
    b_im: &[f64],
    o_re: &mut [f64],
    o_im: &mut [f64],
) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        _mm256_sub_pd,
    };
    let n = o_re.len();
    let va_re = _mm256_set1_pd(are);
    let va_im = _mm256_set1_pd(aim);
    let lanes = n - n % 4;
    let mut j = 0;
    while j < lanes {
        // SAFETY: `j + 4 <= lanes <= n` bounds every pointer below.
        unsafe {
            let vb_re = _mm256_loadu_pd(b_re.as_ptr().add(j));
            let vb_im = _mm256_loadu_pd(b_im.as_ptr().add(j));
            let t_re = _mm256_sub_pd(_mm256_mul_pd(va_re, vb_re), _mm256_mul_pd(va_im, vb_im));
            let t_im = _mm256_add_pd(_mm256_mul_pd(va_re, vb_im), _mm256_mul_pd(va_im, vb_re));
            let vo_re = _mm256_loadu_pd(o_re.as_ptr().add(j));
            let vo_im = _mm256_loadu_pd(o_im.as_ptr().add(j));
            _mm256_storeu_pd(o_re.as_mut_ptr().add(j), _mm256_add_pd(vo_re, t_re));
            _mm256_storeu_pd(o_im.as_mut_ptr().add(j), _mm256_add_pd(vo_im, t_im));
        }
        j += 4;
    }
    axpy_planes(
        are,
        aim,
        &b_re[lanes..],
        &b_im[lanes..],
        &mut o_re[lanes..],
        &mut o_im[lanes..],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, C64};

    fn bits(m: &CMatrix) -> Vec<(u64, u64)> {
        m.as_slice()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect()
    }

    fn demo(rows: usize, cols: usize, seed: f64) -> CMatrix {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                // Deterministic, irregular, with exact zeros sprinkled in to
                // exercise the skip path.
                let v = ((i * cols + j) as f64 * 0.7310 + seed).sin();
                let w = ((i + 3 * j) as f64 * 1.131 - seed).cos();
                m[(i, j)] = if (i + j) % 5 == 0 {
                    C64::zero()
                } else {
                    c64(v, w * 0.5)
                };
            }
        }
        m
    }

    #[test]
    fn kernel_parsing_selects_and_rejects() {
        for avx2 in [false, true] {
            let auto = if avx2 {
                MatmulKernel::Avx2
            } else {
                MatmulKernel::Blocked
            };
            assert_eq!(kernel_from(None, avx2), Ok(auto));
            assert_eq!(kernel_from(Some(""), avx2), Ok(auto));
            assert_eq!(kernel_from(Some("  "), avx2), Ok(auto));
            assert_eq!(kernel_from(Some("auto"), avx2), Ok(auto));
            assert_eq!(kernel_from(Some("scalar"), avx2), Ok(MatmulKernel::Scalar));
            assert_eq!(
                kernel_from(Some(" Blocked "), avx2),
                Ok(MatmulKernel::Blocked)
            );
        }
        assert_eq!(kernel_from(Some("AVX2"), true), Ok(MatmulKernel::Avx2));
        for bad in ["sse", "fast", "1", "blockedd"] {
            let err = kernel_from(Some(bad), true).unwrap_err();
            assert!(err.contains("QCC_KERNEL"), "{err}");
            assert!(err.contains(bad), "error must name the value: {err}");
        }
    }

    #[test]
    fn avx2_request_on_unsupported_hardware_errors_naming_the_value() {
        let err = kernel_from(Some("avx2"), false).unwrap_err();
        assert!(err.contains("QCC_KERNEL"), "{err}");
        assert!(err.contains("avx2"), "error must name the value: {err}");
        assert!(err.contains("not supported"), "{err}");
    }

    #[test]
    fn blocked_matches_scalar_bit_for_bit_across_shapes() {
        // Shapes straddling the block sizes, non-square, degenerate.
        let shapes = [
            (1, 1, 1),
            (2, 3, 4),
            (7, 1, 9),
            (16, 16, 16),
            (31, 17, 129),
            (5, 140, 3),
            (130, 129, 131),
        ];
        for &(m, p, n) in &shapes {
            let a = demo(m, p, 0.3);
            let b = demo(p, n, 1.7);
            let mut want = CMatrix::zeros(0, 0);
            a.matmul_into(&b, &mut want);
            for kernel in [MatmulKernel::Blocked, MatmulKernel::Avx2] {
                if kernel == MatmulKernel::Avx2 && !avx2_supported() {
                    continue;
                }
                let mut ws = MatmulWorkspace::with_kernel(kernel);
                let mut got = CMatrix::zeros(3, 2); // wrong shape: must reshape
                matmul_with(&a, &b, &mut got, &mut ws);
                assert_eq!(bits(&got), bits(&want), "{kernel} {m}x{p}x{n}");
            }
        }
    }

    #[test]
    fn squaring_aliases_operands_on_every_tier() {
        let a = demo(33, 33, 0.9);
        let mut want = CMatrix::zeros(0, 0);
        a.matmul_into(&a, &mut want);
        for kernel in [
            MatmulKernel::Scalar,
            MatmulKernel::Blocked,
            MatmulKernel::Avx2,
        ] {
            if kernel == MatmulKernel::Avx2 && !avx2_supported() {
                continue;
            }
            let mut ws = MatmulWorkspace::with_kernel(kernel);
            let mut got = CMatrix::zeros(0, 0);
            matmul_with(&a, &a, &mut got, &mut ws);
            assert_eq!(bits(&got), bits(&want), "{kernel}");
        }
    }

    #[test]
    fn auto_workspace_falls_back_to_scalar_below_the_cutoff() {
        let ws = MatmulWorkspace::new();
        assert_eq!(
            ws.effective_kernel(SMALL_PRODUCT_FLOPS - 1),
            MatmulKernel::Scalar
        );
        assert_eq!(ws.effective_kernel(SMALL_PRODUCT_FLOPS), ws.kernel());
        let pinned = MatmulWorkspace::with_kernel(MatmulKernel::Blocked);
        assert_eq!(pinned.effective_kernel(1), MatmulKernel::Blocked);
    }

    #[test]
    fn workspace_counts_calls_and_time() {
        let a = demo(8, 8, 0.1);
        let mut ws = MatmulWorkspace::with_kernel(MatmulKernel::Blocked);
        let mut out = CMatrix::zeros(0, 0);
        let before_total = total_kernel_seconds();
        matmul_with(&a, &a, &mut out, &mut ws);
        matmul_with(&a, &a, &mut out, &mut ws);
        assert_eq!(ws.calls(), 2);
        assert!(ws.kernel_seconds() >= 0.0);
        assert!(total_kernel_seconds() >= before_total);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn blocked_dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let mut ws = MatmulWorkspace::with_kernel(MatmulKernel::Blocked);
        let mut out = CMatrix::zeros(0, 0);
        matmul_with(&a, &b, &mut out, &mut ws);
    }

    #[test]
    fn block_sizes_fit_the_cache_budget() {
        // The packed tile (two f64 planes) must fit the derived budget, and
        // the k block must be a positive multiple of nothing fancier than the
        // formula in the docs.
        const { assert!(BLOCK_K >= 1) };
        assert_eq!(BLOCK_K, TILE_CACHE_BYTES / (2 * 8 * BLOCK_J));
        const { assert!(2 * 8 * BLOCK_K * BLOCK_J <= TILE_CACHE_BYTES) };
    }
}
