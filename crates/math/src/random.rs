//! Random complex matrices and Haar-ish random unitaries for testing.

use crate::complex::C64;
use crate::matrix::CMatrix;
use rand::Rng;

/// Generates a matrix with entries whose real and imaginary parts are drawn
/// from an approximately standard normal distribution.
pub fn random_complex_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> CMatrix {
    let mut m = CMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = C64::new(normal_sample(rng), normal_sample(rng));
        }
    }
    m
}

/// Generates a random Hermitian matrix `(A + A†)/2`.
pub fn random_hermitian<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CMatrix {
    let a = random_complex_matrix(rng, n, n);
    (&a + &a.dagger()).scale_re(0.5)
}

/// Generates a random unitary by QR-orthonormalizing a random complex matrix
/// (modified Gram–Schmidt with phase correction).
///
/// The distribution is close enough to Haar for testing purposes: columns are
/// orthonormal and generically entangling.
pub fn random_unitary<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CMatrix {
    loop {
        let a = random_complex_matrix(rng, n, n);
        if let Some(u) = gram_schmidt(&a) {
            return u;
        }
    }
}

/// Orthonormalizes the columns of `a`. Returns `None` when columns are linearly
/// dependent to working precision.
fn gram_schmidt(a: &CMatrix) -> Option<CMatrix> {
    let n = a.rows();
    let mut cols: Vec<Vec<C64>> = (0..n)
        .map(|j| (0..n).map(|i| a[(i, j)]).collect())
        .collect();
    for j in 0..n {
        for k in 0..j {
            // proj = <q_k, v_j>
            let proj: C64 = cols[k]
                .iter()
                .zip(cols[j].iter())
                .map(|(qk, vj)| qk.conj() * *vj)
                .sum();
            let qk = cols[k].clone();
            for (v, q) in cols[j].iter_mut().zip(qk.iter()) {
                *v -= proj * *q;
            }
        }
        let norm: f64 = cols[j].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm < 1e-10 {
            return None;
        }
        for v in cols[j].iter_mut() {
            *v = *v / norm;
        }
    }
    let mut u = CMatrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            u[(i, j)] = cols[j][i];
        }
    }
    Some(u)
}

/// Box–Muller standard normal sample.
fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 4, 8] {
            let u = random_unitary(&mut rng, n);
            assert!(u.is_unitary(1e-9), "dimension {n}");
        }
    }

    #[test]
    fn random_hermitian_is_hermitian() {
        let mut rng = StdRng::seed_from_u64(11);
        let h = random_hermitian(&mut rng, 6);
        assert!(h.is_hermitian(1e-12));
    }

    #[test]
    fn different_seeds_give_different_matrices() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let ua = random_unitary(&mut a, 4);
        let ub = random_unitary(&mut b, 4);
        assert!(!ua.approx_eq(&ub, 1e-6));
    }

    #[test]
    fn same_seed_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ua = random_unitary(&mut a, 4);
        let ub = random_unitary(&mut b, 4);
        assert!(ua.approx_eq(&ub, 1e-12));
    }
}
