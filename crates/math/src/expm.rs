//! Matrix exponential via scaling-and-squaring with a diagonal Padé approximant.
//!
//! This is the standard Higham-style algorithm specialized for the matrices the
//! optimal-control unit produces (`-i·dt·H` for Hermitian `H`, dimension up to
//! `2^n` for small `n`). A convenience routine for the unitary propagator
//! `exp(-i·H·t)` is provided as well.

use crate::complex::C64;
use crate::kernels::{matmul_with, MatmulKernel, MatmulWorkspace};
use crate::linalg::{solve_matrix, LinalgError};
use crate::matrix::CMatrix;

/// Padé-13 numerator coefficients (same for the denominator with alternating
/// signs), as used by the classic scaling-and-squaring algorithm.
const PADE13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// Reusable scratch for the matrix exponential: every intermediate of the
/// Padé(13) evaluation (`A`'s powers, the two polynomial accumulators, the
/// numerator/denominator) lives in this workspace, so a caller exponentiating
/// many same-dimension matrices — the per-step propagators of a GRAPE
/// iteration — reallocates nothing between calls
/// ([`expm_with`]/[`try_expm_with`]). A fresh workspace starts empty; buffers
/// are shaped on first use. Every matrix product of the evaluation routes
/// through the workspace's [`MatmulWorkspace`], i.e. the tiered kernel engine
/// of [`crate::kernels`] (process-wide [`crate::kernels::selected_kernel`]
/// tier by default, or a tier pinned with [`ExpmWorkspace::with_kernel`]).
#[derive(Debug, Default)]
pub struct ExpmWorkspace {
    scaled: CMatrix,
    a2: CMatrix,
    a4: CMatrix,
    a6: CMatrix,
    poly: CMatrix,
    tail: CMatrix,
    u: CMatrix,
    v: CMatrix,
    id: CMatrix,
    square: CMatrix,
    mm: MatmulWorkspace,
}

impl ExpmWorkspace {
    /// An empty workspace (buffers are allocated lazily by the first call).
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace whose matrix products are pinned to `kernel` at every
    /// size (used by the equivalence tests and the kernel bench matrix).
    pub fn with_kernel(kernel: MatmulKernel) -> Self {
        Self {
            mm: MatmulWorkspace::with_kernel(kernel),
            ..Self::default()
        }
    }

    /// The matmul workspace (kernel tier, time and call counters) backing
    /// this expm scratch.
    pub fn matmul_workspace(&self) -> &MatmulWorkspace {
        &self.mm
    }
}

/// Computes the matrix exponential `e^A` of a square complex matrix.
///
/// Uses the Padé(13) approximant with scaling and squaring; the scaling factor
/// is chosen from the 1-norm of `A`.
///
/// # Panics
///
/// Panics if `a` is not square or if the internal linear solve fails (which can
/// only happen for inputs with non-finite entries).
///
/// # Examples
///
/// ```
/// use qcc_math::{expm, CMatrix};
/// let zero = CMatrix::zeros(4, 4);
/// assert!(expm(&zero).is_identity(1e-12));
/// ```
pub fn expm(a: &CMatrix) -> CMatrix {
    try_expm(a).expect("expm: non-finite input")
}

/// [`expm`] with an explicit scratch workspace — the allocation-free hot path
/// for repeated exponentials of same-dimension matrices.
///
/// # Panics
///
/// Panics under the same conditions as [`expm`].
pub fn expm_with(a: &CMatrix, ws: &mut ExpmWorkspace) -> CMatrix {
    try_expm_with(a, ws).expect("expm: non-finite input")
}

/// Fallible variant of [`expm`].
///
/// # Errors
///
/// Returns a [`LinalgError`] when the Padé denominator cannot be inverted,
/// which only happens for inputs containing NaN/Inf entries.
pub fn try_expm(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    try_expm_with(a, &mut ExpmWorkspace::new())
}

/// Fallible variant of [`expm_with`].
///
/// # Errors
///
/// Returns a [`LinalgError`] when the Padé denominator cannot be inverted,
/// which only happens for inputs containing NaN/Inf entries.
pub fn try_expm_with(a: &CMatrix, ws: &mut ExpmWorkspace) -> Result<CMatrix, LinalgError> {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    let norm = a.one_norm();
    // theta_13 from Higham's analysis: below this 1-norm, Padé(13) alone is
    // accurate to double precision.
    let theta13 = 5.371920351148152;
    let mut squarings = 0u32;
    let a1: &CMatrix = if norm > theta13 {
        squarings = ((norm / theta13).log2().ceil()).max(0.0) as u32;
        ws.scaled
            .scale_into(a, C64::real(1.0 / (2f64.powi(squarings as i32))));
        &ws.scaled
    } else {
        a
    };

    matmul_with(a1, a1, &mut ws.a2, &mut ws.mm);
    matmul_with(&ws.a2, &ws.a2, &mut ws.a4, &mut ws.mm);
    matmul_with(&ws.a2, &ws.a4, &mut ws.a6, &mut ws.mm);
    if ws.id.rows() != n {
        ws.id = CMatrix::identity(n);
    }

    let b = &PADE13;
    // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
    ws.poly.scale_into(&ws.a6, C64::real(b[13]));
    ws.poly.add_scaled(&ws.a4, C64::real(b[11]));
    ws.poly.add_scaled(&ws.a2, C64::real(b[9]));
    ws.tail.scale_into(&ws.a6, C64::real(b[7]));
    ws.tail.add_scaled(&ws.a4, C64::real(b[5]));
    ws.tail.add_scaled(&ws.a2, C64::real(b[3]));
    ws.tail.add_scaled(&ws.id, C64::real(b[1]));
    matmul_with(&ws.a6, &ws.poly, &mut ws.square, &mut ws.mm);
    ws.square += &ws.tail;
    matmul_with(a1, &ws.square, &mut ws.u, &mut ws.mm);

    // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
    ws.poly.scale_into(&ws.a6, C64::real(b[12]));
    ws.poly.add_scaled(&ws.a4, C64::real(b[10]));
    ws.poly.add_scaled(&ws.a2, C64::real(b[8]));
    ws.tail.scale_into(&ws.a6, C64::real(b[6]));
    ws.tail.add_scaled(&ws.a4, C64::real(b[4]));
    ws.tail.add_scaled(&ws.a2, C64::real(b[2]));
    ws.tail.add_scaled(&ws.id, C64::real(b[0]));
    matmul_with(&ws.a6, &ws.poly, &mut ws.v, &mut ws.mm);
    ws.v += &ws.tail;

    // exp(A) ≈ (V - U)^{-1} (V + U): build V+U in `poly` and V-U in `tail`.
    ws.poly.copy_from(&ws.v);
    ws.poly += &ws.u;
    ws.tail.copy_from(&ws.v);
    ws.tail -= &ws.u;
    let mut result = solve_matrix(&ws.tail, &ws.poly)?;
    for _ in 0..squarings {
        matmul_with(&result, &result, &mut ws.square, &mut ws.mm);
        std::mem::swap(&mut result, &mut ws.square);
    }
    Ok(result)
}

/// Computes the unitary propagator `exp(-i·H·t)` for a Hermitian `H`.
///
/// `t` is in the same units as `1/H`; the caller is responsible for including
/// any `2π` factors.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn propagator(h: &CMatrix, t: f64) -> CMatrix {
    let a = h.scale(C64::new(0.0, -t));
    expm(&a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use std::f64::consts::PI;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn exp_of_zero_is_identity() {
        assert!(expm(&CMatrix::zeros(3, 3)).is_identity(1e-13));
    }

    #[test]
    fn exp_of_diagonal() {
        let d = CMatrix::diag(&[c64(1.0, 0.0), c64(0.0, PI), c64(-2.0, 0.5)]);
        let e = expm(&d);
        assert!(e[(0, 0)].approx_eq(c64(1.0f64.exp(), 0.0), 1e-10));
        assert!(e[(1, 1)].approx_eq(C64::cis(PI), 1e-10));
        assert!(e[(2, 2)].approx_eq(C64::new(-2.0, 0.5).exp(), 1e-10));
        assert!(e[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn rotation_about_x_axis() {
        // exp(-i θ/2 X) = cos(θ/2) I - i sin(θ/2) X
        let theta = 1.234;
        let u = propagator(&pauli_x(), theta / 2.0);
        let want = &CMatrix::identity(2).scale_re((theta / 2.0).cos())
            + &pauli_x().scale(C64::new(0.0, -(theta / 2.0).sin()));
        assert!(u.approx_eq(&want, 1e-12));
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn propagator_of_hermitian_is_unitary() {
        // Random-ish Hermitian matrix built as A + A†.
        let a = CMatrix::from_rows(&[
            &[c64(0.3, 0.0), c64(1.2, -0.7), c64(-0.4, 0.1)],
            &[c64(1.2, 0.7), c64(-0.5, 0.0), c64(0.9, 0.3)],
            &[c64(-0.4, -0.1), c64(0.9, -0.3), c64(1.1, 0.0)],
        ]);
        assert!(a.is_hermitian(1e-12));
        let u = propagator(&a, 2.5);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn large_norm_uses_scaling_and_squaring() {
        let big = pauli_z().scale_re(40.0);
        let e = propagator(&big, 1.0);
        // exp(-i 40 Z) = diag(e^{-40i}, e^{40i})
        assert!(e[(0, 0)].approx_eq(C64::cis(-40.0), 1e-9));
        assert!(e[(1, 1)].approx_eq(C64::cis(40.0), 1e-9));
        assert!(e.is_unitary(1e-10));
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_calls_and_dimensions() {
        // One workspace exponentiating a stream of matrices — including a
        // dimension change and a large-norm input that exercises the
        // scaling-and-squaring path — must reproduce the fresh-workspace
        // results exactly.
        let inputs = vec![
            pauli_x().scale(c64(0.0, -0.4)),
            pauli_z().scale(c64(0.0, 37.0)), // large norm: squarings > 0
            CMatrix::from_rows(&[
                &[c64(0.3, 0.0), c64(1.2, -0.7), c64(-0.4, 0.1)],
                &[c64(1.2, 0.7), c64(-0.5, 0.0), c64(0.9, 0.3)],
                &[c64(-0.4, -0.1), c64(0.9, -0.3), c64(1.1, 0.0)],
            ])
            .scale(c64(0.0, -1.3)),
            pauli_x().scale(c64(0.0, 0.9)),
        ];
        let mut ws = ExpmWorkspace::new();
        for a in &inputs {
            let reused = expm_with(a, &mut ws);
            let fresh = expm(a);
            assert_eq!(reused.rows(), fresh.rows());
            for i in 0..reused.rows() {
                for j in 0..reused.cols() {
                    assert_eq!(
                        reused[(i, j)].re.to_bits(),
                        fresh[(i, j)].re.to_bits(),
                        "({i},{j}) re"
                    );
                    assert_eq!(
                        reused[(i, j)].im.to_bits(),
                        fresh[(i, j)].im.to_bits(),
                        "({i},{j}) im"
                    );
                }
            }
        }
    }

    #[test]
    fn additivity_for_commuting_matrices() {
        // exp(aZ) exp(bZ) = exp((a+b)Z)
        let a = pauli_z().scale(c64(0.0, 0.4));
        let b = pauli_z().scale(c64(0.0, -1.1));
        let lhs = expm(&a).matmul(&expm(&b));
        let rhs = expm(&(&a + &b));
        assert!(lhs.approx_eq(&rhs, 1e-11));
    }

    #[test]
    fn exp_x_pi_is_minus_identity_like() {
        // exp(-i π X / 2 * 2) = exp(-i π X) = -I (global phase -1)
        let u = propagator(&pauli_x(), PI);
        assert!(u.is_identity_up_to_phase(1e-9));
    }
}
