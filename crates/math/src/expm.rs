//! Matrix exponential via scaling-and-squaring with a diagonal Padé approximant.
//!
//! This is the standard Higham-style algorithm specialized for the matrices the
//! optimal-control unit produces (`-i·dt·H` for Hermitian `H`, dimension up to
//! `2^n` for small `n`). A convenience routine for the unitary propagator
//! `exp(-i·H·t)` is provided as well.

use crate::complex::C64;
use crate::linalg::{solve_matrix, LinalgError};
use crate::matrix::CMatrix;

/// Padé-13 numerator coefficients (same for the denominator with alternating
/// signs), as used by the classic scaling-and-squaring algorithm.
const PADE13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// Computes the matrix exponential `e^A` of a square complex matrix.
///
/// Uses the Padé(13) approximant with scaling and squaring; the scaling factor
/// is chosen from the 1-norm of `A`.
///
/// # Panics
///
/// Panics if `a` is not square or if the internal linear solve fails (which can
/// only happen for inputs with non-finite entries).
///
/// # Examples
///
/// ```
/// use qcc_math::{expm, CMatrix};
/// let zero = CMatrix::zeros(4, 4);
/// assert!(expm(&zero).is_identity(1e-12));
/// ```
pub fn expm(a: &CMatrix) -> CMatrix {
    try_expm(a).expect("expm: non-finite input")
}

/// Fallible variant of [`expm`].
///
/// # Errors
///
/// Returns a [`LinalgError`] when the Padé denominator cannot be inverted,
/// which only happens for inputs containing NaN/Inf entries.
pub fn try_expm(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    let norm = a.one_norm();
    // theta_13 from Higham's analysis: below this 1-norm, Padé(13) alone is
    // accurate to double precision.
    let theta13 = 5.371920351148152;
    let mut squarings = 0u32;
    let scaled = if norm > theta13 {
        squarings = ((norm / theta13).log2().ceil()).max(0.0) as u32;
        a.scale_re(1.0 / (2f64.powi(squarings as i32)))
    } else {
        a.clone()
    };

    let a1 = scaled;
    let a2 = a1.matmul(&a1);
    let a4 = a2.matmul(&a2);
    let a6 = a2.matmul(&a4);
    let id = CMatrix::identity(n);

    let b = &PADE13;
    // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
    let mut w1 = a6.scale_re(b[13]);
    w1 += &a4.scale_re(b[11]);
    w1 += &a2.scale_re(b[9]);
    let mut w2 = a6.scale_re(b[7]);
    w2 += &a4.scale_re(b[5]);
    w2 += &a2.scale_re(b[3]);
    w2 += &id.scale_re(b[1]);
    let w = &a6.matmul(&w1) + &w2;
    let u = a1.matmul(&w);

    // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
    let mut z1 = a6.scale_re(b[12]);
    z1 += &a4.scale_re(b[10]);
    z1 += &a2.scale_re(b[8]);
    let mut z2 = a6.scale_re(b[6]);
    z2 += &a4.scale_re(b[4]);
    z2 += &a2.scale_re(b[2]);
    z2 += &id.scale_re(b[0]);
    let v = &a6.matmul(&z1) + &z2;

    // exp(A) ≈ (V - U)^{-1} (V + U)
    let numer = &v + &u;
    let denom = &v - &u;
    let mut result = solve_matrix(&denom, &numer)?;
    for _ in 0..squarings {
        result = result.matmul(&result);
    }
    Ok(result)
}

/// Computes the unitary propagator `exp(-i·H·t)` for a Hermitian `H`.
///
/// `t` is in the same units as `1/H`; the caller is responsible for including
/// any `2π` factors.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn propagator(h: &CMatrix, t: f64) -> CMatrix {
    let a = h.scale(C64::new(0.0, -t));
    expm(&a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use std::f64::consts::PI;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn exp_of_zero_is_identity() {
        assert!(expm(&CMatrix::zeros(3, 3)).is_identity(1e-13));
    }

    #[test]
    fn exp_of_diagonal() {
        let d = CMatrix::diag(&[c64(1.0, 0.0), c64(0.0, PI), c64(-2.0, 0.5)]);
        let e = expm(&d);
        assert!(e[(0, 0)].approx_eq(c64(1.0f64.exp(), 0.0), 1e-10));
        assert!(e[(1, 1)].approx_eq(C64::cis(PI), 1e-10));
        assert!(e[(2, 2)].approx_eq(C64::new(-2.0, 0.5).exp(), 1e-10));
        assert!(e[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn rotation_about_x_axis() {
        // exp(-i θ/2 X) = cos(θ/2) I - i sin(θ/2) X
        let theta = 1.234;
        let u = propagator(&pauli_x(), theta / 2.0);
        let want = &CMatrix::identity(2).scale_re((theta / 2.0).cos())
            + &pauli_x().scale(C64::new(0.0, -(theta / 2.0).sin()));
        assert!(u.approx_eq(&want, 1e-12));
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn propagator_of_hermitian_is_unitary() {
        // Random-ish Hermitian matrix built as A + A†.
        let a = CMatrix::from_rows(&[
            &[c64(0.3, 0.0), c64(1.2, -0.7), c64(-0.4, 0.1)],
            &[c64(1.2, 0.7), c64(-0.5, 0.0), c64(0.9, 0.3)],
            &[c64(-0.4, -0.1), c64(0.9, -0.3), c64(1.1, 0.0)],
        ]);
        assert!(a.is_hermitian(1e-12));
        let u = propagator(&a, 2.5);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn large_norm_uses_scaling_and_squaring() {
        let big = pauli_z().scale_re(40.0);
        let e = propagator(&big, 1.0);
        // exp(-i 40 Z) = diag(e^{-40i}, e^{40i})
        assert!(e[(0, 0)].approx_eq(C64::cis(-40.0), 1e-9));
        assert!(e[(1, 1)].approx_eq(C64::cis(40.0), 1e-9));
        assert!(e.is_unitary(1e-10));
    }

    #[test]
    fn additivity_for_commuting_matrices() {
        // exp(aZ) exp(bZ) = exp((a+b)Z)
        let a = pauli_z().scale(c64(0.0, 0.4));
        let b = pauli_z().scale(c64(0.0, -1.1));
        let lhs = expm(&a).matmul(&expm(&b));
        let rhs = expm(&(&a + &b));
        assert!(lhs.approx_eq(&rhs, 1e-11));
    }

    #[test]
    fn exp_x_pi_is_minus_identity_like() {
        // exp(-i π X / 2 * 2) = exp(-i π X) = -I (global phase -1)
        let u = propagator(&pauli_x(), PI);
        assert!(u.is_identity_up_to_phase(1e-9));
    }
}
