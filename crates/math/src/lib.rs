//! # qcc-math
//!
//! Dense complex linear-algebra substrate for the aggregated-instruction
//! quantum compiler. Everything the upper layers need — complex scalars,
//! matrices, LU solves, the Padé matrix exponential, fidelities, Pauli algebra
//! and random unitaries — is implemented here from scratch so the workspace has
//! no external linear-algebra dependency.
//!
//! The crate is deliberately sized for the regime of the ASPLOS'19 paper this
//! workspace reproduces: unitaries of at most ten qubits (1024×1024), dense
//! storage, `f64` precision. The matmul hot path is a tiered kernel engine
//! (see [`kernels`]): a scalar reference loop, a cache-blocked split-plane
//! tier, and a runtime-dispatched AVX2 tier, all bit-identical by
//! construction and selectable via `QCC_KERNEL`.
//!
//! ## Example
//!
//! ```
//! use qcc_math::{pauli, expm, gate_fidelity};
//!
//! // A π/2 rotation about X, built two ways.
//! let direct = pauli::rx(std::f64::consts::FRAC_PI_2);
//! let via_expm = expm::propagator(&pauli::sigma_x(), std::f64::consts::FRAC_PI_4);
//! assert!(gate_fidelity(&direct, &via_expm) > 1.0 - 1e-12);
//! ```

#![warn(missing_docs)]

pub mod complex;
pub mod expm;
pub mod fidelity;
pub mod kernels;
pub mod linalg;
pub mod matrix;
pub mod pauli;
pub mod random;

pub use complex::{c64, C64};
pub use expm::{expm, expm_with, propagator, try_expm, try_expm_with, ExpmWorkspace};
pub use fidelity::{
    average_gate_fidelity, frobenius_distance, gate_fidelity, gate_infidelity,
    phase_invariant_distance, state_fidelity,
};
pub use kernels::{
    matmul_with, selected_kernel, total_kernel_seconds, MatmulKernel, MatmulWorkspace,
};
pub use linalg::{det, inverse, solve, solve_matrix, LinalgError, LuDecomposition};
pub use matrix::CMatrix;
pub use random::{random_complex_matrix, random_hermitian, random_unitary};
