//! Dense, row-major complex matrices.
//!
//! Sizes in this workspace are at most `2^10 × 2^10` (ten-qubit unitaries),
//! dense, `f64` precision. Storage is row-major AoS `Vec<C64>` — the layout
//! every caller sees — but multiplication is tiered: [`CMatrix::matmul_into`]
//! is the scalar ikj reference loop, and the [`crate::kernels`] module layers
//! cache-blocked and SIMD tiers on top of it that pack the right operand into
//! split re/im planes ("SoA") at tile-pack time and are pinned bit-identical
//! to this reference. Hot paths (`expm`, the GRAPE propagator chain) go
//! through [`crate::kernels::matmul_with`]; everything else uses the methods
//! here directly.

use crate::complex::C64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense complex matrix stored in row-major order.
///
/// # Examples
///
/// ```
/// use qcc_math::{CMatrix, C64};
/// let x = CMatrix::from_rows(&[
///     &[C64::zero(), C64::one()],
///     &[C64::one(), C64::zero()],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert!((&x * &x).is_identity(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Default for CMatrix {
    /// An empty `0 × 0` matrix — the placeholder state of reusable workspace
    /// buffers, which the `*_into` operations reshape on first use.
    fn default() -> Self {
        CMatrix::zeros(0, 0)
    }
}

impl CMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C64::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::one();
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length or if `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dimension mismatch");
        Self { rows, cols, data }
    }

    /// Builds a square matrix from real entries (imaginary parts zero).
    pub fn from_real(rows: usize, cols: usize, entries: &[f64]) -> Self {
        assert_eq!(entries.len(), rows * cols, "dimension mismatch");
        Self {
            rows,
            cols,
            data: entries.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the backing slice (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable access to the backing slice (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Returns one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[C64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Conjugate transpose (the dagger / adjoint).
    pub fn dagger(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Plain transpose without conjugation.
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        let data = self.data.iter().map(|z| z.conj()).collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// 1-norm (maximum absolute column sum), used for `expm` scaling.
    pub fn one_norm(&self) -> f64 {
        let mut best = 0.0f64;
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self[(i, j)].abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, s: C64) -> CMatrix {
        let data = self.data.iter().map(|&z| z * s).collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every entry by a real scalar.
    pub fn scale_re(&self, s: f64) -> CMatrix {
        self.scale(C64::real(s))
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Writes `self * rhs` into `out`, reusing `out`'s allocation (it is
    /// reshaped to `self.rows × rhs.cols`). Arithmetic is identical to
    /// [`matmul`](Self::matmul) — the ikj loop order whose inner loop walks
    /// contiguous memory of both `rhs` and `out`, which matters for the
    /// 1024×1024 unitaries — so results are bit-for-bit the same. `self` and
    /// `rhs` may alias each other (squaring), but neither may alias `out`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or when `out` aliases an operand.
    pub fn matmul_into(&self, rhs: &CMatrix, out: &mut CMatrix) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        assert!(
            !std::ptr::eq(self, out) && !std::ptr::eq(rhs, out),
            "matmul_into: `out` must not alias an operand"
        );
        // Reshape only on mismatch; a same-shape reuse (the common case in
        // the expm/GRAPE workspaces) is a single zero fill, not a clear plus
        // an element-by-element zero resize.
        if out.rows != self.rows || out.cols != rhs.cols {
            out.rows = self.rows;
            out.cols = rhs.cols;
            out.data.clear();
            out.data.resize(self.rows * rhs.cols, C64::zero());
        } else {
            out.data.fill(C64::zero());
        }
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * r;
                }
            }
        }
    }

    /// Reshapes to `rows × cols` reusing the allocation, leaving the entry
    /// values unspecified — for kernel paths that are about to overwrite
    /// every entry (skipping the zero fill a public reshape would pay).
    pub(crate) fn reshape_raw(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, C64::zero());
    }

    /// Overwrites `self` with a copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &CMatrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Writes `src * s` into `self`, reusing the allocation. Arithmetic is
    /// identical to [`scale`](Self::scale).
    pub fn scale_into(&mut self, src: &CMatrix, s: C64) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend(src.data.iter().map(|&c| c * s));
    }

    /// Adds `rhs * s` to `self` element-wise, allocating nothing. Arithmetic
    /// is identical to `self += &rhs.scale(s)` (multiply, then accumulate).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &CMatrix, s: C64) {
        assert_eq!(self.rows, rhs.rows, "add_scaled shape mismatch");
        assert_eq!(self.cols, rhs.cols, "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b * s;
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![C64::zero(); self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = C64::zero();
            for (a, b) in row.iter().zip(v.iter()) {
                acc += *a * *b;
            }
            *slot = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = CMatrix::zeros(rows, cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Inner (Hilbert–Schmidt) product `tr(self† rhs)`.
    pub fn hs_inner(&self, rhs: &CMatrix) -> C64 {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Returns `true` when every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` when the matrix is the identity up to `tol`.
    pub fn is_identity(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                let want = if i == j { C64::one() } else { C64::zero() };
                if !self[(i, j)].approx_eq(want, tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when the matrix is unitary, i.e. `U† U = I` up to `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square() && self.dagger().matmul(self).is_identity(tol)
    }

    /// Returns `true` when the matrix is Hermitian up to `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when all off-diagonal entries are below `tol` in modulus.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j && self[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when the matrix equals the identity up to a global phase.
    pub fn is_identity_up_to_phase(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        // Find the phase from the first diagonal entry of non-negligible modulus.
        let phase = self[(0, 0)];
        if (phase.abs() - 1.0).abs() > tol {
            return false;
        }
        let inv_phase = phase.conj();
        self.scale(inv_phase).is_identity(tol.max(1e-12) * 10.0)
    }

    /// Returns `true` when `self` and `other` are equal up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &CMatrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        // Use the entry of largest modulus in `other` to fix the phase.
        let mut best = 0usize;
        let mut best_abs = 0.0;
        for (idx, z) in other.data.iter().enumerate() {
            if z.abs() > best_abs {
                best_abs = z.abs();
                best = idx;
            }
        }
        if best_abs < tol {
            return self.approx_eq(other, tol);
        }
        let phase = self.data[best] / other.data[best];
        if (phase.abs() - 1.0).abs() > 1e-6 {
            return false;
        }
        other.scale(phase).approx_eq(self, tol)
    }

    /// Embeds a `k`-qubit operator acting on `targets` into an `n`-qubit operator.
    ///
    /// `targets[0]` is the most-significant qubit of the small operator under the
    /// big-endian convention used throughout the workspace (qubit 0 is the
    /// left-most tensor factor).
    ///
    /// # Panics
    ///
    /// Panics if the operator dimension does not match `2^targets.len()`, if a
    /// target index repeats, or if a target is `>= n`.
    pub fn embed(&self, n: usize, targets: &[usize]) -> CMatrix {
        let k = targets.len();
        let dim_small = 1usize << k;
        assert_eq!(self.rows, dim_small, "operator does not match target count");
        assert!(self.is_square());
        for (idx, t) in targets.iter().enumerate() {
            assert!(*t < n, "target {t} out of range for {n} qubits");
            assert!(
                !targets[..idx].contains(t),
                "duplicate target qubit {t} in embed"
            );
        }
        let dim = 1usize << n;
        let mut out = CMatrix::zeros(dim, dim);
        // For every basis state pair restricted to the non-target qubits, copy
        // the small operator block.
        let rest: Vec<usize> = (0..n).filter(|q| !targets.contains(q)).collect();
        let rest_dim = 1usize << rest.len();
        for rbits in 0..rest_dim {
            // Build the common part of the row/col index contributed by the
            // untouched qubits.
            let mut base = 0usize;
            for (pos, q) in rest.iter().enumerate() {
                // bit `pos` of rbits (MSB-first over `rest`)
                let bit = (rbits >> (rest.len() - 1 - pos)) & 1;
                base |= bit << (n - 1 - q);
            }
            for a in 0..dim_small {
                for b in 0..dim_small {
                    let v = self[(a, b)];
                    if v.re == 0.0 && v.im == 0.0 {
                        continue;
                    }
                    let mut row = base;
                    let mut col = base;
                    for (pos, q) in targets.iter().enumerate() {
                        let abit = (a >> (k - 1 - pos)) & 1;
                        let bbit = (b >> (k - 1 - pos)) & 1;
                        row |= abit << (n - 1 - q);
                        col |= bbit << (n - 1 - q);
                    }
                    out[(row, col)] = v;
                }
            }
        }
        out
    }

    /// Raises a square matrix to a non-negative integer power.
    pub fn powi(&self, mut p: u32) -> CMatrix {
        assert!(self.is_square());
        let mut result = CMatrix::identity(self.rows);
        let mut base = self.clone();
        while p > 0 {
            if p & 1 == 1 {
                result = result.matmul(&base);
            }
            base = base.matmul(&base);
            p >>= 1;
        }
        result
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| *a + *b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| *a - *b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        self.scale_re(-1.0)
    }
}

impl AddAssign<&CMatrix> for CMatrix {
    fn add_assign(&mut self, rhs: &CMatrix) {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
    }
}

impl SubAssign<&CMatrix> for CMatrix {
    fn sub_assign(&mut self, rhs: &CMatrix) {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= *b;
        }
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[&[C64::zero(), C64::one()], &[C64::one(), C64::zero()]])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::diag(&[C64::one(), C64::real(-1.0)])
    }

    #[test]
    fn identity_multiplication() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        assert!(x.matmul(&id).approx_eq(&x, 1e-14));
        assert!(id.matmul(&x).approx_eq(&x, 1e-14));
    }

    #[test]
    fn into_variants_match_allocating_ops_bit_for_bit() {
        let a = CMatrix::from_rows(&[
            &[c64(0.3, -1.2), c64(0.0, 0.7)],
            &[c64(-0.5, 0.1), c64(2.0, 0.0)],
        ]);
        let b = CMatrix::from_rows(&[
            &[c64(1.1, 0.4), c64(-0.2, 0.0)],
            &[c64(0.0, -0.9), c64(0.6, 0.3)],
        ]);
        let s = c64(0.7, -0.25);

        // matmul_into reuses a wrong-shaped buffer and still matches matmul.
        let mut out = CMatrix::zeros(5, 1);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Squaring aliases both operands.
        a.matmul_into(&a, &mut out);
        assert_eq!(out, a.matmul(&a));

        let mut scaled = CMatrix::zeros(0, 0);
        scaled.scale_into(&a, s);
        assert_eq!(scaled, a.scale(s));

        let mut acc = a.clone();
        acc.add_scaled(&b, s);
        let mut want = a.clone();
        want += &b.scale(s);
        assert_eq!(acc, want);

        let mut copy = CMatrix::zeros(1, 7);
        copy.copy_from(&b);
        assert_eq!(copy, b);
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let z = pauli_z();
        // XZ = -ZX for Pauli matrices
        let xz = x.matmul(&z);
        let zx = z.matmul(&x).scale_re(-1.0);
        assert!(xz.approx_eq(&zx, 1e-14));
        assert!(x.matmul(&x).is_identity(1e-14));
        assert!(z.is_diagonal(1e-14));
        assert!(!x.is_diagonal(1e-14));
    }

    #[test]
    fn dagger_and_unitarity() {
        let h = CMatrix::from_real(2, 2, &[1.0, 1.0, 1.0, -1.0]).scale_re(1.0 / 2f64.sqrt());
        assert!(h.is_unitary(1e-12));
        assert!(h.is_hermitian(1e-12));
        assert!(h.dagger().approx_eq(&h, 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!(xz.rows(), 4);
        assert_eq!(xz.cols(), 4);
        assert!(xz[(0, 2)].approx_eq(C64::one(), 1e-14));
        assert!(xz[(1, 3)].approx_eq(C64::real(-1.0), 1e-14));
        assert!(xz.is_unitary(1e-12));
    }

    #[test]
    fn trace_and_norms() {
        let z = pauli_z();
        assert!(z.trace().approx_eq(C64::zero(), 1e-14));
        assert!((z.frobenius_norm() - 2f64.sqrt()).abs() < 1e-14);
        assert!((z.one_norm() - 1.0).abs() < 1e-14);
        assert!((CMatrix::identity(3).trace().re - 3.0).abs() < 1e-14);
    }

    #[test]
    fn matvec_matches_matmul() {
        let x = pauli_x();
        let v = vec![c64(0.6, 0.0), c64(0.0, 0.8)];
        let mv = x.matvec(&v);
        assert!(mv[0].approx_eq(c64(0.0, 0.8), 1e-14));
        assert!(mv[1].approx_eq(c64(0.6, 0.0), 1e-14));
    }

    #[test]
    fn embed_single_qubit_in_two() {
        // X on qubit 1 of a 2-qubit system (big-endian): I ⊗ X
        let x = pauli_x();
        let emb = x.embed(2, &[1]);
        let want = CMatrix::identity(2).kron(&x);
        assert!(emb.approx_eq(&want, 1e-14));
        // X on qubit 0: X ⊗ I
        let emb0 = x.embed(2, &[0]);
        let want0 = x.kron(&CMatrix::identity(2));
        assert!(emb0.approx_eq(&want0, 1e-14));
    }

    #[test]
    fn embed_two_qubit_reversed_targets() {
        // CNOT with control q1, target q0 in a 2-qubit system is the "reverse CNOT".
        let cnot = CMatrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
        );
        let emb = cnot.embed(2, &[1, 0]);
        // |01> -> |11>, |11> -> |01>
        assert!(emb[(3, 1)].approx_eq(C64::one(), 1e-14));
        assert!(emb[(1, 3)].approx_eq(C64::one(), 1e-14));
        assert!(emb[(0, 0)].approx_eq(C64::one(), 1e-14));
        assert!(emb.is_unitary(1e-12));
    }

    #[test]
    fn phase_insensitive_comparison() {
        let x = pauli_x();
        let phased = x.scale(C64::cis(0.7));
        assert!(phased.approx_eq_up_to_phase(&x, 1e-12));
        assert!(!phased.approx_eq(&x, 1e-12));
        let id_phase = CMatrix::identity(4).scale(C64::cis(-1.2));
        assert!(id_phase.is_identity_up_to_phase(1e-10));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let x = pauli_x();
        assert!(x.powi(0).is_identity(1e-14));
        assert!(x.powi(2).is_identity(1e-14));
        assert!(x.powi(3).approx_eq(&x, 1e-14));
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn operators_add_sub() {
        let x = pauli_x();
        let z = pauli_z();
        let s = &x + &z;
        let d = &s - &z;
        assert!(d.approx_eq(&x, 1e-14));
        let mut acc = CMatrix::zeros(2, 2);
        acc += &x;
        acc -= &x;
        assert!(acc.approx_eq(&CMatrix::zeros(2, 2), 1e-14));
    }
}
