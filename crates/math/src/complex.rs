//! Complex floating-point scalar type used throughout the workspace.
//!
//! The whole stack works with `f64` precision; a hand-rolled complex type keeps
//! the substrate dependency-free and lets us tailor the API (e.g. `cis`,
//! `expi`) to quantum-mechanics use.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qcc_math::C64;
/// let i = C64::i();
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity `0 + 0i`.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// The multiplicative identity `1 + 0i`.
    #[inline]
    pub const fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Builds a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self::new(re, 0.0)
    }

    /// Builds a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self::new(0.0, im)
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) of the number in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaNs when `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Self::new(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }

    /// Raises the number to a real power using polar form.
    #[inline]
    pub fn powf(self, p: f64) -> Self {
        let r = self.abs().powf(p);
        let theta = self.arg() * p;
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Multiplies by `i` (a quarter-turn rotation) without full multiplication.
    #[inline]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Multiplies by `-i`.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Self::new(self.im, -self.re)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl From<(f64, f64)> for C64 {
    fn from((re, im): (f64, f64)) -> Self {
        Self::new(re, im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    // Complex division is multiplication by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::zero(), |a, b| a + b)
    }
}

/// Convenience constructor, `c64(re, im)`.
#[inline]
pub fn c64(re: f64, im: f64) -> C64 {
    C64::new(re, im)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = c64(1.5, -2.0);
        let b = c64(-0.25, 3.0);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a - a).approx_eq(C64::zero(), TOL));
        assert!((a * C64::one()).approx_eq(a, TOL));
    }

    #[test]
    fn i_squares_to_minus_one() {
        assert!((C64::i() * C64::i()).approx_eq(c64(-1.0, 0.0), TOL));
    }

    #[test]
    fn conj_and_norm() {
        let a = c64(3.0, 4.0);
        assert!((a * a.conj()).approx_eq(c64(25.0, 0.0), TOL));
        assert!((a.abs() - 5.0).abs() < TOL);
        assert!((a.norm_sqr() - 25.0).abs() < TOL);
    }

    #[test]
    fn cis_matches_exp() {
        for k in 0..16 {
            let theta = k as f64 * 0.41;
            let via_cis = C64::cis(theta);
            let via_exp = C64::imag(theta).exp();
            assert!(via_cis.approx_eq(via_exp, 1e-12));
        }
    }

    #[test]
    fn recip_is_inverse() {
        let a = c64(0.3, -0.7);
        assert!((a * a.recip()).approx_eq(C64::one(), TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (0.0, 2.0),
            (-1.0, 0.0),
            (3.0, -4.0),
            (-2.0, -5.0),
        ] {
            let z = c64(re, im);
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt failed for {z}");
        }
    }

    #[test]
    fn mul_i_shortcut() {
        let a = c64(1.25, -3.5);
        assert!(a.mul_i().approx_eq(a * C64::i(), TOL));
        assert!(a.mul_neg_i().approx_eq(a * -C64::i(), TOL));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", c64(1.0, -2.0)).is_empty());
    }

    #[test]
    fn sum_of_iterator() {
        let total: C64 = (0..4).map(|k| c64(k as f64, 1.0)).sum();
        assert!(total.approx_eq(c64(6.0, 4.0), TOL));
    }

    #[test]
    fn powf_matches_repeated_mul() {
        let z = c64(0.8, 0.6);
        let z3 = z * z * z;
        assert!(z.powf(3.0).approx_eq(z3, 1e-10));
    }
}
