//! # qcc-bench
//!
//! Shared harness code for the experiment benches that regenerate the paper's
//! tables and figures. Each `benches/*.rs` target is a `harness = false`
//! binary that prints one table/figure as text; `cargo bench --workspace`
//! therefore reproduces the whole evaluation.
//!
//! Set `QCC_BENCH_SCALE=reduced` to run every experiment on scaled-down
//! benchmark instances (useful for smoke tests); the default is the paper's
//! full sizes. Set `QCC_STRATEGY=<name>` (e.g. `cls+aggregation`, see
//! [`Strategy`]'s `FromStr` impl) to restrict the strategy-sweep experiments
//! to one strategy — the ISA baseline is always kept for normalization. Set
//! `QCC_BENCH_JSON=<path>` to additionally write the per-strategy compile
//! wall-clock timings as machine-readable JSON ([`write_bench_json`]) — the
//! artifact CI uploads to track the performance trajectory. Set
//! `QCC_FLEET=<n>` to size the backend fleet in the fleet-routing experiment
//! ([`fleet_size_from_env`]), and `QCC_PARTITIONS=<k>` to pick the region
//! count of the partitioned-compilation lanes ([`partitions_from_env`]).

#![warn(missing_docs)]

use qcc_core::{AggregationOptions, CompileService, CompilerOptions, Strategy};
use qcc_hw::Device;
use qcc_ir::Circuit;
use qcc_workloads::{Benchmark, SuiteScale};
use std::sync::Mutex;
use std::time::Instant;

/// Reads the benchmark scale from the `QCC_BENCH_SCALE` environment variable
/// (`full`, or `reduced`/`small`, case-insensitive; unset/empty defaults to
/// the paper's full sizes).
///
/// # Panics
///
/// Panics with a message naming the offending value when the variable is set
/// to anything else — a typo'd scale must be a loud startup error, not a
/// silent full-size (or wrong-size) run.
pub fn scale_from_env() -> SuiteScale {
    SuiteScale::parse_env(
        std::env::var("QCC_BENCH_SCALE").ok().as_deref(),
        SuiteScale::Full,
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Strategies selected by the `QCC_STRATEGY` environment variable.
///
/// Unset (or empty): every strategy, in [`Strategy::all`] order. Set to a
/// parseable strategy name: the ISA baseline (kept so normalized latencies
/// stay meaningful) followed by the chosen strategy — single-strategy runs
/// then need no code edits.
///
/// # Panics
///
/// Panics with a message naming the offending value when the variable is set
/// to an unknown strategy name.
pub fn strategies_from_env() -> Vec<Strategy> {
    strategies_from(std::env::var("QCC_STRATEGY").ok().as_deref()).unwrap_or_else(|e| panic!("{e}"))
}

/// Pure parsing unit behind [`strategies_from_env`]: `None` or an
/// empty/whitespace value selects every strategy; otherwise the value must
/// parse as a strategy name ([`Strategy`]'s `FromStr`), and the error names
/// the offending value.
pub fn strategies_from(value: Option<&str>) -> Result<Vec<Strategy>, String> {
    let Some(raw) = value else {
        return Ok(Strategy::all().to_vec());
    };
    if raw.trim().is_empty() {
        return Ok(Strategy::all().to_vec());
    }
    let chosen: Strategy = raw
        .parse()
        .map_err(|e| format!("invalid QCC_STRATEGY value '{raw}': {e}"))?;
    if chosen == Strategy::IsaBaseline {
        Ok(vec![chosen])
    } else {
        Ok(vec![Strategy::IsaBaseline, chosen])
    }
}

/// Fleet size selected by the `QCC_FLEET` environment variable (number of
/// backends the fleet-routing experiment spreads load across). Unset or
/// empty: `default`.
///
/// # Panics
///
/// Panics with a message naming the offending value when the variable is set
/// to anything but a positive integer — a typo'd fleet size must be a loud
/// startup error, not a silent single-backend run.
pub fn fleet_size_from_env(default: usize) -> usize {
    fleet_size_from(std::env::var("QCC_FLEET").ok().as_deref(), default)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Pure parsing unit behind [`fleet_size_from_env`]: `None` or an
/// empty/whitespace value selects `default`; otherwise the value must parse
/// as an integer ≥ 1, and the error names the offending value.
pub fn fleet_size_from(value: Option<&str>, default: usize) -> Result<usize, String> {
    let Some(raw) = value else {
        return Ok(default);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(default);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(_) => Err(format!(
            "invalid QCC_FLEET value '{raw}': fleet size must be at least 1"
        )),
        Err(e) => Err(format!("invalid QCC_FLEET value '{raw}': {e}")),
    }
}

/// Region count selected by the `QCC_PARTITIONS` environment variable (the
/// `k` the partitioned-compilation bench lanes cut each circuit into). Unset
/// or empty: `default`.
///
/// # Panics
///
/// Panics with a message naming the offending value when the variable is set
/// to anything but a positive integer — a typo'd region count must be a loud
/// startup error, not a silently unpartitioned run.
pub fn partitions_from_env(default: usize) -> usize {
    partitions_from(std::env::var("QCC_PARTITIONS").ok().as_deref(), default)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Pure parsing unit behind [`partitions_from_env`]: `None` or an
/// empty/whitespace value selects `default`; otherwise the value must parse
/// as an integer ≥ 1, and the error names the offending value.
pub fn partitions_from(value: Option<&str>, default: usize) -> Result<usize, String> {
    let Some(raw) = value else {
        return Ok(default);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(default);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(_) => Err(format!(
            "invalid QCC_PARTITIONS value '{raw}': region count must be at least 1"
        )),
        Err(e) => Err(format!("invalid QCC_PARTITIONS value '{raw}': {e}")),
    }
}

/// Compiles a circuit with one strategy on a grid device sized for it, using
/// the default calibrated latency model via [`CompileService`], and returns
/// the total pulse latency in ns.
pub fn latency_for(circuit: &Circuit, strategy: Strategy, width: usize) -> f64 {
    let device = Device::transmon_grid(circuit.n_qubits());
    let service = CompileService::new(&device);
    let options = CompilerOptions {
        strategy,
        aggregation: AggregationOptions::with_width(width),
    };
    service
        .compile(circuit, &options)
        .expect("grid device sized for the circuit")
        .total_latency_ns
}

/// Latencies of the selected strategies ([`strategies_from_env`]) for one
/// benchmark, in selection order. Each compile's wall-clock time is recorded
/// for the machine-readable bench log ([`write_bench_json`]).
pub fn all_strategy_latencies(bench: &Benchmark, width: usize) -> Vec<(Strategy, f64)> {
    strategies_from_env()
        .into_iter()
        .map(|s| {
            let kernel_before = qcc_math::total_kernel_seconds();
            let started = Instant::now();
            let latency = latency_for(&bench.circuit, s, width);
            record_compile_timing_with_kernel(
                &bench.name,
                s,
                started.elapsed().as_secs_f64(),
                Some(qcc_math::total_kernel_seconds() - kernel_before),
            );
            (s, latency)
        })
        .collect()
}

/// One recorded compile-timing sample of the bench harness.
#[derive(Debug, Clone)]
pub struct CompileTiming {
    /// Benchmark instance name (e.g. `MAXCUT-line-20`).
    pub benchmark: String,
    /// Strategy compiled.
    pub strategy: Strategy,
    /// Compile wall-clock time in seconds.
    pub compile_seconds: f64,
    /// Seconds the compile spent inside the `qcc_math` matmul kernel engine
    /// (matmul + the matmuls inside `expm`), measured as a
    /// [`qcc_math::total_kernel_seconds`] delta; `None` when the recorder
    /// did not attribute kernel time.
    pub grape_kernel_seconds: Option<f64>,
}

static TIMINGS: Mutex<Vec<CompileTiming>> = Mutex::new(Vec::new());

/// Records one compile wall-clock sample for the machine-readable bench log.
/// Harness helpers call this automatically; experiment mains that compile
/// directly can record their own samples.
pub fn record_compile_timing(benchmark: &str, strategy: Strategy, compile_seconds: f64) {
    record_compile_timing_with_kernel(benchmark, strategy, compile_seconds, None);
}

/// [`record_compile_timing`] with an explicit GRAPE-kernel-seconds
/// attribution (the share of `compile_seconds` spent inside the `qcc_math`
/// matmul kernels, typically a [`qcc_math::total_kernel_seconds`] delta
/// around the compile).
pub fn record_compile_timing_with_kernel(
    benchmark: &str,
    strategy: Strategy,
    compile_seconds: f64,
    grape_kernel_seconds: Option<f64>,
) {
    TIMINGS
        .lock()
        .expect("timing log poisoned")
        .push(CompileTiming {
            benchmark: benchmark.to_string(),
            strategy,
            compile_seconds,
            grape_kernel_seconds,
        });
}

/// Writes every timing recorded so far as JSON to the path in the
/// `QCC_BENCH_JSON` environment variable and clears the log; no-op when the
/// variable is unset or empty. The format is one object per sample:
///
/// ```json
/// {"experiment":"fig9_latency","scale":"reduced","threads":8,
///  "timings":[{"benchmark":"MAXCUT-line-20","strategy":"ISA","compile_seconds":0.0123,
///              "grape_kernel_seconds":0.0045}]}
/// ```
///
/// `grape_kernel_seconds` (the portion of the compile spent inside the
/// `qcc_math` matmul kernel engine) appears only on samples recorded with an
/// attribution ([`record_compile_timing_with_kernel`]).
///
/// CI runs the Fig. 9 smoke with this set and uploads the file as an
/// artifact, seeding a machine-readable performance trajectory across
/// commits.
pub fn write_bench_json(experiment: &str) {
    let Ok(path) = std::env::var("QCC_BENCH_JSON") else {
        return;
    };
    if path.trim().is_empty() {
        return;
    }
    write_bench_json_to(experiment, &path);
}

/// [`write_bench_json`] to an explicit path, bypassing the environment
/// variable (and therefore safe to call from tests, which must not mutate
/// the process environment while sibling test threads read it).
pub fn write_bench_json_to(experiment: &str, path: &str) {
    let timings = std::mem::take(&mut *TIMINGS.lock().expect("timing log poisoned"));
    let scale = match scale_from_env() {
        SuiteScale::Reduced => "reduced",
        _ => "full",
    };
    let mut json = String::with_capacity(timings.len() * 96 + 128);
    json.push_str(&format!(
        "{{\"experiment\":{},\"scale\":\"{scale}\",\"threads\":{},\"timings\":[",
        json_string(experiment),
        threadpool::default_parallelism(),
    ));
    for (i, t) in timings.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"benchmark\":{},\"strategy\":{},\"compile_seconds\":{:.9}",
            json_string(&t.benchmark),
            json_string(t.strategy.name()),
            t.compile_seconds,
        ));
        if let Some(kernel) = t.grape_kernel_seconds {
            json.push_str(&format!(",\"grape_kernel_seconds\":{kernel:.9}"));
        }
        json.push('}');
    }
    json.push_str("]}\n");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("QCC_BENCH_JSON: failed to write {path}: {e}");
    } else {
        eprintln!("bench timings written to {path} ({experiment})");
    }
}

/// Minimal JSON string rendering (quotes, backslashes, and control bytes —
/// the vendored serde stand-in has no serializer).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Geometric mean of a slice of positive numbers.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref} of Shi et al., ASPLOS 2019)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["bb".into(), "2.5".into()],
            ],
        );
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("bb"));
    }

    #[test]
    fn bench_json_round_trips_recorded_timings() {
        let path = std::env::temp_dir().join("qcc_bench_json_test.json");
        record_compile_timing("MAXCUT-line-4", Strategy::IsaBaseline, 0.125);
        record_compile_timing_with_kernel(
            "Ising-chain-4",
            Strategy::ClsAggregation,
            0.5,
            Some(0.25),
        );
        // The explicit-path variant: tests must not set_var while sibling
        // test threads getenv (a libc-level data race).
        write_bench_json_to("unit-test", path.to_str().unwrap());
        let written = std::fs::read_to_string(&path).expect("bench json written");
        let _ = std::fs::remove_file(&path);
        assert!(written.contains("\"experiment\":\"unit-test\""));
        assert!(written.contains("\"benchmark\":\"MAXCUT-line-4\""));
        assert!(written.contains("\"strategy\":\"CLS+Aggregation\""));
        assert!(written.contains("\"compile_seconds\":0.125"));
        assert!(written.contains("\"grape_kernel_seconds\":0.25"));
        // Samples recorded without an attribution omit the field entirely.
        assert!(written.contains("\"compile_seconds\":0.125000000}"));
        assert!(written.contains("\"threads\":"));
        // The log drains on write: a second write emits no stale samples.
        assert!(TIMINGS.lock().unwrap().is_empty());
    }

    #[test]
    fn json_strings_escape_quotes_and_controls() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn strategy_env_parsing_selects_and_rejects() {
        // Pure-function tests: mutating the real environment would race with
        // sibling test threads reading it (a libc-level hazard).
        assert_eq!(strategies_from(None), Ok(Strategy::all().to_vec()));
        assert_eq!(strategies_from(Some("")), Ok(Strategy::all().to_vec()));
        assert_eq!(strategies_from(Some("  ")), Ok(Strategy::all().to_vec()));
        assert_eq!(
            strategies_from(Some("cls+aggregation")),
            Ok(vec![Strategy::IsaBaseline, Strategy::ClsAggregation])
        );
        // The baseline is not duplicated when chosen explicitly.
        assert_eq!(
            strategies_from(Some("isa")),
            Ok(vec![Strategy::IsaBaseline])
        );
        for bad in ["clsx", "aggregation+cls", "42"] {
            let err = strategies_from(Some(bad)).unwrap_err();
            assert!(err.contains("QCC_STRATEGY"), "{err}");
            assert!(err.contains(bad), "error must name the value: {err}");
        }
    }

    #[test]
    fn fleet_env_parsing_selects_and_rejects() {
        // Pure-function tests, same rationale as the strategy parser above.
        assert_eq!(fleet_size_from(None, 3), Ok(3));
        assert_eq!(fleet_size_from(Some(""), 3), Ok(3));
        assert_eq!(fleet_size_from(Some("  "), 5), Ok(5));
        assert_eq!(fleet_size_from(Some("4"), 3), Ok(4));
        assert_eq!(fleet_size_from(Some(" 2 "), 3), Ok(2));
        for bad in ["0", "-1", "two", "3.5", "1e2"] {
            let err = fleet_size_from(Some(bad), 3).unwrap_err();
            assert!(err.contains("QCC_FLEET"), "{err}");
            assert!(err.contains(bad), "error must name the value: {err}");
        }
    }

    #[test]
    fn partitions_env_parsing_selects_and_rejects() {
        assert_eq!(partitions_from(None, 2), Ok(2));
        assert_eq!(partitions_from(Some(""), 2), Ok(2));
        assert_eq!(partitions_from(Some("  "), 4), Ok(4));
        assert_eq!(partitions_from(Some("4"), 2), Ok(4));
        assert_eq!(partitions_from(Some(" 8 "), 2), Ok(8));
        for bad in ["0", "-1", "two", "3.5", "1e2"] {
            let err = partitions_from(Some(bad), 2).unwrap_err();
            assert!(err.contains("QCC_PARTITIONS"), "{err}");
            assert!(err.contains(bad), "error must name the value: {err}");
        }
    }

    #[test]
    fn latency_helper_produces_positive_latency() {
        let circuit = qcc_workloads::qaoa::paper_triangle_example();
        let isa = latency_for(&circuit, Strategy::IsaBaseline, 10);
        let agg = latency_for(&circuit, Strategy::ClsAggregation, 10);
        assert!(isa > 0.0 && agg > 0.0);
        assert!(agg < isa);
    }
}
