//! # qcc-bench
//!
//! Shared harness code for the experiment benches that regenerate the paper's
//! tables and figures. Each `benches/*.rs` target is a `harness = false`
//! binary that prints one table/figure as text; `cargo bench --workspace`
//! therefore reproduces the whole evaluation.
//!
//! Set `QCC_BENCH_SCALE=reduced` to run every experiment on scaled-down
//! benchmark instances (useful for smoke tests); the default is the paper's
//! full sizes. Set `QCC_STRATEGY=<name>` (e.g. `cls+aggregation`, see
//! [`Strategy`]'s `FromStr` impl) to restrict the strategy-sweep experiments
//! to one strategy — the ISA baseline is always kept for normalization.

#![warn(missing_docs)]

use qcc_core::{AggregationOptions, CompileService, CompilerOptions, Strategy};
use qcc_hw::Device;
use qcc_ir::Circuit;
use qcc_workloads::{Benchmark, SuiteScale};

/// Reads the benchmark scale from the `QCC_BENCH_SCALE` environment variable.
pub fn scale_from_env() -> SuiteScale {
    match std::env::var("QCC_BENCH_SCALE").as_deref() {
        Ok("reduced") | Ok("REDUCED") | Ok("small") => SuiteScale::Reduced,
        _ => SuiteScale::Full,
    }
}

/// Strategies selected by the `QCC_STRATEGY` environment variable.
///
/// Unset (or empty): every strategy, in [`Strategy::all`] order. Set to a
/// parseable strategy name: the ISA baseline (kept so normalized latencies
/// stay meaningful) followed by the chosen strategy — single-strategy runs
/// then need no code edits.
///
/// # Panics
///
/// Panics with the parse error when the variable is set to an unknown name.
pub fn strategies_from_env() -> Vec<Strategy> {
    match std::env::var("QCC_STRATEGY") {
        Ok(v) if !v.trim().is_empty() => {
            let chosen: Strategy = v
                .parse()
                .unwrap_or_else(|e| panic!("invalid QCC_STRATEGY: {e}"));
            if chosen == Strategy::IsaBaseline {
                vec![chosen]
            } else {
                vec![Strategy::IsaBaseline, chosen]
            }
        }
        _ => Strategy::all().to_vec(),
    }
}

/// Compiles a circuit with one strategy on a grid device sized for it, using
/// the default calibrated latency model via [`CompileService`], and returns
/// the total pulse latency in ns.
pub fn latency_for(circuit: &Circuit, strategy: Strategy, width: usize) -> f64 {
    let device = Device::transmon_grid(circuit.n_qubits());
    let service = CompileService::new(&device);
    let options = CompilerOptions {
        strategy,
        aggregation: AggregationOptions::with_width(width),
    };
    service
        .compile(circuit, &options)
        .expect("grid device sized for the circuit")
        .total_latency_ns
}

/// Latencies of the selected strategies ([`strategies_from_env`]) for one
/// benchmark, in selection order.
pub fn all_strategy_latencies(bench: &Benchmark, width: usize) -> Vec<(Strategy, f64)> {
    strategies_from_env()
        .into_iter()
        .map(|s| (s, latency_for(&bench.circuit, s, width)))
        .collect()
}

/// Geometric mean of a slice of positive numbers.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref} of Shi et al., ASPLOS 2019)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["bb".into(), "2.5".into()],
            ],
        );
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("bb"));
    }

    #[test]
    fn latency_helper_produces_positive_latency() {
        let circuit = qcc_workloads::qaoa::paper_triangle_example();
        let isa = latency_for(&circuit, Strategy::IsaBaseline, 10);
        let agg = latency_for(&circuit, Strategy::ClsAggregation, 10);
        assert!(isa > 0.0 && agg > 0.0);
        assert!(agg < isa);
    }
}
