//! Figure 11: effect of spatial locality — latency of the three MAXCUT
//! instances under aggregated compilation, normalized to their post-CLS
//! latency (lower = aggregation helps more).

use qcc_bench::{banner, latency_for, render_table, scale_from_env};
use qcc_core::Strategy;
use qcc_workloads::standard_suite;

fn main() {
    banner(
        "Figure 11 — spatial locality vs benefit of aggregation",
        "Fig. 11 and §6.3",
    );
    let suite = standard_suite(scale_from_env(), 2019);
    let instances = ["MAXCUT-line", "MAXCUT-reg4", "MAXCUT-cluster"];
    let mut rows = Vec::new();
    for name in instances {
        let Some(bench) = suite.iter().find(|b| b.name == name) else {
            continue;
        };
        let cls = latency_for(&bench.circuit, Strategy::Cls, 10);
        let agg = latency_for(&bench.circuit, Strategy::ClsAggregation, 10);
        rows.push(vec![
            name.to_string(),
            format!("{}", bench.spatial_locality),
            format!("{cls:.1}"),
            format!("{agg:.1}"),
            format!("{:.3}", agg / cls),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "spatial locality",
                "CLS latency (ns)",
                "CLS+Agg latency (ns)",
                "normalized (Agg/CLS)"
            ],
            &rows
        )
    );
    println!("Expected shape: the lower the spatial locality (more routing SWAPs), the lower the normalized latency — aggregation absorbs SWAP overhead (paper Fig. 11).");
}
