//! Table 3: the benchmark suite and its program characteristics.

use qcc_bench::{banner, render_table, scale_from_env};
use qcc_workloads::standard_suite;

fn main() {
    banner("Table 3 — benchmark suite", "Table 3");
    let suite = standard_suite(scale_from_env(), 2019);
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                b.purpose.clone(),
                format!("{}", b.n_qubits()),
                format!("{}", b.gate_count()),
                format!("{}", b.parallelism),
                format!("{}", b.spatial_locality),
                format!("{}", b.commutativity),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "purpose",
                "qubits",
                "gates",
                "parallelism",
                "locality",
                "commutativity"
            ],
            &rows
        )
    );
}
