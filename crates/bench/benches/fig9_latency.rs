//! Figure 9 (headline result): normalized circuit latency of every compilation
//! strategy over the whole benchmark suite, plus the §6.4 encoding-scheme
//! comparison (aggregation vs hand-optimization ratios).
//!
//! Set `QCC_STRATEGY=<name>` to sweep a single strategy (normalized against
//! the ISA baseline, which always runs); the §6.4 section needs both
//! `CLS+Aggregation` and `CLS+HandOpt` and is skipped when either is filtered
//! out.

use qcc_bench::{
    all_strategy_latencies, banner, geometric_mean, render_table, scale_from_env,
    strategies_from_env, write_bench_json,
};
use qcc_core::Strategy;
use qcc_workloads::standard_suite;

fn main() {
    banner(
        "Figure 9 — normalized circuit latency per compilation strategy",
        "Fig. 9 and §6.4",
    );
    let suite = standard_suite(scale_from_env(), 2019);
    let width = 10;
    let strategies = strategies_from_env();
    let reported: Vec<Strategy> = strategies
        .iter()
        .copied()
        .filter(|s| *s != Strategy::IsaBaseline)
        .collect();
    let full_sweep = reported.contains(&Strategy::ClsAggregation)
        && reported.contains(&Strategy::ClsHandOptimized);

    let mut rows = Vec::new();
    let mut speedups_full = Vec::new();
    let mut speedups_hand = Vec::new();
    let mut encoding_rows = Vec::new();

    for bench in &suite {
        let latencies = all_strategy_latencies(bench, width);
        let isa = latencies
            .iter()
            .find(|(s, _)| *s == Strategy::IsaBaseline)
            .map(|(_, l)| *l)
            .unwrap_or(1.0);
        let norm = |strategy: Strategy| -> f64 {
            latencies
                .iter()
                .find(|(s, _)| *s == strategy)
                .map(|(_, l)| l / isa)
                .unwrap_or(1.0)
        };
        if full_sweep {
            let full = norm(Strategy::ClsAggregation);
            let hand = norm(Strategy::ClsHandOptimized);
            speedups_full.push(1.0 / full);
            speedups_hand.push(1.0 / hand);
            encoding_rows.push(vec![
                bench.name.clone(),
                format!("{:.2}", (1.0 / full) / (1.0 / hand)),
            ]);
        }
        let mut row = vec![bench.name.clone(), format!("{:.1}", isa)];
        row.extend(reported.iter().map(|&s| format!("{:.3}", norm(s))));
        rows.push(row);
    }

    let mut headers: Vec<&str> = vec!["benchmark", "ISA latency (ns)"];
    headers.extend(reported.iter().map(|s| s.name()));
    println!("{}", render_table(&headers, &rows));

    // Machine-readable per-strategy compile timings (QCC_BENCH_JSON).
    write_bench_json("fig9_latency");

    if !full_sweep {
        println!("(QCC_STRATEGY set — §6.4 encoding comparison skipped)");
        return;
    }
    println!(
        "Geometric-mean speedup of CLS+Aggregation over ISA: {:.2}x   (paper: 5.07x)",
        geometric_mean(&speedups_full)
    );
    println!(
        "Geometric-mean speedup of CLS+HandOpt over ISA:     {:.2}x   (paper: 2.34x)",
        geometric_mean(&speedups_hand)
    );
    println!(
        "Maximum speedup of CLS+Aggregation:                 {:.2}x   (paper: up to ~10x)\n",
        speedups_full.iter().cloned().fold(0.0, f64::max)
    );

    println!("§6.4 — advantage of aggregation over hand optimization by encoding scheme");
    println!("(paper: ~1x for MAXCUT-line, 3.12x for UCCSD-n4, 3.68x for square-root):");
    println!(
        "{}",
        render_table(
            &["benchmark", "CLS+Agg speedup / HandOpt speedup"],
            &encoding_rows
        )
    );
}
