//! Serving-layer throughput: a mixed interactive + batch request stream
//! through `CompileService::serve`, compared against compiling the same
//! requests one-by-one through the synchronous front door.
//!
//! The staged pipeline overlaps the passes of different requests, so on
//! multi-core machines the served wall-clock should be at or below the
//! serial wall-clock; on a single core it should match (staging adds
//! hand-offs, not work). Per-mode wall-clock timings are recorded for the
//! machine-readable bench log (`QCC_BENCH_JSON`).

use qcc_bench::{banner, record_compile_timing, render_table, scale_from_env, write_bench_json};
use qcc_core::{CompileService, CompilerOptions, Priority, ServeConfig, Strategy, SubmitOptions};
use qcc_hw::Device;
use qcc_ir::Circuit;
use qcc_workloads::standard_suite;
use std::time::Instant;

fn main() {
    banner(
        "Serving throughput — staged pipeline vs one-by-one compiles",
        "the §3 compilation flow, under serving load",
    );
    let suite = standard_suite(scale_from_env(), 2019);
    // The request mix: every suite circuit as batch traffic under the full
    // flow, and the three smallest again as interactive CLS traffic.
    let mut by_size: Vec<&qcc_workloads::Benchmark> = suite.iter().collect();
    by_size.sort_by_key(|b| b.circuit.len());
    let interactive: Vec<Circuit> = by_size.iter().take(3).map(|b| b.circuit.clone()).collect();
    let batch: Vec<Circuit> = suite.iter().map(|b| b.circuit.clone()).collect();
    let n_qubits = suite
        .iter()
        .map(|b| b.n_qubits())
        .max()
        .expect("suite is non-empty");
    let device = Device::transmon_grid(n_qubits);
    let interactive_options = CompilerOptions::strategy(Strategy::Cls);
    let batch_options = CompilerOptions::strategy(Strategy::ClsAggregation);

    // Serial reference: the synchronous front door, one request at a time.
    // A fresh cache-less service per mode keeps the comparison honest.
    let serial_service = CompileService::new(&device).with_compile_cache(0);
    let started = Instant::now();
    for c in &batch {
        serial_service
            .compile(c, &batch_options)
            .expect("grid sized for the suite");
    }
    for c in &interactive {
        serial_service
            .compile(c, &interactive_options)
            .expect("grid sized for the suite");
    }
    let serial_seconds = started.elapsed().as_secs_f64();
    record_compile_timing("serve-mix-serial", Strategy::ClsAggregation, serial_seconds);

    // Served: the same mix submitted up front, batch behind interactive.
    let served_service = CompileService::new(&device).with_compile_cache(0);
    let started = Instant::now();
    served_service.serve(ServeConfig::default(), |handle| {
        let tickets: Vec<_> = batch
            .iter()
            .map(|c| {
                handle
                    .submit(
                        c,
                        &batch_options,
                        SubmitOptions::default().priority(Priority::Batch),
                    )
                    .expect("default queue holds the suite")
            })
            .chain(interactive.iter().map(|c| {
                handle
                    .submit(c, &interactive_options, SubmitOptions::default())
                    .expect("default queue holds the suite")
            }))
            .collect();
        for t in tickets {
            handle.wait(t).expect("grid sized for the suite");
        }
    });
    let served_seconds = started.elapsed().as_secs_f64();
    record_compile_timing("serve-mix-staged", Strategy::ClsAggregation, served_seconds);

    let requests = batch.len() + interactive.len();
    let stats = served_service.compile_cache_stats();
    println!(
        "{}",
        render_table(
            &["mode", "requests", "wall-clock (s)", "requests/s"],
            &[
                vec![
                    "serial".into(),
                    requests.to_string(),
                    format!("{serial_seconds:.3}"),
                    format!("{:.1}", requests as f64 / serial_seconds),
                ],
                vec![
                    "served (staged)".into(),
                    requests.to_string(),
                    format!("{served_seconds:.3}"),
                    format!("{:.1}", requests as f64 / served_seconds),
                ],
            ],
        )
    );
    println!(
        "served session: {} submitted, {} completed, {} rejected, {} deadline-expired",
        stats.submitted, stats.completed, stats.rejected, stats.deadline_expired
    );
    write_bench_json("service_throughput");
}
