//! Fleet routing: the standard suite dispatched across a backend fleet via
//! cost-model routing, compared against a single backend compiling the same
//! requests one-by-one.
//!
//! Three modes run: `serial` (one backend, synchronous compiles), a
//! homogeneous fleet (`QCC_FLEET` identical grids, default 3), and a
//! heterogeneous fleet of the same size (mixed topologies, drive
//! calibrations, and capacity weights — the configuration the cost model
//! exists for). Per-mode wall-clock timings are recorded for the
//! machine-readable bench log (`QCC_BENCH_JSON`), and the heterogeneous run
//! prints its routing telemetry: where each backend's share of the load went
//! and how many tickets relocated.

use qcc_bench::{
    banner, fleet_size_from_env, record_compile_timing, render_table, scale_from_env,
    write_bench_json,
};
use qcc_core::{Compiler, CompilerOptions, Fleet, Strategy};
use qcc_hw::{Backend, CalibratedLatencyModel, ControlLimits, Device, Topology};
use qcc_ir::Circuit;
use qcc_workloads::standard_suite;
use std::time::Instant;

/// `size` identical grid backends.
fn homogeneous_backends(size: usize, n_qubits: usize) -> Vec<Backend> {
    (0..size)
        .map(|i| Backend::calibrated(format!("grid-{i}"), Device::transmon_grid(n_qubits)))
        .collect()
}

/// `size` deliberately dissimilar backends: topologies cycle line → grid →
/// all-to-all, drive calibrations alternate around the paper's values, and
/// every third backend advertises double capacity.
fn heterogeneous_backends(size: usize, n_qubits: usize) -> Vec<Backend> {
    let base = ControlLimits::asplos19();
    (0..size)
        .map(|i| {
            let limits = base.scaled_drives(0.8 + 0.2 * (i % 3) as f64);
            let topology = match i % 3 {
                0 => Topology::Linear(n_qubits),
                1 => Topology::near_square_grid(n_qubits),
                _ => Topology::AllToAll(n_qubits),
            };
            let backend = Backend::calibrated(
                format!("hetero-{i}"),
                Device::transmon_with(topology, limits),
            );
            if i % 3 == 2 {
                backend.with_capacity_weight(2.0)
            } else {
                backend
            }
        })
        .collect()
}

/// Submits every circuit to the fleet, waits for all results, and returns
/// the wall-clock seconds.
fn dispatch_all(fleet: &mut Fleet<'_>, circuits: &[Circuit], options: &CompilerOptions) -> f64 {
    let started = Instant::now();
    let tickets: Vec<_> = circuits.iter().map(|c| fleet.submit(c, options)).collect();
    fleet.run();
    for t in tickets {
        fleet
            .wait(t)
            .expect("every fleet device is sized for the suite");
    }
    started.elapsed().as_secs_f64()
}

fn main() {
    banner(
        "Fleet routing — cost-model dispatch across heterogeneous backends",
        "the §3 compilation flow, served by a backend fleet",
    );
    let suite = standard_suite(scale_from_env(), 2019);
    let fleet_size = fleet_size_from_env(3);
    let circuits: Vec<Circuit> = suite.iter().map(|b| b.circuit.clone()).collect();
    let n_qubits = suite
        .iter()
        .map(|b| b.n_qubits())
        .max()
        .expect("suite is non-empty");
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);

    // Serial reference: one backend, the synchronous front door.
    let solo = Device::transmon_grid(n_qubits);
    let solo_model = CalibratedLatencyModel::new(solo.limits);
    let serial_compiler = Compiler::new(&solo, &solo_model);
    let started = Instant::now();
    for c in &circuits {
        serial_compiler.compile(c, &options);
    }
    let serial_seconds = started.elapsed().as_secs_f64();
    record_compile_timing("fleet-serial", Strategy::ClsAggregation, serial_seconds);

    let homogeneous = homogeneous_backends(fleet_size, n_qubits);
    let mut fleet = Fleet::new(&homogeneous);
    let homogeneous_seconds = dispatch_all(&mut fleet, &circuits, &options);
    record_compile_timing(
        "fleet-homogeneous",
        Strategy::ClsAggregation,
        homogeneous_seconds,
    );

    let heterogeneous = heterogeneous_backends(fleet_size, n_qubits);
    let mut fleet = Fleet::new(&heterogeneous);
    let heterogeneous_seconds = dispatch_all(&mut fleet, &circuits, &options);
    record_compile_timing(
        "fleet-heterogeneous",
        Strategy::ClsAggregation,
        heterogeneous_seconds,
    );

    let requests = circuits.len();
    let throughput = |s: f64| format!("{:.1}", requests as f64 / s);
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "backends",
                "requests",
                "wall-clock (s)",
                "requests/s"
            ],
            &[
                vec![
                    "serial (1 backend)".into(),
                    "1".into(),
                    requests.to_string(),
                    format!("{serial_seconds:.3}"),
                    throughput(serial_seconds),
                ],
                vec![
                    "fleet homogeneous".into(),
                    fleet_size.to_string(),
                    requests.to_string(),
                    format!("{homogeneous_seconds:.3}"),
                    throughput(homogeneous_seconds),
                ],
                vec![
                    "fleet heterogeneous".into(),
                    fleet_size.to_string(),
                    requests.to_string(),
                    format!("{heterogeneous_seconds:.3}"),
                    throughput(heterogeneous_seconds),
                ],
            ],
        )
    );
    println!("heterogeneous routing telemetry:");
    for stats in fleet.stats() {
        println!(
            "  {:<12} submitted {:>3}  completed {:>3}  relocated in/out {}/{}",
            stats.backend,
            stats.submitted,
            stats.completed,
            stats.relocated_in,
            stats.relocated_out,
        );
    }
    println!("  relocations: {}", fleet.relocations().len());
    write_bench_json("fleet_routing");
}
