//! Figure 10: normalized latency versus allowed instruction width for
//! parallel applications (QAOA, Ising) and serialized applications
//! (square-root, UCCSD), including the latency band of the most/least
//! optimized instruction on the critical path.

use qcc_bench::{banner, render_table, scale_from_env};
use qcc_core::{AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc_hw::{CalibratedLatencyModel, Device};
use qcc_workloads::{standard_suite, SuiteScale};

fn main() {
    banner(
        "Figure 10 — allowed instruction width vs normalized latency",
        "Fig. 10",
    );
    let scale = scale_from_env();
    let suite = standard_suite(scale, 2019);
    // Three parallel and three serial applications, as in the figure.
    let selected = [
        "MAXCUT-reg4",
        "Ising-n30",
        "MAXCUT-line",
        "square-root-n3",
        "square-root-n4",
        "UCCSD-n6",
    ];
    let widths: Vec<usize> = if scale == SuiteScale::Full {
        vec![2, 3, 4, 6, 8, 10]
    } else {
        vec![2, 4, 10]
    };

    for name in selected {
        let Some(bench) = suite.iter().find(|b| b.name == name) else {
            continue;
        };
        let device = Device::transmon_grid(bench.circuit.n_qubits());
        let model = CalibratedLatencyModel::new(device.limits);
        let compiler = Compiler::new(&device, &model);
        let baseline = compiler
            .compile(
                &bench.circuit,
                &CompilerOptions::strategy(Strategy::IsaBaseline),
            )
            .total_latency_ns;

        let mut rows = Vec::new();
        for &w in &widths {
            let options = CompilerOptions {
                strategy: Strategy::ClsAggregation,
                aggregation: AggregationOptions::with_width(w),
            };
            let r = compiler.compile(&bench.circuit, &options);
            let (band_min, band_max) = r.critical_path_latency_band().unwrap_or((0.0, 0.0));
            rows.push(vec![
                format!("{w}"),
                format!("{:.3}", r.total_latency_ns / baseline),
                format!("{:.1}", band_min),
                format!("{:.1}", band_max),
                format!(
                    "{}",
                    r.instructions.iter().map(|i| i.width()).max().unwrap_or(0)
                ),
            ]);
        }
        println!("\n{name}  (ISA baseline {baseline:.1} ns)");
        println!(
            "{}",
            render_table(
                &[
                    "width limit",
                    "normalized latency",
                    "min instr on CP (ns)",
                    "max instr on CP (ns)",
                    "widest instr"
                ],
                &rows
            )
        );
    }
    println!("\nExpected shape: parallel apps (top) saturate at small widths; serialized apps keep improving as the width limit grows.");
}
