//! Figure 10: normalized latency versus allowed instruction width for
//! parallel applications (QAOA, Ising) and serialized applications
//! (square-root, UCCSD), including the latency band of the most/least
//! optimized instruction on the critical path.

//!
//! A partitioned lane rides along: each benchmark is also compiled cut into
//! `k` regions ([`qcc_core::partition`]) against the serial whole-circuit
//! compile, reporting makespan ratio, compile wall clock, and the partition
//! telemetry (regions, cut weight, stitch overhead). Set `QCC_PARTITIONS=<k>`
//! to pin a single region count; the default sweeps k = 2 and 4.

use qcc_bench::{
    banner, partitions_from_env, record_compile_timing, render_table, scale_from_env,
    write_bench_json,
};
use qcc_core::{AggregationOptions, Compiler, CompilerOptions, PartitionOptions, Strategy};
use qcc_hw::{CalibratedLatencyModel, Device};
use qcc_workloads::{standard_suite, SuiteScale};
use std::time::Instant;

fn main() {
    banner(
        "Figure 10 — allowed instruction width vs normalized latency",
        "Fig. 10",
    );
    let scale = scale_from_env();
    let suite = standard_suite(scale, 2019);
    // Three parallel and three serial applications, as in the figure.
    let selected = [
        "MAXCUT-reg4",
        "Ising-n30",
        "MAXCUT-line",
        "square-root-n3",
        "square-root-n4",
        "UCCSD-n6",
    ];
    let widths: Vec<usize> = if scale == SuiteScale::Full {
        vec![2, 3, 4, 6, 8, 10]
    } else {
        vec![2, 4, 10]
    };
    // 0 is the "unset" sentinel: a *set* QCC_PARTITIONS must be ≥ 1, so it
    // can never collide with the default sweep.
    let partition_ks = match partitions_from_env(0) {
        0 => vec![2usize, 4],
        k => vec![k],
    };

    for name in selected {
        let Some(bench) = suite.iter().find(|b| b.name == name) else {
            continue;
        };
        let device = Device::transmon_grid(bench.circuit.n_qubits());
        let model = CalibratedLatencyModel::new(device.limits);
        let compiler = Compiler::new(&device, &model);
        let baseline = compiler
            .compile(
                &bench.circuit,
                &CompilerOptions::strategy(Strategy::IsaBaseline),
            )
            .total_latency_ns;

        let mut rows = Vec::new();
        for &w in &widths {
            let options = CompilerOptions {
                strategy: Strategy::ClsAggregation,
                aggregation: AggregationOptions::with_width(w),
            };
            let r = compiler.compile(&bench.circuit, &options);
            let (band_min, band_max) = r.critical_path_latency_band().unwrap_or((0.0, 0.0));
            rows.push(vec![
                format!("{w}"),
                format!("{:.3}", r.total_latency_ns / baseline),
                format!("{:.1}", band_min),
                format!("{:.1}", band_max),
                format!(
                    "{}",
                    r.instructions.iter().map(|i| i.width()).max().unwrap_or(0)
                ),
            ]);
        }
        println!("\n{name}  (ISA baseline {baseline:.1} ns)");
        println!(
            "{}",
            render_table(
                &[
                    "width limit",
                    "normalized latency",
                    "min instr on CP (ns)",
                    "max instr on CP (ns)",
                    "widest instr"
                ],
                &rows
            )
        );
        // Partitioned lane: serial whole-circuit compile vs cut into k
        // regions compiled in parallel and stitched at the seams.
        let options = CompilerOptions::strategy(Strategy::ClsAggregation);
        let started = Instant::now();
        let serial = compiler.compile(&bench.circuit, &options);
        let serial_seconds = started.elapsed().as_secs_f64();
        record_compile_timing(
            &format!("{name}-partitioned-serial"),
            Strategy::ClsAggregation,
            serial_seconds,
        );
        let mut rows = vec![vec![
            "serial".to_string(),
            "1.000".to_string(),
            format!("{:.3}", serial_seconds * 1e3),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]];
        for &k in &partition_ks {
            let started = Instant::now();
            let part = compiler
                .compile_partitioned(&bench.circuit, &options, &PartitionOptions::new(k))
                .expect("device sized for the benchmark");
            let seconds = started.elapsed().as_secs_f64();
            record_compile_timing(
                &format!("{name}-partitioned-k{k}"),
                Strategy::ClsAggregation,
                seconds,
            );
            let summary = part.partition.expect("partitioned compile has telemetry");
            rows.push(vec![
                format!("k={k}"),
                format!("{:.3}", part.total_latency_ns / serial.total_latency_ns),
                format!("{:.3}", seconds * 1e3),
                format!("{}", summary.regions.len()),
                format!("{:.1}", summary.cut_weight),
                format!("{:.1}", summary.stitch_wall_time.as_secs_f64() * 1e6),
            ]);
        }
        println!("\n{name} — partitioned lane");
        println!(
            "{}",
            render_table(
                &[
                    "lane",
                    "makespan vs serial",
                    "compile (ms)",
                    "regions",
                    "cut weight",
                    "stitch (µs)"
                ],
                &rows
            )
        );
    }
    println!("\nExpected shape: parallel apps (top) saturate at small widths; serialized apps keep improving as the width limit grows.");
    println!("Partitioned lanes trade a bounded makespan overhead (merges cannot cross cut barriers) for region-parallel compile time on wide circuits.");
    write_bench_json("fig10_width_sweep");
}
