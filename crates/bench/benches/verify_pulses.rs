//! Pulse verification (§3.6): sample aggregated instructions from a compiled
//! benchmark, run the GRAPE optimal-control unit on each, and verify the
//! resulting pulses reproduce the instruction unitaries.

use qcc_bench::{banner, render_table};
use qcc_control::GrapeLatencyModel;
use qcc_core::{verify_sampled_pulses, AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc_hw::{CalibratedLatencyModel, ControlLimits, Device};
use qcc_workloads::qaoa;

fn main() {
    banner(
        "Pulse verification of sampled aggregated instructions",
        "§3.6 (verification)",
    );
    // A small MAXCUT instance keeps the GRAPE runs quick while exercising the
    // same CNOT–Rz–CNOT aggregates as the large benchmarks.
    let circuit = qaoa::maxcut_line(6);
    let device = Device::transmon_line(6);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    let result = compiler.compile(
        &circuit,
        &CompilerOptions {
            strategy: Strategy::ClsAggregation,
            aggregation: AggregationOptions::with_width(2),
        },
    );
    let control = GrapeLatencyModel::fast_two_qubit();
    let checks = verify_sampled_pulses(&result, &control, ControlLimits::asplos19(), 10, 0.95);
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.instruction_index),
                format!("{}", c.width),
                format!("{:.2}", c.duration_ns),
                format!("{:.4}", c.fidelity),
                if c.passed {
                    "pass".into()
                } else {
                    "FAIL".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["instr", "width", "pulse (ns)", "fidelity", "verdict"],
            &rows
        )
    );
    let passed = checks.iter().filter(|c| c.passed).count();
    println!("{passed}/{} sampled instructions verified.", checks.len());
}
