//! Table 1: pulse durations of the ISA gates and of the aggregated
//! instructions of the worked QAOA example.
//!
//! The first half of the table reports per-gate pulse times from the
//! calibrated latency model (and, for 1–2 qubit gates, the duration found by
//! the real GRAPE optimal-control unit). The second half reports the
//! aggregated instructions G1–G5 produced by compiling the QAOA triangle.

use qcc_bench::{banner, render_table};
use qcc_core::{Compiler, CompilerOptions, Strategy};
use qcc_hw::{CalibratedLatencyModel, Device, GateTimeTable};
use qcc_workloads::qaoa;

fn main() {
    banner("Table 1 — instruction execution times", "Table 1");

    let model = CalibratedLatencyModel::asplos19();
    let table = GateTimeTable::standard(&model);
    let paper: &[(&str, f64)] = &[
        ("CNOT", 47.1),
        ("SWAP", 50.1),
        ("H", 13.7),
        ("Rz(5.67)", 9.8),
        ("Rx(1.26)", 6.1),
    ];
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|(label, ours)| {
            let paper_value = paper
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| format!("{v:.1}"))
                .unwrap_or_else(|| "-".to_string());
            vec![label.clone(), format!("{ours:.1}"), paper_value]
        })
        .collect();
    println!("\nISA gate pulse times (calibrated model):");
    println!(
        "{}",
        render_table(&["gate", "ours (ns)", "paper (ns)"], &rows)
    );

    // Aggregated instructions of the QAOA triangle (Fig. 4b / Table 1 bottom).
    let circuit = qaoa::paper_triangle_example();
    let device = Device::transmon_line(3);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    let result = compiler.compile(
        &circuit,
        &CompilerOptions::strategy(Strategy::ClsAggregation),
    );
    let mut rows = Vec::new();
    for (idx, (inst, lat)) in result
        .instructions
        .iter()
        .zip(result.latencies.iter())
        .enumerate()
    {
        rows.push(vec![
            format!("G{}", idx + 1),
            format!("{}", inst.width()),
            format!("{}", inst.gate_count()),
            format!("{lat:.1}"),
        ]);
    }
    println!(
        "Aggregated instructions of the QAOA triangle (paper: G1–G5, 54.9/13.7/42.0/31.4/6.1 ns):"
    );
    println!(
        "{}",
        render_table(&["instr", "width", "gates", "pulse time (ns)"], &rows)
    );
    println!(
        "Total aggregated critical path: {:.1} ns (paper: 128.3 ns)",
        result.total_latency_ns
    );
}
