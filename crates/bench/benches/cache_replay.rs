//! Cache replay: the persistent, reuse-predicting cache tier under a serving
//! workload.
//!
//! Two experiments run:
//!
//! 1. **Cold vs. warm restart** — a GRAPE-priced service compiles a workload
//!    from scratch (every pulse solved), snapshots to disk, and a fresh
//!    service warm-starts from the snapshot and replays the same workload.
//!    The warm run must perform zero GRAPE solves; the recorded timings are
//!    the restart story CI smokes (`QCC_CACHE_DIR`).
//! 2. **SHiP vs. plain LRU replay** — hot recipes interleaved with one-shot
//!    fillers against a capacity-limited result cache under both eviction
//!    policies; the reuse predictor's hit rate is the figure of merit.
//!
//! Timings land in the machine-readable bench log (`QCC_BENCH_JSON`).

use qcc_bench::{banner, record_compile_timing, render_table, write_bench_json};
use qcc_control::GrapeLatencyModel;
use qcc_core::{CachePolicy, CompileService, CompilerOptions, Strategy};
use qcc_hw::Device;
use qcc_ir::{Circuit, Gate};
use std::time::Instant;

/// A two-qubit block whose request key is unique per `tag`.
fn keyed_circuit(tag: usize) -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Gate::H, &[0]);
    c.push(Gate::Cnot, &[0, 1]);
    c.push(Gate::Rz(0.001 + tag as f64 * 1.0e-6), &[1]);
    c.push(Gate::Cnot, &[0, 1]);
    c
}

fn main() {
    banner(
        "Cache replay — persistent snapshots and reuse-predicting eviction",
        "optimal-control caching around the §4 aggregation loop",
    );
    let device = Device::transmon_line(2);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let workload: Vec<Circuit> = (0..8).map(keyed_circuit).collect();

    // --- Experiment 1: cold run, snapshot, warm restart. ---
    let dir = std::env::temp_dir().join(format!("qcc-cache-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let grape = GrapeLatencyModel::fast_two_qubit();
    let service = CompileService::with_model(&device, Box::new(&grape)).with_threads(1);
    let started = Instant::now();
    for c in &workload {
        service.compile(c, &options).expect("workload compiles");
    }
    let cold_seconds = started.elapsed().as_secs_f64();
    let cold_solves = grape.solve_count();
    let written = service
        .snapshot_to(&dir)
        .expect("snapshot directory is writable");
    record_compile_timing("cache-cold", Strategy::ClsAggregation, cold_seconds);

    let grape_warm = GrapeLatencyModel::fast_two_qubit();
    let warm_service = CompileService::with_model(&device, Box::new(&grape_warm)).with_threads(1);
    let loaded = warm_service.warm_start_or_cold(&dir);
    let started = Instant::now();
    for c in &workload {
        warm_service
            .compile(c, &options)
            .expect("workload compiles");
    }
    let warm_seconds = started.elapsed().as_secs_f64();
    let warm_solves = grape_warm.solve_count();
    record_compile_timing("cache-warm-start", Strategy::ClsAggregation, warm_seconds);
    assert_eq!(warm_solves, 0, "warm start must not re-solve pulses");
    let _ = std::fs::remove_dir_all(&dir);

    // --- Experiment 2: SHiP vs. plain LRU on a hot-set + filler replay. ---
    let replay = |policy: CachePolicy| {
        let service = CompileService::new(&device)
            .with_threads(1)
            .with_compile_cache_policy(4, policy);
        let opts = CompilerOptions::strategy(Strategy::IsaBaseline);
        let mut filler = 10_000;
        let started = Instant::now();
        for _round in 0..16 {
            for hot in 0..4 {
                service.compile(&keyed_circuit(hot), &opts).unwrap();
            }
            for _ in 0..6 {
                service.compile(&keyed_circuit(filler), &opts).unwrap();
                filler += 1;
            }
        }
        (
            started.elapsed().as_secs_f64(),
            service.compile_cache_stats(),
        )
    };
    let (lru_seconds, lru_stats) = replay(CachePolicy::PlainLru);
    let (ship_seconds, ship_stats) = replay(CachePolicy::Ship);
    record_compile_timing("replay-lru", Strategy::IsaBaseline, lru_seconds);
    record_compile_timing("replay-ship", Strategy::IsaBaseline, ship_seconds);
    assert!(
        ship_stats.hits > lru_stats.hits,
        "the reuse predictor must beat plain LRU on the hot-set replay"
    );

    let hit_rate = |hits: usize, misses: usize| {
        format!(
            "{:.1}%",
            100.0 * hits as f64 / (hits + misses).max(1) as f64
        )
    };
    println!(
        "{}",
        render_table(
            &["experiment", "wall-clock (s)", "GRAPE solves", "hit rate"],
            &[
                vec![
                    "cold compile".into(),
                    format!("{cold_seconds:.3}"),
                    cold_solves.to_string(),
                    "-".into(),
                ],
                vec![
                    "warm restart".into(),
                    format!("{warm_seconds:.3}"),
                    warm_solves.to_string(),
                    "100.0%".into(),
                ],
                vec![
                    "replay (plain LRU)".into(),
                    format!("{lru_seconds:.3}"),
                    "-".into(),
                    hit_rate(lru_stats.hits, lru_stats.misses),
                ],
                vec![
                    "replay (SHiP)".into(),
                    format!("{ship_seconds:.3}"),
                    "-".into(),
                    hit_rate(ship_stats.hits, ship_stats.misses),
                ],
            ],
        )
    );
    println!(
        "snapshot: {written} records written, {loaded} loaded back; \
         SHiP trained {} signatures, predicted {} one-shot inserts",
        ship_stats.trained_signatures, ship_stats.predicted_one_shot,
    );
    write_bench_json("cache_replay");
}
