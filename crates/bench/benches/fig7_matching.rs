//! Figure 7: maximal-matching based conflict resolution inside the
//! commutativity-aware scheduler — one round of matching on a six-qubit
//! computational graph, then the remaining edges in the next round.

use qcc_bench::{banner, render_table};
use qcc_graph::{matching, Graph};

fn main() {
    banner(
        "Figure 7 — maximal matching of the candidate computational graph",
        "Fig. 7",
    );

    // Six qubits, candidate two-qubit gates forming a path plus a chord, as in
    // the figure's sketch.
    let mut g = Graph::new(6);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)] {
        g.add_edge(a, b, 1.0);
    }
    let mut remaining = g.clone();
    let mut round = 1;
    let mut rows = Vec::new();
    while remaining.edge_count() > 0 {
        let m = matching::improved_matching(&remaining);
        rows.push(vec![
            format!("{round}"),
            format!("{m:?}"),
            format!("{}", m.len()),
        ]);
        // Remove scheduled edges and rebuild the leftover graph.
        let mut next = Graph::new(6);
        for (a, b, w) in remaining.edges() {
            if !m.contains(&(a, b)) && !m.contains(&(b, a)) {
                next.add_edge(a, b, w);
            }
        }
        remaining = next;
        round += 1;
        if round > 10 {
            break;
        }
    }
    println!(
        "{}",
        render_table(&["round", "scheduled gates (matching)", "count"], &rows)
    );
    println!("All candidate gates scheduled in {} rounds.", round - 1);
}
