//! Figure 4: the worked QAOA MAXCUT-triangle example — gate-based vs
//! aggregated compilation, including the pulse shapes of one aggregated
//! instruction (Fig. 4c/4d) produced by the real GRAPE unit.

use qcc_bench::{banner, render_table};
use qcc_control::GrapeLatencyModel;
use qcc_core::{Compiler, CompilerOptions, Strategy};
use qcc_hw::{CalibratedLatencyModel, Device};
use qcc_workloads::qaoa;

fn main() {
    banner(
        "Figure 4 — QAOA triangle: gate-based vs aggregated compilation",
        "Fig. 4 and §3.1",
    );

    let circuit = qaoa::paper_triangle_example();
    let device = Device::transmon_line(3);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);

    let mut rows = Vec::new();
    let mut baseline = 0.0;
    let mut aggregated = 0.0;
    for strategy in [Strategy::IsaBaseline, Strategy::ClsAggregation] {
        let r = compiler.compile(&circuit, &CompilerOptions::strategy(strategy));
        if strategy == Strategy::IsaBaseline {
            baseline = r.total_latency_ns;
        } else {
            aggregated = r.total_latency_ns;
        }
        rows.push(vec![
            strategy.name().to_string(),
            format!("{}", r.instructions.len()),
            format!("{}", r.swap_count),
            format!("{:.1}", r.total_latency_ns),
        ]);
    }
    println!(
        "{}",
        render_table(&["scheme", "instructions", "swaps", "latency (ns)"], &rows)
    );
    println!(
        "Speedup: {:.2}x   (paper: 381.9 ns -> 128.3 ns, 2.97x)\n",
        baseline / aggregated
    );

    // Pulse shapes for the largest aggregated instruction (the paper's G3).
    let r = compiler.compile(
        &circuit,
        &CompilerOptions::strategy(Strategy::ClsAggregation),
    );
    let control = GrapeLatencyModel::fast_two_qubit();
    let largest = r
        .instructions
        .iter()
        .filter(|i| i.width() <= 2 && i.gate_count() > 1)
        .max_by_key(|i| i.gate_count());
    match largest {
        Some(inst) => match control.optimize_instruction(&inst.constituents) {
            Some((duration, result)) => {
                println!(
                    "Optimized pulse for the largest 2-qubit aggregate ({} gates): {:.1} ns, fidelity {:.4}",
                    inst.gate_count(),
                    duration,
                    result.fidelity
                );
                println!("Pulse program (CSV, one column per control field — cf. Fig. 4d):");
                println!("{}", result.pulse.to_csv());
            }
            None => println!("(instruction too wide for the optimal-control unit)"),
        },
        None => println!("(no multi-gate two-qubit aggregate found)"),
    }
}
