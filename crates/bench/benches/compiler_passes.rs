//! Criterion micro-benchmarks of the compiler passes themselves (wall-clock
//! cost of the implementation, not simulated pulse latency).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qcc_control::GrapeLatencyModel;
use qcc_core::{
    aggregate, cls, frontend, mapping, AggregateInstruction, AggregationOptions, Compiler,
    CompilerOptions, Strategy,
};
use qcc_hw::{CalibratedLatencyModel, Device, LatencyModel};
use qcc_ir::Instruction;
use qcc_workloads::{ising, qaoa};
use threadpool::ThreadPool;

fn bench_frontend(c: &mut Criterion) {
    let circuit = qaoa::maxcut_line(20);
    c.bench_function(
        "frontend: flatten + diagonal detection (MAXCUT-line-20)",
        |b| b.iter(|| frontend::run(&circuit)),
    );
}

fn bench_cls(c: &mut Criterion) {
    let circuit = qaoa::maxcut_line(20);
    let instrs = frontend::run(&circuit);
    let lat = vec![10.0; instrs.len()];
    c.bench_function("cls: schedule (MAXCUT-line-20)", |b| {
        b.iter(|| cls::schedule(&instrs, &lat))
    });
}

fn bench_mapping(c: &mut Criterion) {
    let circuit = ising::ising_chain(30);
    let instrs = frontend::run(&circuit);
    let topo = qcc_hw::Topology::near_square_grid(30);
    c.bench_function("mapping: place + route (Ising-30)", |b| {
        b.iter(|| mapping::map_and_route(&instrs, circuit.n_qubits(), &topo))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let circuit = qaoa::maxcut_line(20);
    let device = Device::transmon_grid(20);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    let options = CompilerOptions {
        strategy: Strategy::ClsAggregation,
        aggregation: AggregationOptions::default(),
    };
    c.bench_function(
        "pipeline: CLS+Aggregation end-to-end (MAXCUT-line-20)",
        |b| b.iter(|| compiler.compile(&circuit, &options)),
    );
}

/// Comparison point for the sharded cache: a single global mutex held across
/// every pricing call, which is what pricing through one `Mutex<HashMap>`
/// cache degrades to under concurrency (the old design either serialized on
/// the lock or, when it released it mid-solve, duplicated the solves — both
/// forfeit the parallelism).
struct SingleMutexModel<'a> {
    inner: &'a GrapeLatencyModel,
    lock: std::sync::Mutex<()>,
}

impl LatencyModel for SingleMutexModel<'_> {
    fn isa_gate_latency(&self, inst: &Instruction) -> f64 {
        self.inner.isa_gate_latency(inst)
    }

    fn aggregate_latency(&self, constituents: &[Instruction]) -> f64 {
        let _serialized = self.lock.lock().unwrap();
        self.inner.aggregate_latency(constituents)
    }

    fn name(&self) -> &'static str {
        "grape-xy-single-mutex"
    }
}

/// The routed, width-2-aggregated 12-qubit MAXCUT program (≈46 routed
/// instructions before aggregation) shared by the pricing and
/// aggregation-search benches: every instruction fits the fast two-qubit
/// GRAPE control profile.
fn routed_width2_program() -> Vec<AggregateInstruction> {
    let circuit = qaoa::maxcut_line(12);
    let device = Device::transmon_line(12);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    compiler
        .compile(
            &circuit,
            &CompilerOptions {
                strategy: Strategy::ClsAggregation,
                aggregation: AggregationOptions::with_width(2),
            },
        )
        .instructions
}

fn bench_parallel_pricing(c: &mut Criterion) {
    // A ≥16-instruction aggregated program whose pricing goes through the real
    // GRAPE unit.
    let program = routed_width2_program();
    assert!(
        program.len() >= 16,
        "pricing bench needs a ≥16-instruction program, got {}",
        program.len()
    );
    let threads = threadpool::default_parallelism().max(4);

    // Reference: fully serial pricing on the calling thread — the effective
    // behavior of the pre-parallel compiler.
    c.bench_function(
        &format!("pricing: {} instrs, serial (1 thread)", program.len()),
        |b| {
            b.iter(|| {
                let grape = GrapeLatencyModel::fast_two_qubit();
                let pool = ThreadPool::serial();
                black_box(pool.parallel_map(&program, |i| grape.aggregate_latency(&i.constituents)))
            })
        },
    );

    // Baseline: multi-threaded fan-out, but every pricing call serialized
    // behind one global mutex.
    c.bench_function(
        &format!(
            "pricing: {} instrs, single-mutex baseline ({threads} threads)",
            program.len()
        ),
        |b| {
            b.iter(|| {
                let grape = GrapeLatencyModel::fast_two_qubit();
                let serialized = SingleMutexModel {
                    inner: &grape,
                    lock: std::sync::Mutex::new(()),
                };
                let pool = ThreadPool::new(threads);
                black_box(
                    pool.parallel_map(&program, |i| serialized.aggregate_latency(&i.constituents)),
                )
            })
        },
    );

    // Sharded compute-once cache, same thread count: threads only contend
    // when keys hash to the same shard, so independent solves overlap.
    c.bench_function(
        &format!(
            "pricing: {} instrs, sharded cache ({threads} threads)",
            program.len()
        ),
        |b| {
            b.iter(|| {
                let grape = GrapeLatencyModel::fast_two_qubit();
                let pool = ThreadPool::new(threads);
                black_box(pool.parallel_map(&program, |i| grape.aggregate_latency(&i.constituents)))
            })
        },
    );
}

fn bench_aggregation_search(c: &mut Criterion) {
    // The aggregation *search* through the real GRAPE unit, serial vs
    // speculative: the routed (pre-aggregation) 12-qubit MAXCUT stream at
    // width 2, searched with a cold model each iteration so every candidate
    // is an actual solve. One thread runs the legacy serial loop; 4 and 8
    // run the speculative evaluator, which must win wall-clock while staying
    // bit-identical (pinned by `tests/aggregation_equivalence.rs`).
    let circuit = qaoa::maxcut_line(12);
    let routed = mapping::map_and_route(
        &frontend::run(&circuit),
        circuit.n_qubits(),
        &qcc_hw::Topology::Linear(12),
    )
    .instructions;
    let options = AggregationOptions::with_width(2);
    for threads in [1usize, 4, 8] {
        let mode = if threads == 1 {
            "serial"
        } else {
            "speculative"
        };
        c.bench_function(
            &format!(
                "aggregation search: {} routed instrs, GRAPE-priced, {mode} ({threads} thread{})",
                routed.len(),
                if threads == 1 { "" } else { "s" }
            ),
            |b| {
                b.iter(|| {
                    let grape = GrapeLatencyModel::fast_two_qubit();
                    let pool = ThreadPool::new(threads);
                    black_box(aggregate::run_with_pool(&routed, &grape, &options, &pool))
                })
            },
        );
    }
}

criterion_group!(
    name = passes;
    config = Criterion::default().sample_size(10);
    targets = bench_frontend, bench_cls, bench_mapping, bench_full_pipeline,
        bench_parallel_pricing, bench_aggregation_search
);
criterion_main!(passes);
