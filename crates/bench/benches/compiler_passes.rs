//! Criterion micro-benchmarks of the compiler passes themselves (wall-clock
//! cost of the implementation, not simulated pulse latency).

use criterion::{criterion_group, criterion_main, Criterion};
use qcc_core::{cls, frontend, mapping, AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc_hw::{CalibratedLatencyModel, Device};
use qcc_workloads::{ising, qaoa};

fn bench_frontend(c: &mut Criterion) {
    let circuit = qaoa::maxcut_line(20);
    c.bench_function(
        "frontend: flatten + diagonal detection (MAXCUT-line-20)",
        |b| b.iter(|| frontend::run(&circuit)),
    );
}

fn bench_cls(c: &mut Criterion) {
    let circuit = qaoa::maxcut_line(20);
    let instrs = frontend::run(&circuit);
    let lat = vec![10.0; instrs.len()];
    c.bench_function("cls: schedule (MAXCUT-line-20)", |b| {
        b.iter(|| cls::schedule(&instrs, &lat))
    });
}

fn bench_mapping(c: &mut Criterion) {
    let circuit = ising::ising_chain(30);
    let instrs = frontend::run(&circuit);
    let topo = qcc_hw::Topology::near_square_grid(30);
    c.bench_function("mapping: place + route (Ising-30)", |b| {
        b.iter(|| mapping::map_and_route(&instrs, circuit.n_qubits(), &topo))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let circuit = qaoa::maxcut_line(20);
    let device = Device::transmon_grid(20);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(device, &model);
    let options = CompilerOptions {
        strategy: Strategy::ClsAggregation,
        aggregation: AggregationOptions::default(),
    };
    c.bench_function(
        "pipeline: CLS+Aggregation end-to-end (MAXCUT-line-20)",
        |b| b.iter(|| compiler.compile(&circuit, &options)),
    );
}

criterion_group!(
    name = passes;
    config = Criterion::default().sample_size(10);
    targets = bench_frontend, bench_cls, bench_mapping, bench_full_pipeline
);
criterion_main!(passes);
