//! Micro-benchmarks of the numeric layer: the kernel bench matrix (dense
//! complex matmul and `expm` at n = 8/64/256/1024, scalar vs blocked vs AVX2)
//! plus the original GRAPE cases (one-qubit Hadamard and two-qubit iSWAP
//! optimizations). The kernel matrix records every cell through the shared
//! timing log, so `QCC_BENCH_JSON` lands the per-tier kernel timings in the
//! committed performance trajectory alongside the whole-compile numbers.

use criterion::{criterion_group, Criterion};
use qcc_bench::{record_compile_timing, render_table, scale_from_env, write_bench_json};
use qcc_control::{optimize_pulse, GrapeConfig, TransmonSystem};
use qcc_core::Strategy;
use qcc_hw::ControlLimits;
use qcc_math::kernels::avx2_supported;
use qcc_math::{expm, matmul_with, pauli, CMatrix, ExpmWorkspace, MatmulKernel, MatmulWorkspace};
use qcc_workloads::SuiteScale;
use std::time::Instant;

fn bench_single_qubit_grape(c: &mut Criterion) {
    let system = TransmonSystem::new(1, &[], ControlLimits::asplos19());
    let target = pauli::hadamard();
    let config = GrapeConfig {
        max_iterations: 60,
        ..GrapeConfig::fast()
    };
    c.bench_function("grape: 1-qubit Hadamard (60 iters)", |b| {
        b.iter(|| optimize_pulse(&system, &target, 10.0, config.clone()))
    });
}

fn bench_two_qubit_grape(c: &mut Criterion) {
    let system = TransmonSystem::new(2, &[(0, 1)], ControlLimits::asplos19());
    let target = pauli::iswap();
    let config = GrapeConfig {
        max_iterations: 40,
        dt: 1.0,
        ..GrapeConfig::fast()
    };
    c.bench_function("grape: 2-qubit iSWAP (40 iters)", |b| {
        b.iter(|| optimize_pulse(&system, &target, 20.0, config.clone()))
    });
}

criterion_group!(
    name = grape;
    config = Criterion::default().sample_size(10);
    targets = bench_single_qubit_grape, bench_two_qubit_grape
);

/// Deterministic pseudo-random matrix (xorshift64*) so every tier multiplies
/// the same operands without pulling a rand dependency into the bench.
fn demo_matrix(n: usize, mut state: u64) -> CMatrix {
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to [-1, 1); the magnitude keeps expm's Padé scaling bounded.
        (state as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    let mut m = CMatrix::zeros(n, n);
    let scale = 1.0 / n as f64;
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = qcc_math::c64(next() * scale, next() * scale);
        }
    }
    m
}

/// Best-of-`samples` wall-clock seconds of `routine`.
fn best_of<F: FnMut()>(samples: usize, mut routine: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        routine();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Tiers measured on this host, in reporting order.
fn tiers() -> Vec<MatmulKernel> {
    let mut tiers = vec![MatmulKernel::Scalar, MatmulKernel::Blocked];
    if avx2_supported() {
        tiers.push(MatmulKernel::Avx2);
    }
    tiers
}

fn sample_count(n: usize) -> usize {
    match n {
        0..=64 => 5,
        65..=256 => 3,
        _ => 1,
    }
}

/// Runs the matmul half of the kernel matrix, returning one table row per
/// size: `[n, scalar s, tier s + speedup, ...]`.
fn matmul_matrix(sizes: &[usize]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let a = demo_matrix(n, 0x9e3779b97f4a7c15 ^ n as u64);
        let b = demo_matrix(n, 0xd1b54a32d192ed03 ^ n as u64);
        let mut out = CMatrix::zeros(n, n);
        let mut row = vec![format!("{n}")];
        let mut scalar_s = 0.0;
        for kernel in tiers() {
            let mut ws = MatmulWorkspace::with_kernel(kernel);
            let secs = best_of(sample_count(n), || matmul_with(&a, &b, &mut out, &mut ws));
            record_compile_timing(
                &format!("matmul-n{n}-{}", kernel.name()),
                Strategy::IsaBaseline,
                secs,
            );
            if kernel == MatmulKernel::Scalar {
                scalar_s = secs;
                row.push(format!("{secs:.6}"));
            } else {
                row.push(format!("{secs:.6} ({:.2}x)", scalar_s / secs));
            }
        }
        rows.push(row);
    }
    rows
}

/// Runs the expm half of the kernel matrix (same row shape as the matmul
/// half).
fn expm_matrix(sizes: &[usize]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let h = demo_matrix(n, 0x2545f4914f6cdd1d ^ n as u64);
        let mut row = vec![format!("{n}")];
        let mut scalar_s = 0.0;
        for kernel in tiers() {
            let mut ws = ExpmWorkspace::with_kernel(kernel);
            let secs = best_of(sample_count(n), || {
                let _ = expm::expm_with(&h, &mut ws);
            });
            record_compile_timing(
                &format!("expm-n{n}-{}", kernel.name()),
                Strategy::IsaBaseline,
                secs,
            );
            if kernel == MatmulKernel::Scalar {
                scalar_s = secs;
                row.push(format!("{secs:.6}"));
            } else {
                row.push(format!("{secs:.6} ({:.2}x)", scalar_s / secs));
            }
        }
        rows.push(row);
    }
    rows
}

fn kernel_matrix() {
    let reduced = matches!(scale_from_env(), SuiteScale::Reduced);
    let (matmul_sizes, expm_sizes): (&[usize], &[usize]) = if reduced {
        (&[8, 64, 256], &[8, 64])
    } else {
        (&[8, 64, 256, 1024], &[8, 64, 256])
    };

    let mut headers = vec!["n", "scalar s"];
    for kernel in tiers().into_iter().skip(1) {
        headers.push(match kernel {
            MatmulKernel::Blocked => "blocked s (speedup)",
            MatmulKernel::Avx2 => "avx2 s (speedup)",
            MatmulKernel::Scalar => unreachable!("scalar is the reference column"),
        });
    }
    if !avx2_supported() {
        println!("(avx2 tier skipped: not supported on this host)");
    }
    println!("kernel matrix: complex matmul, best-of-sample seconds");
    println!("{}", render_table(&headers, &matmul_matrix(matmul_sizes)));
    println!("kernel matrix: expm, best-of-sample seconds");
    println!("{}", render_table(&headers, &expm_matrix(expm_sizes)));
}

fn main() {
    kernel_matrix();
    grape();
    write_bench_json("grape_micro");
}
