//! Criterion micro-benchmarks of the optimal-control unit: cost of one GRAPE
//! gradient evaluation and of a full single-qubit pulse optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use qcc_control::{optimize_pulse, GrapeConfig, TransmonSystem};
use qcc_hw::ControlLimits;
use qcc_math::pauli;

fn bench_single_qubit_grape(c: &mut Criterion) {
    let system = TransmonSystem::new(1, &[], ControlLimits::asplos19());
    let target = pauli::hadamard();
    let config = GrapeConfig {
        max_iterations: 60,
        ..GrapeConfig::fast()
    };
    c.bench_function("grape: 1-qubit Hadamard (60 iters)", |b| {
        b.iter(|| optimize_pulse(&system, &target, 10.0, config.clone()))
    });
}

fn bench_two_qubit_grape(c: &mut Criterion) {
    let system = TransmonSystem::new(2, &[(0, 1)], ControlLimits::asplos19());
    let target = pauli::iswap();
    let config = GrapeConfig {
        max_iterations: 40,
        dt: 1.0,
        ..GrapeConfig::fast()
    };
    c.bench_function("grape: 2-qubit iSWAP (40 iters)", |b| {
        b.iter(|| optimize_pulse(&system, &target, 20.0, config.clone()))
    });
}

criterion_group!(
    name = grape;
    config = Criterion::default().sample_size(10);
    targets = bench_single_qubit_grape, bench_two_qubit_grape
);
criterion_main!(grape);
