//! Pulse-latency models.
//!
//! Every compilation strategy in this workspace is scored by the simulated
//! duration of its control pulses, exactly as in the paper's evaluation. Two
//! backends implement the [`LatencyModel`] trait:
//!
//! * the [`CalibratedLatencyModel`] defined here — an analytic model based on
//!   interaction-area lower bounds under XY coupling, used for the large
//!   benchmark circuits and inside the aggregation loop, and
//! * `GrapeLatencyModel` in the `qcc-control` crate — the real optimal-control
//!   unit, which numerically searches for the shortest pulse achieving a target
//!   fidelity (practical for instructions of up to ~3 qubits).
//!
//! The analytic model captures the three effects that give aggregated
//! instructions their advantage (§2.4, §4.3 of the paper):
//!
//! 1. a fixed per-*instruction* overhead that gate-based compilation pays per
//!    *gate*;
//! 2. single-qubit rotations that an optimized pulse largely absorbs into the
//!    two-qubit interaction instead of serializing them as separate layers;
//! 3. diagonal blocks (CNOT–Rz–CNOT) that the detection pass turns into direct
//!    ZZ rotations needing far less interaction area than two CNOTs.

use crate::device::ControlLimits;
use qcc_ir::{Gate, Instruction};
use std::collections::HashMap;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use threadpool::ThreadPool;

/// Cumulative pricing-activity counters of an instrumented latency model:
/// how many `aggregate_latency` queries it has answered (single and batched)
/// and how many of those required an actual solve (cache misses). Compilation
/// passes snapshot these before/after running to attribute solves per pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PricingStats {
    /// Total aggregate-latency queries answered.
    pub queries: usize,
    /// Queries that performed an actual pricing computation (cache misses).
    pub solves: usize,
}

impl PricingStats {
    /// Queries served from a cache instead of solving (`queries - solves`).
    pub fn cache_hits(&self) -> usize {
        self.queries.saturating_sub(self.solves)
    }

    /// Component-wise `self - earlier`: the activity between two snapshots.
    pub fn delta_since(&self, earlier: &PricingStats) -> PricingStats {
        PricingStats {
            queries: self.queries.saturating_sub(earlier.queries),
            solves: self.solves.saturating_sub(earlier.solves),
        }
    }
}

/// Latency oracle used by the scheduler and the instruction-aggregation loop.
pub trait LatencyModel: Send + Sync {
    /// Latency in ns of one gate compiled in isolation through the standard
    /// gate-based (ISA) path: fixed decomposition into native pulses with its
    /// own per-gate overhead.
    fn isa_gate_latency(&self, inst: &Instruction) -> f64;

    /// Latency in ns of a single aggregated instruction implementing the whole
    /// constituent gate sequence as one optimized pulse.
    fn aggregate_latency(&self, constituents: &[Instruction]) -> f64;

    /// Prices a whole batch of aggregated instructions, returning one latency
    /// per query in input order.
    ///
    /// Must return exactly the values a sequential loop of
    /// [`aggregate_latency`](Self::aggregate_latency) calls would — callers
    /// (the speculative aggregation search, the pricing passes, the batch
    /// front door) rely on that for bit-identical parallel compilation. The
    /// default fans the independent queries over `pool` when the model opts
    /// into [`parallel_pricing`](Self::parallel_pricing) and prices serially
    /// on the calling thread otherwise (a pool of one never spawns). Cached
    /// models override this to dedup repeated keys and solve only the unique
    /// misses concurrently.
    fn aggregate_latency_batch(&self, queries: &[&[Instruction]], pool: &ThreadPool) -> Vec<f64> {
        if self.parallel_pricing() && pool.threads() > 1 {
            pool.parallel_map(queries, |q| self.aggregate_latency(q))
        } else {
            queries.iter().map(|q| self.aggregate_latency(q)).collect()
        }
    }

    /// Whether one `aggregate_latency` query is expensive enough (e.g. a
    /// numerical optimal-control solve) that independent queries are worth
    /// fanning out over threads. Cheap analytic models keep the default
    /// `false`, so callers skip the thread-spawn overhead and price serially.
    fn parallel_pricing(&self) -> bool {
        false
    }

    /// Cumulative pricing counters, for models that instrument their cache
    /// (e.g. the GRAPE model). Uninstrumented models return `None` and pass
    /// reports simply omit the pricing column.
    fn pricing_stats(&self) -> Option<PricingStats> {
        None
    }

    /// The model's persistent cache tier, if it has one (e.g. the GRAPE
    /// model's solve cache). Front doors use this to snapshot/warm-start a
    /// model's expensive state across restarts without knowing its concrete
    /// type. Analytic models have nothing worth persisting and keep the
    /// default `None`.
    fn persistent_cache(&self) -> Option<&dyn crate::persist::PersistentCache> {
        None
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// A reference forwards every method (the provided ones included, so a
/// referenced model keeps its own `parallel_pricing`/`pricing_stats`
/// overrides). This lets an owning front door like a compile service borrow a
/// caller-owned, instrumented model — e.g. `Box::new(&grape_model)` — while
/// the caller retains access to its counters.
impl<M: LatencyModel + ?Sized> LatencyModel for &M {
    fn isa_gate_latency(&self, inst: &Instruction) -> f64 {
        (**self).isa_gate_latency(inst)
    }

    fn aggregate_latency(&self, constituents: &[Instruction]) -> f64 {
        (**self).aggregate_latency(constituents)
    }

    fn aggregate_latency_batch(&self, queries: &[&[Instruction]], pool: &ThreadPool) -> Vec<f64> {
        (**self).aggregate_latency_batch(queries, pool)
    }

    fn parallel_pricing(&self) -> bool {
        (**self).parallel_pricing()
    }

    fn pricing_stats(&self) -> Option<PricingStats> {
        (**self).pricing_stats()
    }

    fn persistent_cache(&self) -> Option<&dyn crate::persist::PersistentCache> {
        (**self).persistent_cache()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Two-qubit interaction "area" (radians of XY-drive phase, `2π·∫|u|dt`)
/// needed to realize a gate on an XY-coupled device.
///
/// iSWAP needs π/2; a CNOT/CZ needs two iSWAP-equivalents (π); a SWAP needs
/// three (3π/2); a partial ZZ rotation needs π/2 plus an angle-dependent part;
/// unknown two-qubit unitaries are budgeted at the SWAP-class worst case.
pub fn interaction_area(gate: &Gate) -> f64 {
    match gate {
        Gate::ISwap => FRAC_PI_2,
        Gate::SqrtISwap => FRAC_PI_4,
        Gate::Rxy(t) => principal_angle(*t) / 2.0,
        Gate::Cnot | Gate::Cz => PI,
        Gate::CPhase(t) | Gate::Rzz(t) => FRAC_PI_2 + principal_angle(*t) / 2.0,
        Gate::Swap => 1.5 * PI,
        // Three-qubit gates are flattened before reaching the backend, but give
        // them a sane budget anyway (6 CNOTs worth on two edges).
        Gate::Toffoli | Gate::Fredkin => 3.0 * PI,
        _ => 0.0,
    }
}

/// Number of single-qubit dressing layers the standard decomposition of a
/// two-qubit ISA gate inserts around the native iSWAP pulses.
fn isa_dressing_layers(gate: &Gate) -> f64 {
    match gate {
        Gate::ISwap | Gate::SqrtISwap | Gate::Rxy(_) => 0.0,
        Gate::Cnot | Gate::Cz | Gate::CPhase(_) => 3.0,
        Gate::Rzz(_) => 2.0,
        Gate::Swap => 2.0,
        _ => 0.0,
    }
}

fn principal_angle(theta: f64) -> f64 {
    let t = theta.rem_euclid(2.0 * PI);
    if t > PI {
        2.0 * PI - t
    } else {
        t
    }
}

/// Analytic latency model calibrated to the paper's control limits.
#[derive(Debug, Clone)]
pub struct CalibratedLatencyModel {
    limits: ControlLimits,
}

impl CalibratedLatencyModel {
    /// Creates the model from explicit control limits.
    pub fn new(limits: ControlLimits) -> Self {
        Self { limits }
    }

    /// Model with the paper's §5.1 parameters.
    pub fn asplos19() -> Self {
        Self::new(ControlLimits::asplos19())
    }

    /// The control limits backing the model.
    pub fn limits(&self) -> &ControlLimits {
        &self.limits
    }
}

impl Default for CalibratedLatencyModel {
    fn default() -> Self {
        Self::asplos19()
    }
}

impl LatencyModel for CalibratedLatencyModel {
    fn isa_gate_latency(&self, inst: &Instruction) -> f64 {
        let l = &self.limits;
        let gate = &inst.gate;
        if gate.is_identity() {
            return 0.0;
        }
        match inst.qubits.len() {
            1 => l.instruction_overhead_ns + l.one_qubit_time(gate.rotation_angle()),
            2 => {
                l.instruction_overhead_ns
                    + l.two_qubit_time(interaction_area(gate))
                    + isa_dressing_layers(gate) * l.one_qubit_time(FRAC_PI_2)
            }
            _ => {
                // Flattened circuits never reach here; budget generously.
                l.instruction_overhead_ns
                    + l.two_qubit_time(interaction_area(gate))
                    + 6.0 * l.one_qubit_time(FRAC_PI_2)
            }
        }
    }

    fn aggregate_latency(&self, constituents: &[Instruction]) -> f64 {
        let l = &self.limits;
        if constituents.iter().all(|i| i.gate.is_identity()) {
            return 0.0;
        }
        // Interaction area per qubit *pair*. Whatever two-qubit gates an
        // aggregate accumulates on one pair, their product is still a single
        // two-qubit unitary, which an optimal pulse implements with at most
        // three iSWAP-equivalents of interaction (the SWAP-class worst case);
        // the per-pair area is therefore capped at 3π/2. This is the main
        // mechanism by which optimized aggregate pulses beat concatenated
        // per-gate pulses on serial circuits (§6.2 of the paper).
        const PAIR_AREA_CAP: f64 = 1.5 * PI;
        let mut pair_area: HashMap<(usize, usize), f64> = HashMap::new();
        let mut one_q_area: HashMap<usize, f64> = HashMap::new();
        for inst in constituents {
            if inst.gate.is_identity() {
                continue;
            }
            match inst.qubits.len() {
                1 => {
                    *one_q_area.entry(inst.qubits[0]).or_insert(0.0) += inst.gate.rotation_angle();
                }
                _ => {
                    let a = inst.qubits[0].min(inst.qubits[1]);
                    let b = inst.qubits[0].max(inst.qubits[1]);
                    let entry = pair_area.entry((a, b)).or_insert(0.0);
                    *entry = (*entry + interaction_area(&inst.gate)).min(PAIR_AREA_CAP);
                }
            }
        }
        // Per-qubit load: areas of pairs sharing a qubit serialize, disjoint
        // pairs run concurrently.
        let mut two_q_load: HashMap<usize, f64> = HashMap::new();
        for (&(a, b), &area) in &pair_area {
            let t = l.two_qubit_time(area);
            *two_q_load.entry(a).or_insert(0.0) += t;
            *two_q_load.entry(b).or_insert(0.0) += t;
        }
        // Single-qubit rotations on one qubit similarly compose to a single
        // rotation of angle at most π between entangling segments; cap the
        // per-qubit single-qubit content accordingly.
        let t_interaction = two_q_load.values().fold(0.0f64, |a, &b| a.max(b));
        let t_single = one_q_area
            .values()
            .map(|&angle| l.one_qubit_time(angle.min(PI)))
            .fold(0.0f64, f64::max);
        // Single-qubit work largely overlaps with the interaction inside an
        // optimized pulse; only a fraction remains on the critical path.
        l.instruction_overhead_ns + t_interaction + l.single_qubit_overlap * t_single
    }

    fn name(&self) -> &'static str {
        "calibrated-xy"
    }
}

/// The per-gate pulse-duration table in the style of Table 1 of the paper,
/// computed from a latency model for the standard ISA gates.
#[derive(Debug, Clone, PartialEq)]
pub struct GateTimeTable {
    /// `(label, duration_ns)` rows.
    pub rows: Vec<(String, f64)>,
}

impl GateTimeTable {
    /// Builds the table for the common ISA gates using the supplied model and
    /// the worked example's angles (γ = 5.67 for Rz, β = 1.26 for Rx).
    pub fn standard<M: LatencyModel + ?Sized>(model: &M) -> Self {
        let entries: Vec<(&str, Instruction)> = vec![
            ("CNOT", Instruction::new(Gate::Cnot, vec![0, 1])),
            ("SWAP", Instruction::new(Gate::Swap, vec![0, 1])),
            ("H", Instruction::new(Gate::H, vec![0])),
            ("Rz(5.67)", Instruction::new(Gate::Rz(5.67), vec![0])),
            ("Rx(1.26)", Instruction::new(Gate::Rx(1.26), vec![0])),
            ("iSWAP", Instruction::new(Gate::ISwap, vec![0, 1])),
            ("CZ", Instruction::new(Gate::Cz, vec![0, 1])),
            ("ZZ(5.67)", Instruction::new(Gate::Rzz(5.67), vec![0, 1])),
        ];
        let rows = entries
            .into_iter()
            .map(|(label, inst)| (label.to_string(), model.isa_gate_latency(&inst)))
            .collect();
        Self { rows }
    }

    /// Looks up a row by label.
    pub fn get(&self, label: &str) -> Option<f64> {
        self.rows.iter().find(|(l, _)| l == label).map(|(_, t)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(gate: Gate, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec())
    }

    #[test]
    fn isa_gate_times_have_the_papers_ordering() {
        let m = CalibratedLatencyModel::asplos19();
        let t_cnot = m.isa_gate_latency(&inst(Gate::Cnot, &[0, 1]));
        let t_swap = m.isa_gate_latency(&inst(Gate::Swap, &[0, 1]));
        let t_h = m.isa_gate_latency(&inst(Gate::H, &[0]));
        let t_rz = m.isa_gate_latency(&inst(Gate::Rz(5.67), &[0]));
        let t_rx = m.isa_gate_latency(&inst(Gate::Rx(1.26), &[0]));
        // Same ordering as Table 1: SWAP > CNOT >> H > Rz(5.67) ~ Rx(1.26).
        assert!(t_swap > t_cnot);
        assert!(t_cnot > 3.0 * t_h);
        assert!(t_h > t_rx);
        assert!(t_rz < t_h);
        // Two-qubit gates land in the tens of nanoseconds, single-qubit below ~15.
        assert!(t_cnot > 25.0 && t_cnot < 60.0, "CNOT {t_cnot}");
        assert!(t_swap > 35.0 && t_swap < 70.0, "SWAP {t_swap}");
        assert!(t_h < 15.0);
    }

    #[test]
    fn identity_costs_nothing() {
        let m = CalibratedLatencyModel::asplos19();
        assert_eq!(m.isa_gate_latency(&inst(Gate::I, &[0])), 0.0);
        assert_eq!(m.isa_gate_latency(&inst(Gate::Rz(0.0), &[0])), 0.0);
        assert_eq!(m.aggregate_latency(&[inst(Gate::I, &[0])]), 0.0);
    }

    #[test]
    fn aggregate_never_slower_than_sum_of_parts() {
        let m = CalibratedLatencyModel::asplos19();
        let parts = vec![
            inst(Gate::Cnot, &[0, 1]),
            inst(Gate::Rz(1.1), &[1]),
            inst(Gate::Cnot, &[0, 1]),
            inst(Gate::H, &[0]),
            inst(Gate::Cnot, &[1, 2]),
        ];
        let individual: f64 = parts.iter().map(|i| m.isa_gate_latency(i)).sum();
        let merged = m.aggregate_latency(&parts);
        assert!(merged < individual, "merged {merged} vs sum {individual}");
    }

    #[test]
    fn aggregate_latency_is_subadditive() {
        let m = CalibratedLatencyModel::asplos19();
        let a = vec![inst(Gate::Cnot, &[0, 1]), inst(Gate::Rz(0.4), &[1])];
        let b = vec![inst(Gate::Cnot, &[1, 2]), inst(Gate::H, &[2])];
        let together: Vec<Instruction> = a.iter().chain(b.iter()).cloned().collect();
        assert!(
            m.aggregate_latency(&together)
                <= m.aggregate_latency(&a) + m.aggregate_latency(&b) + 1e-9
        );
    }

    #[test]
    fn diagonal_block_cheaper_than_cnot_rz_cnot() {
        let m = CalibratedLatencyModel::asplos19();
        // The detected diagonal instruction (a single Rzz) …
        let detected = m.aggregate_latency(&[inst(Gate::Rzz(1.3), &[0, 1])]);
        // … versus aggregating the raw CNOT–Rz–CNOT constituents …
        let raw = m.aggregate_latency(&[
            inst(Gate::Cnot, &[0, 1]),
            inst(Gate::Rz(1.3), &[1]),
            inst(Gate::Cnot, &[0, 1]),
        ]);
        // … versus the gate-based path.
        let isa: f64 = [
            inst(Gate::Cnot, &[0, 1]),
            inst(Gate::Rz(1.3), &[1]),
            inst(Gate::Cnot, &[0, 1]),
        ]
        .iter()
        .map(|i| m.isa_gate_latency(i))
        .sum();
        assert!(detected < raw);
        assert!(raw < isa);
        assert!(isa / detected > 3.0, "speedup {}", isa / detected);
    }

    #[test]
    fn disjoint_edges_run_in_parallel_inside_an_aggregate() {
        let m = CalibratedLatencyModel::asplos19();
        let serial = m.aggregate_latency(&[inst(Gate::Cnot, &[0, 1]), inst(Gate::Cnot, &[1, 2])]);
        let parallel = m.aggregate_latency(&[inst(Gate::Cnot, &[0, 1]), inst(Gate::Cnot, &[2, 3])]);
        assert!(parallel < serial);
    }

    #[test]
    fn interaction_areas_match_known_gate_costs() {
        assert!((interaction_area(&Gate::ISwap) - FRAC_PI_2).abs() < 1e-12);
        assert!((interaction_area(&Gate::Cnot) - PI).abs() < 1e-12);
        assert!((interaction_area(&Gate::Swap) - 1.5 * PI).abs() < 1e-12);
        assert!(interaction_area(&Gate::Rzz(0.2)) < interaction_area(&Gate::Cnot));
        assert!(interaction_area(&Gate::H).abs() < 1e-12);
    }

    #[test]
    fn default_batch_pricing_matches_sequential_queries() {
        let m = CalibratedLatencyModel::asplos19();
        let a = vec![inst(Gate::Cnot, &[0, 1]), inst(Gate::Rz(0.4), &[1])];
        let b = vec![inst(Gate::H, &[2])];
        let c = vec![inst(Gate::Cnot, &[0, 1]), inst(Gate::Rz(0.4), &[1])]; // dup of a
        let queries: Vec<&[Instruction]> = vec![&a, &b, &c];
        let expected: Vec<f64> = queries.iter().map(|q| m.aggregate_latency(q)).collect();
        // Analytic model: the default impl prices serially regardless of pool.
        for pool in [ThreadPool::serial(), ThreadPool::new(4)] {
            let got = m.aggregate_latency_batch(&queries, &pool);
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
        }
        assert!(m.pricing_stats().is_none());
    }

    #[test]
    fn pricing_stats_delta_and_hits() {
        let a = PricingStats {
            queries: 10,
            solves: 4,
        };
        let b = PricingStats {
            queries: 25,
            solves: 7,
        };
        assert_eq!(a.cache_hits(), 6);
        let d = b.delta_since(&a);
        assert_eq!(
            d,
            PricingStats {
                queries: 15,
                solves: 3
            }
        );
        assert_eq!(d.cache_hits(), 12);
    }

    #[test]
    fn gate_time_table_contains_standard_rows() {
        let m = CalibratedLatencyModel::asplos19();
        let table = GateTimeTable::standard(&m);
        assert!(table.get("CNOT").unwrap() > 20.0);
        assert!(table.get("SWAP").unwrap() > table.get("CNOT").unwrap());
        assert!(table.get("H").unwrap() < 15.0);
        assert!(table.get("nonexistent").is_none());
        assert_eq!(table.rows.len(), 8);
    }
}
