//! # qcc-hw
//!
//! Hardware models for the aggregated-instruction quantum compiler: physical
//! qubit topologies, superconducting control-field limits (the paper's §5.1
//! settings), physical gate sets per platform (Appendix A), and the latency
//! models that score compiled schedules.
//!
//! ## Example
//!
//! ```
//! use qcc_hw::{Device, Topology, CalibratedLatencyModel, LatencyModel};
//! use qcc_ir::{Gate, Instruction};
//!
//! let device = Device::transmon_grid(30);
//! assert!(device.n_qubits() >= 30);
//!
//! let model = CalibratedLatencyModel::asplos19();
//! let cnot = Instruction::new(Gate::Cnot, vec![0, 1]);
//! assert!(model.isa_gate_latency(&cnot) > 20.0);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod device;
pub mod latency;
pub mod persist;
pub mod topology;

pub use backend::Backend;
pub use device::{ControlLimits, Device, InteractionType};
pub use latency::{
    interaction_area, CalibratedLatencyModel, GateTimeTable, LatencyModel, PricingStats,
};
pub use persist::{PersistError, PersistentCache};
pub use topology::Topology;
