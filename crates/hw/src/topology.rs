//! Physical qubit topologies.
//!
//! The paper evaluates on a rectangular-grid superconducting device with
//! nearest-neighbour coupling (§3.4.1) and uses a 1-D line for the worked QAOA
//! example (§3.1). Both are provided here, together with an all-to-all
//! topology useful for isolating the effect of routing.

use qcc_graph::Graph;
use serde::{Deserialize, Serialize};

/// Connectivity of the physical device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// 1-D nearest-neighbour chain of `n` qubits.
    Linear(usize),
    /// Rectangular grid, `rows × cols` qubits indexed row-major.
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Fully connected device (no routing needed).
    AllToAll(usize),
}

impl Topology {
    /// A grid that is as close to square as possible while holding at least
    /// `n` qubits — the shape used for the paper's benchmarks.
    pub fn near_square_grid(n: usize) -> Topology {
        if n == 0 {
            return Topology::Grid { rows: 0, cols: 0 };
        }
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        Topology::Grid { rows, cols }
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        match self {
            Topology::Linear(n) | Topology::AllToAll(n) => *n,
            Topology::Grid { rows, cols } => rows * cols,
        }
    }

    /// Whether two physical qubits are directly coupled.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        if a == b || a >= self.n_qubits() || b >= self.n_qubits() {
            return false;
        }
        match self {
            Topology::Linear(_) => a.abs_diff(b) == 1,
            Topology::AllToAll(_) => true,
            Topology::Grid { cols, .. } => {
                let (ra, ca) = (a / cols, a % cols);
                let (rb, cb) = (b / cols, b % cols);
                ra.abs_diff(rb) + ca.abs_diff(cb) == 1
            }
        }
    }

    /// Manhattan / hop distance between two physical qubits.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        match self {
            Topology::Linear(_) => a.abs_diff(b),
            Topology::AllToAll(_) => usize::from(a != b),
            Topology::Grid { cols, .. } => {
                let (ra, ca) = (a / cols, a % cols);
                let (rb, cb) = (b / cols, b % cols);
                ra.abs_diff(rb) + ca.abs_diff(cb)
            }
        }
    }

    /// Neighbours of a physical qubit.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        (0..self.n_qubits())
            .filter(|&other| self.are_adjacent(q, other))
            .collect()
    }

    /// The coupling graph.
    pub fn as_graph(&self) -> Graph {
        let n = self.n_qubits();
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if self.are_adjacent(a, b) {
                    g.add_edge(a, b, 1.0);
                }
            }
        }
        g
    }

    /// A shortest path of physical qubits from `a` to `b` (inclusive).
    ///
    /// Returns `None` only when either endpoint is out of range.
    pub fn path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a >= self.n_qubits() || b >= self.n_qubits() {
            return None;
        }
        match self {
            Topology::Linear(_) => {
                let path = if a <= b {
                    (a..=b).collect()
                } else {
                    (b..=a).rev().collect()
                };
                Some(path)
            }
            Topology::AllToAll(_) => Some(if a == b { vec![a] } else { vec![a, b] }),
            Topology::Grid { cols, .. } => {
                // Walk rows first, then columns.
                let mut path = vec![a];
                let (mut r, mut c) = (a / cols, a % cols);
                let (rb, cb) = (b / cols, b % cols);
                while r != rb {
                    r = if r < rb { r + 1 } else { r - 1 };
                    path.push(r * cols + c);
                }
                while c != cb {
                    c = if c < cb { c + 1 } else { c - 1 };
                    path.push(r * cols + c);
                }
                Some(path)
            }
        }
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Topology::Linear(n) => format!("linear-{n}"),
            Topology::Grid { rows, cols } => format!("grid-{rows}x{cols}"),
            Topology::AllToAll(n) => format!("full-{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_adjacency_and_distance() {
        let t = Topology::Linear(5);
        assert!(t.are_adjacent(1, 2));
        assert!(!t.are_adjacent(0, 2));
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.neighbors(2), vec![1, 3]);
        assert_eq!(t.path(3, 0).unwrap(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn grid_adjacency_and_distance() {
        let t = Topology::Grid { rows: 3, cols: 4 };
        assert_eq!(t.n_qubits(), 12);
        assert!(t.are_adjacent(0, 1));
        assert!(t.are_adjacent(0, 4));
        assert!(!t.are_adjacent(0, 5));
        assert_eq!(t.distance(0, 11), 2 + 3);
        let p = t.path(0, 11).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&11));
        assert_eq!(p.len(), t.distance(0, 11) + 1);
        for w in p.windows(2) {
            assert!(t.are_adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn all_to_all_everything_adjacent() {
        let t = Topology::AllToAll(6);
        assert!(t.are_adjacent(0, 5));
        assert_eq!(t.distance(2, 2), 0);
        assert_eq!(t.distance(1, 4), 1);
        assert_eq!(t.neighbors(3).len(), 5);
    }

    #[test]
    fn near_square_grid_holds_requested_qubits() {
        for n in [1usize, 5, 16, 17, 30, 47, 60] {
            let t = Topology::near_square_grid(n);
            assert!(t.n_qubits() >= n, "n={n} got {}", t.n_qubits());
            if let Topology::Grid { rows, cols } = t {
                assert!(cols.abs_diff(rows) <= 1 || rows * cols < n + cols);
            }
        }
    }

    #[test]
    fn coupling_graph_matches_adjacency() {
        let t = Topology::Grid { rows: 2, cols: 3 };
        let g = t.as_graph();
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 7); // 2*2 vertical + 3 horizontal... actually 3 vertical + 4 horizontal
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(g.has_edge(a, b), t.are_adjacent(a, b));
            }
        }
    }

    #[test]
    fn out_of_range_is_not_adjacent() {
        let t = Topology::Linear(3);
        assert!(!t.are_adjacent(2, 3));
        assert!(t.path(0, 9).is_none());
    }
}
