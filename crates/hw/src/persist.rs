//! The on-disk snapshot container: a bespoke little-endian binary format for
//! persisting cache state across process restarts.
//!
//! # Format (version 2)
//!
//! All integers are little-endian; floats are raw `f64::to_bits` patterns.
//!
//! ```text
//! magic            8 bytes   b"QCCSNAP\0"
//! format version   u32
//! kind length      u32       } what kind of cache this is,
//! kind bytes       ..        } e.g. "grape-latency-cache"
//! fingerprint len  u64       } namespace: the writer's backend/solver
//! fingerprint      ..        } fingerprint bytes — loads must match exactly
//! header checksum  u64       FNV-1a 64 over every header byte above
//! record count     u64
//! record[i]:
//!   payload len    u64
//!   payload        ..        opaque to the container; typed by `kind`
//!   checksum       u64       FNV-1a 64 over the payload bytes
//! (end of file — trailing bytes are an error)
//! ```
//!
//! The container is deliberately paranoid: the header checksum catches a
//! corrupted preamble before any record is trusted, each record carries its
//! own checksum so a single flipped byte anywhere in the payload is detected,
//! truncation at any byte fails the parse, and bytes past the last record are
//! rejected rather than ignored. A reader therefore either reconstructs
//! exactly what the writer serialized or returns a [`PersistError`] — it
//! never silently misreads, which is what lets callers degrade a bad
//! snapshot to a cold start with no correctness risk.
//!
//! # Version policy
//!
//! [`FORMAT_VERSION`] is bumped on **any** layout change, with no
//! cross-version migration: a version mismatch is a load error
//! ([`PersistError::UnsupportedVersion`]) and the caller falls back to a cold
//! start. Snapshots are caches — regenerating them is always safe — so
//! compatibility machinery would buy nothing but risk.
//!
//! # Atomicity
//!
//! [`write_atomic`] writes to a `.tmp` sibling and renames it over the
//! destination, so a crash mid-write leaves either the old snapshot or none —
//! never a torn file that parses.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use qcc_ir::bytes::{ByteCursor, DecodeError};

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"QCCSNAP\0";

/// Current snapshot format version. Bumped on any layout change; older or
/// newer versions are rejected at load (see the module docs for the policy).
pub const FORMAT_VERSION: u32 = 2;

/// File extension used for snapshot files.
pub const SNAPSHOT_EXTENSION: &str = "qccsnap";

/// Why a snapshot could not be loaded (or written).
///
/// Every variant's `Display` names the mismatch concretely — which kind or
/// fingerprint was expected vs found, at which offset the stream gave out —
/// so a rejected warm start is diagnosable from the error string alone.
#[derive(Debug)]
pub enum PersistError {
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic {
        /// The first bytes actually found.
        found: Vec<u8>,
    },
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
    },
    /// The file holds a different kind of cache than the reader expected.
    KindMismatch {
        /// Kind the reader asked for.
        expected: String,
        /// Kind recorded in the file.
        found: String,
    },
    /// The file was written under a different fingerprint namespace — e.g. a
    /// different device calibration, solver configuration, or backend — and
    /// its contents would be wrong to reuse.
    FingerprintMismatch {
        /// Fingerprint the reader derived from its live configuration.
        expected: Vec<u8>,
        /// Fingerprint recorded in the file.
        found: Vec<u8>,
    },
    /// The header bytes fail their checksum.
    HeaderChecksumMismatch,
    /// A record's payload fails its checksum.
    ChecksumMismatch {
        /// Zero-based index of the failing record.
        record: usize,
    },
    /// The file ended before the declared content did.
    Truncated {
        /// Decoder-level detail: what was being read, at which offset.
        detail: DecodeError,
    },
    /// Bytes remain after the last declared record.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A record payload parsed by a typed codec was malformed.
    Malformed {
        /// Decoder-level detail: what was being read, at which offset.
        detail: DecodeError,
    },
    /// An I/O error reading or writing the snapshot file.
    Io(io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => {
                write!(f, "not a snapshot file: bad magic {found:02x?}")
            }
            Self::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version {FORMAT_VERSION})"
            ),
            Self::KindMismatch { expected, found } => write!(
                f,
                "snapshot kind mismatch: expected {expected:?}, file holds {found:?}"
            ),
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint mismatch: written under a different \
                 configuration (expected {} bytes {:02x?}.., found {} bytes {:02x?}..)",
                expected.len(),
                &expected[..expected.len().min(8)],
                found.len(),
                &found[..found.len().min(8)],
            ),
            Self::HeaderChecksumMismatch => write!(f, "snapshot header checksum mismatch"),
            Self::ChecksumMismatch { record } => {
                write!(f, "snapshot record {record} checksum mismatch")
            }
            Self::Truncated { detail } => write!(f, "snapshot truncated: {detail}"),
            Self::TrailingBytes { extra } => {
                write!(f, "snapshot has {extra} trailing bytes past the last record")
            }
            Self::Malformed { detail } => write!(f, "snapshot record malformed: {detail}"),
            Self::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Truncated { detail } | Self::Malformed { detail } => Some(detail),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// FNV-1a 64-bit hash — the format's checksum and the workspace's signature
/// hash. Deterministic, dependency-free, and sensitive to any single-byte
/// change.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a 64-bit hash as the fixed-width hex token used in snapshot file
/// names (`grape-<hex16>.qccsnap`).
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

/// Builds a snapshot byte stream: header first, then records appended one at
/// a time.
///
/// ```
/// use qcc_hw::persist::{parse, SnapshotWriter};
///
/// let mut w = SnapshotWriter::new("example-cache", b"fingerprint");
/// w.record(b"payload one");
/// w.record(b"payload two");
/// let bytes = w.finish();
/// let records = parse(&bytes, "example-cache", b"fingerprint").unwrap();
/// assert_eq!(records, vec![b"payload one".to_vec(), b"payload two".to_vec()]);
/// ```
pub struct SnapshotWriter {
    header: Vec<u8>,
    records: Vec<u8>,
    count: u64,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given `kind` under the given `fingerprint`
    /// namespace.
    pub fn new(kind: &str, fingerprint: &[u8]) -> Self {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&(kind.len() as u32).to_le_bytes());
        header.extend_from_slice(kind.as_bytes());
        header.extend_from_slice(&(fingerprint.len() as u64).to_le_bytes());
        header.extend_from_slice(fingerprint);
        let checksum = fnv64(&header);
        header.extend_from_slice(&checksum.to_le_bytes());
        Self {
            header,
            records: Vec::new(),
            count: 0,
        }
    }

    /// Appends one record payload (length-prefixed and checksummed).
    pub fn record(&mut self, payload: &[u8]) {
        self.records
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.records.extend_from_slice(payload);
        self.records
            .extend_from_slice(&fnv64(payload).to_le_bytes());
        self.count += 1;
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finalizes the snapshot and returns the complete byte stream.
    pub fn finish(self) -> Vec<u8> {
        let mut out = self.header;
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.records);
        out
    }
}

fn truncated(detail: DecodeError) -> PersistError {
    PersistError::Truncated { detail }
}

/// Parses a snapshot byte stream, validating magic, version, kind,
/// fingerprint, and every checksum, and returns the record payloads in
/// written order.
///
/// Any deviation — wrong magic, foreign version, kind or fingerprint
/// mismatch, a failed checksum, truncation, or trailing bytes — is a
/// [`PersistError`]; no partially-validated data is ever returned.
pub fn parse(
    bytes: &[u8],
    expected_kind: &str,
    expected_fingerprint: &[u8],
) -> Result<Vec<Vec<u8>>, PersistError> {
    let mut cur = ByteCursor::new(bytes);
    let magic = cur
        .bytes(MAGIC.len(), "snapshot magic")
        .map_err(truncated)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic {
            found: magic.to_vec(),
        });
    }
    let version = cur.u32("snapshot format version").map_err(truncated)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let kind_len = cur.u32("snapshot kind length").map_err(truncated)? as usize;
    let kind_bytes = cur.bytes(kind_len, "snapshot kind").map_err(truncated)?;
    let found_kind = String::from_utf8_lossy(kind_bytes).into_owned();
    let fp_len = cur.len("snapshot fingerprint length").map_err(truncated)?;
    let fingerprint = cur
        .bytes(fp_len, "snapshot fingerprint")
        .map_err(truncated)?;
    let header_end = cur.offset();
    let declared_header_checksum = cur.u64("snapshot header checksum").map_err(truncated)?;
    if fnv64(&bytes[..header_end]) != declared_header_checksum {
        return Err(PersistError::HeaderChecksumMismatch);
    }
    // Only trust the kind/fingerprint comparisons after the checksum has
    // vouched for the header bytes — a corrupted fingerprint should read as
    // corruption, not as "someone else's snapshot".
    if found_kind != expected_kind {
        return Err(PersistError::KindMismatch {
            expected: expected_kind.to_string(),
            found: found_kind,
        });
    }
    if fingerprint != expected_fingerprint {
        return Err(PersistError::FingerprintMismatch {
            expected: expected_fingerprint.to_vec(),
            found: fingerprint.to_vec(),
        });
    }
    let count = cur.len("snapshot record count").map_err(truncated)?;
    let mut records = Vec::new();
    for i in 0..count {
        let payload_len = cur.len("record payload length").map_err(truncated)?;
        let payload = cur
            .bytes(payload_len, "record payload")
            .map_err(truncated)?;
        let declared = cur.u64("record checksum").map_err(truncated)?;
        if fnv64(payload) != declared {
            return Err(PersistError::ChecksumMismatch { record: i });
        }
        records.push(payload.to_vec());
    }
    if !cur.is_empty() {
        return Err(PersistError::TrailingBytes {
            extra: cur.remaining(),
        });
    }
    Ok(records)
}

/// Writes `bytes` to `path` atomically: the contents go to a `.tmp` sibling
/// first and are renamed into place, so a crash mid-write can never leave a
/// torn file at `path`. Parent directories are created as needed.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp: PathBuf = path.to_path_buf();
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    tmp.set_file_name(tmp_name);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and parses the snapshot at `path` (see [`parse`]).
pub fn load_records(
    path: &Path,
    expected_kind: &str,
    expected_fingerprint: &[u8],
) -> Result<Vec<Vec<u8>>, PersistError> {
    let bytes = std::fs::read(path)?;
    parse(&bytes, expected_kind, expected_fingerprint)
}

/// A cache that can spill its state to a snapshot file and warm-start from
/// one.
///
/// Implementations are fingerprint-namespaced: the snapshot embeds the
/// cache's configuration fingerprint and `warm_start_from` rejects files
/// written under any other configuration (see
/// [`PersistError::FingerprintMismatch`]). The strict `Result` API is for
/// tests and diagnostics; boot paths that should degrade gracefully wrap it
/// and treat any error as a cold start.
pub trait PersistentCache {
    /// The snapshot kind tag this cache writes (e.g. `"grape-latency-cache"`).
    fn snapshot_kind(&self) -> &'static str;

    /// The fingerprint namespace — a byte string that changes whenever reusing
    /// the cached values would be incorrect (device calibration, solver
    /// configuration, backend identity).
    fn snapshot_fingerprint(&self) -> Vec<u8>;

    /// Serializes the current cache state to `path` atomically. Returns the
    /// number of records written.
    fn snapshot_to(&self, path: &Path) -> Result<usize, PersistError>;

    /// Loads a snapshot written by `snapshot_to` into this cache. Returns the
    /// number of records loaded. Fails (leaving the cache as it was) if the
    /// file is corrupt, truncated, of a different kind/version, or written
    /// under a different fingerprint.
    fn warm_start_from(&self, path: &Path) -> Result<usize, PersistError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_records() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1, 2, 3], vec![0xff; 100]];
        let mut w = SnapshotWriter::new("test-cache", b"fp-bytes");
        for p in &payloads {
            w.record(p);
        }
        assert_eq!(w.len(), 3);
        let bytes = w.finish();
        let back = parse(&bytes, "test-cache", b"fp-bytes").unwrap();
        assert_eq!(back, payloads);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let w = SnapshotWriter::new("test-cache", b"");
        assert!(w.is_empty());
        let bytes = w.finish();
        assert_eq!(
            parse(&bytes, "test-cache", b"").unwrap(),
            Vec::<Vec<u8>>::new()
        );
    }

    #[test]
    fn kind_and_fingerprint_mismatches_are_named() {
        let mut w = SnapshotWriter::new("kind-a", b"fp-1");
        w.record(b"x");
        let bytes = w.finish();
        let err = parse(&bytes, "kind-b", b"fp-1").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("kind-a") && msg.contains("kind-b"), "{msg}");
        let err = parse(&bytes, "kind-a", b"fp-2").unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"));
    }

    #[test]
    fn foreign_version_is_rejected_by_number() {
        let mut w = SnapshotWriter::new("k", b"f");
        w.record(b"x");
        let mut bytes = w.finish();
        // Patch the version field (bytes 8..12) and re-stamp the header
        // checksum so only the version differs.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let fp_start = 8 + 4 + 4 + 1; // magic, version, kind len, "k"
        let header_end = fp_start + 8 + 1; // fp len, "f"
        let fixed = fnv64(&bytes[..header_end]);
        bytes[header_end..header_end + 8].copy_from_slice(&fixed.to_le_bytes());
        match parse(&bytes, "k", b"f").unwrap_err() {
            PersistError::UnsupportedVersion { found: 99 } => {}
            other => panic!("expected UnsupportedVersion, got {other}"),
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let mut w = SnapshotWriter::new("test-cache", b"fp");
        w.record(b"hello");
        w.record(b"world!!");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            assert!(
                parse(&bytes[..cut], "test-cache", b"fp").is_err(),
                "prefix of length {cut} parsed"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapshotWriter::new("test-cache", b"fp");
        w.record(b"hello");
        let mut bytes = w.finish();
        bytes.push(0);
        match parse(&bytes, "test-cache", b"fp").unwrap_err() {
            PersistError::TrailingBytes { extra: 1 } => {}
            other => panic!("expected TrailingBytes, got {other}"),
        }
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("qcc-persist-test-{}", std::process::id()));
        let path = dir.join("nested").join("snap.qccsnap");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let tmp_count = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .count();
        assert_eq!(tmp_count, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv64_is_single_byte_sensitive_on_samples() {
        let base = b"the quick brown fox".to_vec();
        let h = fnv64(&base);
        for i in 0..base.len() {
            for flip in [0x01u8, 0x80] {
                let mut m = base.clone();
                m[i] ^= flip;
                assert_ne!(fnv64(&m), h, "flip bit {flip:#x} at byte {i}");
            }
        }
        assert_eq!(hex16(0xdead_beef), "00000000deadbeef");
    }
}
