//! Device models: control-field limits and physical gate sets for the quantum
//! information-processing platforms listed in Appendix A of the paper.

use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// The native two-qubit interaction of a platform (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InteractionType {
    /// XY (flip-flop) interaction — capacitively coupled transmons; the native
    /// gate is iSWAP. This is the platform the paper evaluates.
    Xy,
    /// ZZ interaction — Josephson flux qubits, NMR; native gate CPhase.
    Zz,
    /// Heisenberg exchange — quantum dots; native gate √SWAP.
    Heisenberg,
    /// Dipole-chain interaction — trapped ions; native gates XX / geometric
    /// phase gates.
    DipoleChain,
}

impl InteractionType {
    /// Canonical name of the native two-qubit gate.
    pub fn native_gate_name(self) -> &'static str {
        match self {
            InteractionType::Xy => "iswap",
            InteractionType::Zz => "cphase",
            InteractionType::Heisenberg => "sqrt_swap",
            InteractionType::DipoleChain => "xx",
        }
    }
}

/// Control-field limits and pulse bookkeeping constants for a device.
///
/// The defaults follow §5.1 of the paper: a two-qubit XY drive limit of
/// `µ_max = 0.02 GHz` and single-qubit drives five times stronger, which keeps
/// transmon leakage low without modelling the third level explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlLimits {
    /// Maximum two-qubit coupling drive amplitude in GHz.
    pub two_qubit_max_ghz: f64,
    /// Maximum single-qubit drive amplitude in GHz.
    pub one_qubit_max_ghz: f64,
    /// Fixed per-instruction pulse overhead in ns (rise/fall, AWG context
    /// switching). Gate-based compilation pays this per gate; aggregated
    /// compilation pays it once per aggregated instruction — one of the two
    /// sources of speedup in the paper's cost structure.
    pub instruction_overhead_ns: f64,
    /// Fraction of single-qubit rotation time that cannot be hidden under the
    /// two-qubit interaction inside an optimized pulse (0 = fully absorbed,
    /// 1 = fully serialized).
    pub single_qubit_overlap: f64,
    /// Time discretization used when emitting pulse programs, ns.
    pub pulse_dt_ns: f64,
}

impl Default for ControlLimits {
    fn default() -> Self {
        Self {
            two_qubit_max_ghz: 0.02,
            one_qubit_max_ghz: 0.10,
            instruction_overhead_ns: 4.0,
            single_qubit_overlap: 0.4,
            pulse_dt_ns: 0.5,
        }
    }
}

impl ControlLimits {
    /// Limits matching the paper's §5.1 settings (same as `Default`).
    pub fn asplos19() -> Self {
        Self::default()
    }

    /// Time in ns needed to accumulate `area` radians of two-qubit interaction
    /// phase at the maximum coupling drive.
    pub fn two_qubit_time(&self, area: f64) -> f64 {
        area / (2.0 * std::f64::consts::PI * self.two_qubit_max_ghz)
    }

    /// Time in ns needed for a single-qubit rotation of `angle` radians at the
    /// maximum single-qubit drive.
    pub fn one_qubit_time(&self, angle: f64) -> f64 {
        angle / (2.0 * std::f64::consts::PI * self.one_qubit_max_ghz)
    }
}

/// A complete device description: topology, interaction type and control
/// limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Physical connectivity.
    pub topology: Topology,
    /// Native interaction Hamiltonian class.
    pub interaction: InteractionType,
    /// Control-field limits.
    pub limits: ControlLimits,
}

impl Device {
    /// A superconducting transmon device with XY coupling on the given
    /// topology, using the paper's control limits.
    pub fn transmon(topology: Topology) -> Self {
        Self {
            topology,
            interaction: InteractionType::Xy,
            limits: ControlLimits::asplos19(),
        }
    }

    /// A transmon grid sized for `n` program qubits.
    pub fn transmon_grid(n: usize) -> Self {
        Self::transmon(Topology::near_square_grid(n))
    }

    /// A transmon line (the topology of the paper's worked QAOA example).
    pub fn transmon_line(n: usize) -> Self {
        Self::transmon(Topology::Linear(n))
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.topology.n_qubits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_match_paper() {
        let l = ControlLimits::asplos19();
        assert!((l.two_qubit_max_ghz - 0.02).abs() < 1e-12);
        assert!((l.one_qubit_max_ghz - 0.10).abs() < 1e-12);
        assert!((l.one_qubit_max_ghz / l.two_qubit_max_ghz - 5.0).abs() < 1e-9);
    }

    #[test]
    fn interaction_time_scales_inversely_with_drive() {
        let l = ControlLimits::asplos19();
        // A π/2 XY area (one iSWAP) at 0.02 GHz takes 12.5 ns.
        assert!((l.two_qubit_time(std::f64::consts::FRAC_PI_2) - 12.5).abs() < 1e-9);
        // A π single-qubit rotation at 0.1 GHz takes 5 ns.
        assert!((l.one_qubit_time(std::f64::consts::PI) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn device_constructors() {
        let d = Device::transmon_grid(30);
        assert!(d.n_qubits() >= 30);
        assert_eq!(d.interaction, InteractionType::Xy);
        assert_eq!(d.interaction.native_gate_name(), "iswap");
        let line = Device::transmon_line(3);
        assert_eq!(line.n_qubits(), 3);
        assert_eq!(line.topology, Topology::Linear(3));
    }
}
