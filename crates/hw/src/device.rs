//! Device models: control-field limits and physical gate sets for the quantum
//! information-processing platforms listed in Appendix A of the paper.

use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// The native two-qubit interaction of a platform (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InteractionType {
    /// XY (flip-flop) interaction — capacitively coupled transmons; the native
    /// gate is iSWAP. This is the platform the paper evaluates.
    Xy,
    /// ZZ interaction — Josephson flux qubits, NMR; native gate CPhase.
    Zz,
    /// Heisenberg exchange — quantum dots; native gate √SWAP.
    Heisenberg,
    /// Dipole-chain interaction — trapped ions; native gates XX / geometric
    /// phase gates.
    DipoleChain,
}

impl InteractionType {
    /// Canonical name of the native two-qubit gate.
    pub fn native_gate_name(self) -> &'static str {
        match self {
            InteractionType::Xy => "iswap",
            InteractionType::Zz => "cphase",
            InteractionType::Heisenberg => "sqrt_swap",
            InteractionType::DipoleChain => "xx",
        }
    }
}

/// Control-field limits and pulse bookkeeping constants for a device.
///
/// The defaults follow §5.1 of the paper: a two-qubit XY drive limit of
/// `µ_max = 0.02 GHz` and single-qubit drives five times stronger, which keeps
/// transmon leakage low without modelling the third level explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlLimits {
    /// Maximum two-qubit coupling drive amplitude in GHz.
    pub two_qubit_max_ghz: f64,
    /// Maximum single-qubit drive amplitude in GHz.
    pub one_qubit_max_ghz: f64,
    /// Fixed per-instruction pulse overhead in ns (rise/fall, AWG context
    /// switching). Gate-based compilation pays this per gate; aggregated
    /// compilation pays it once per aggregated instruction — one of the two
    /// sources of speedup in the paper's cost structure.
    pub instruction_overhead_ns: f64,
    /// Fraction of single-qubit rotation time that cannot be hidden under the
    /// two-qubit interaction inside an optimized pulse (0 = fully absorbed,
    /// 1 = fully serialized).
    pub single_qubit_overlap: f64,
    /// Time discretization used when emitting pulse programs, ns.
    pub pulse_dt_ns: f64,
}

impl Default for ControlLimits {
    fn default() -> Self {
        Self {
            two_qubit_max_ghz: 0.02,
            one_qubit_max_ghz: 0.10,
            instruction_overhead_ns: 4.0,
            single_qubit_overlap: 0.4,
            pulse_dt_ns: 0.5,
        }
    }
}

impl ControlLimits {
    /// Limits matching the paper's §5.1 settings (same as `Default`).
    pub fn asplos19() -> Self {
        Self::default()
    }

    /// These limits with both drive amplitudes scaled by `factor` — the
    /// one-knob way to model a faster (`factor > 1`) or slower (`factor < 1`)
    /// calibration of the same platform when assembling a heterogeneous
    /// fleet. Overheads and discretization are left untouched: they are
    /// properties of the control electronics, not of the drive strength.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not a positive finite number.
    pub fn scaled_drives(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "drive scale factor must be positive and finite, got {factor}"
        );
        Self {
            two_qubit_max_ghz: self.two_qubit_max_ghz * factor,
            one_qubit_max_ghz: self.one_qubit_max_ghz * factor,
            ..self
        }
    }

    /// Appends an injective byte encoding of these limits (the raw
    /// `f64::to_bits` patterns of every field) to `out` — the limits' part of
    /// a backend fingerprint. Limits differing in any bit encode differently.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.two_qubit_max_ghz,
            self.one_qubit_max_ghz,
            self.instruction_overhead_ns,
            self.single_qubit_overlap,
            self.pulse_dt_ns,
        ] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Time in ns needed to accumulate `area` radians of two-qubit interaction
    /// phase at the maximum coupling drive.
    pub fn two_qubit_time(&self, area: f64) -> f64 {
        area / (2.0 * std::f64::consts::PI * self.two_qubit_max_ghz)
    }

    /// Time in ns needed for a single-qubit rotation of `angle` radians at the
    /// maximum single-qubit drive.
    pub fn one_qubit_time(&self, angle: f64) -> f64 {
        angle / (2.0 * std::f64::consts::PI * self.one_qubit_max_ghz)
    }
}

/// A complete device description: topology, interaction type and control
/// limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Physical connectivity.
    pub topology: Topology,
    /// Native interaction Hamiltonian class.
    pub interaction: InteractionType,
    /// Control-field limits.
    pub limits: ControlLimits,
}

impl Device {
    /// A superconducting transmon device with XY coupling on the given
    /// topology and explicit control limits — the constructor heterogeneous
    /// fleets are built from (every calibration is spelled out, nothing is
    /// implicitly the paper's).
    pub fn transmon_with(topology: Topology, limits: ControlLimits) -> Self {
        Self {
            topology,
            interaction: InteractionType::Xy,
            limits,
        }
    }

    /// A superconducting transmon device with XY coupling on the given
    /// topology, using the paper's control limits.
    ///
    /// **Deprecated by doc**: this constructor hardcodes
    /// [`ControlLimits::asplos19`], which silently pins every device built
    /// through it to one calibration. Prefer [`transmon_with`](Self::transmon_with)
    /// (and pass `ControlLimits::asplos19()` explicitly when that really is
    /// the calibration you mean).
    pub fn transmon(topology: Topology) -> Self {
        Self::transmon_with(topology, ControlLimits::asplos19())
    }

    /// A transmon grid sized for `n` program qubits.
    ///
    /// **Deprecated by doc**: hardcodes [`ControlLimits::asplos19`]; prefer
    /// [`transmon_with`](Self::transmon_with) with
    /// [`Topology::near_square_grid`] so heterogeneous fleets never
    /// copy-paste a device just to change its limits.
    pub fn transmon_grid(n: usize) -> Self {
        Self::transmon(Topology::near_square_grid(n))
    }

    /// A transmon line (the topology of the paper's worked QAOA example).
    ///
    /// **Deprecated by doc**: hardcodes [`ControlLimits::asplos19`]; prefer
    /// [`transmon_with`](Self::transmon_with) with [`Topology::Linear`].
    pub fn transmon_line(n: usize) -> Self {
        Self::transmon(Topology::Linear(n))
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.topology.n_qubits()
    }

    /// Appends an injective byte encoding of the device — topology variant
    /// and dimensions, interaction class, control limits — to `out`. This is
    /// the device's contribution to a backend fingerprint: two devices that
    /// could price or route any circuit differently encode differently.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match &self.topology {
            Topology::Linear(n) => {
                out.push(0);
                out.extend_from_slice(&(*n as u64).to_le_bytes());
            }
            Topology::Grid { rows, cols } => {
                out.push(1);
                out.extend_from_slice(&(*rows as u64).to_le_bytes());
                out.extend_from_slice(&(*cols as u64).to_le_bytes());
            }
            Topology::AllToAll(n) => {
                out.push(2);
                out.extend_from_slice(&(*n as u64).to_le_bytes());
            }
        }
        out.push(match self.interaction {
            InteractionType::Xy => 0,
            InteractionType::Zz => 1,
            InteractionType::Heisenberg => 2,
            InteractionType::DipoleChain => 3,
        });
        self.limits.encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_match_paper() {
        let l = ControlLimits::asplos19();
        assert!((l.two_qubit_max_ghz - 0.02).abs() < 1e-12);
        assert!((l.one_qubit_max_ghz - 0.10).abs() < 1e-12);
        assert!((l.one_qubit_max_ghz / l.two_qubit_max_ghz - 5.0).abs() < 1e-9);
    }

    #[test]
    fn interaction_time_scales_inversely_with_drive() {
        let l = ControlLimits::asplos19();
        // A π/2 XY area (one iSWAP) at 0.02 GHz takes 12.5 ns.
        assert!((l.two_qubit_time(std::f64::consts::FRAC_PI_2) - 12.5).abs() < 1e-9);
        // A π single-qubit rotation at 0.1 GHz takes 5 ns.
        assert!((l.one_qubit_time(std::f64::consts::PI) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn device_constructors() {
        let d = Device::transmon_grid(30);
        assert!(d.n_qubits() >= 30);
        assert_eq!(d.interaction, InteractionType::Xy);
        assert_eq!(d.interaction.native_gate_name(), "iswap");
        let line = Device::transmon_line(3);
        assert_eq!(line.n_qubits(), 3);
        assert_eq!(line.topology, Topology::Linear(3));
    }

    #[test]
    fn transmon_with_carries_explicit_limits() {
        let limits = ControlLimits::asplos19().scaled_drives(2.0);
        let d = Device::transmon_with(Topology::Linear(4), limits);
        assert_eq!(d.topology, Topology::Linear(4));
        assert_eq!(d.interaction, InteractionType::Xy);
        assert!((d.limits.two_qubit_max_ghz - 0.04).abs() < 1e-12);
        assert!((d.limits.one_qubit_max_ghz - 0.20).abs() < 1e-12);
        // The implicit constructor is the explicit one at the paper's limits.
        assert_eq!(
            Device::transmon(Topology::Linear(4)),
            Device::transmon_with(Topology::Linear(4), ControlLimits::asplos19())
        );
    }

    #[test]
    fn scaled_drives_leaves_overheads_alone() {
        let base = ControlLimits::asplos19();
        let fast = base.scaled_drives(1.5);
        assert!((fast.two_qubit_max_ghz - base.two_qubit_max_ghz * 1.5).abs() < 1e-15);
        assert!((fast.one_qubit_max_ghz - base.one_qubit_max_ghz * 1.5).abs() < 1e-15);
        assert_eq!(fast.instruction_overhead_ns, base.instruction_overhead_ns);
        assert_eq!(fast.single_qubit_overlap, base.single_qubit_overlap);
        assert_eq!(fast.pulse_dt_ns, base.pulse_dt_ns);
        // Faster drives mean shorter interaction times, proportionally.
        let area = std::f64::consts::FRAC_PI_2;
        assert!((fast.two_qubit_time(area) - base.two_qubit_time(area) / 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "drive scale factor must be positive and finite")]
    fn scaled_drives_rejects_nonpositive_factor() {
        ControlLimits::asplos19().scaled_drives(0.0);
    }

    #[test]
    fn device_encodings_are_distinct() {
        let encode = |d: &Device| {
            let mut out = Vec::new();
            d.encode_into(&mut out);
            out
        };
        let line = Device::transmon_line(4);
        let grid = Device::transmon_grid(4);
        let fast_line = Device::transmon_with(
            Topology::Linear(4),
            ControlLimits::asplos19().scaled_drives(2.0),
        );
        // Same device encodes identically; any distinguishing detail —
        // topology shape or limits — changes the bytes.
        assert_eq!(encode(&line), encode(&Device::transmon_line(4)));
        assert_ne!(encode(&line), encode(&grid));
        assert_ne!(encode(&line), encode(&fast_line));
        assert_ne!(encode(&line), encode(&Device::transmon_line(5)));
        // Grid dims are length-prefixed by variant tag, so 1x4 != linear-4.
        let grid_1x4 = Device::transmon(Topology::Grid { rows: 1, cols: 4 });
        assert_ne!(encode(&line), encode(&grid_1x4));
    }
}
