//! A compilation backend: one device plus the latency model that prices it.
//!
//! The paper's compiler assumes a single `Device` and a single
//! [`LatencyModel`]; a serving fleet needs *many* — different topologies,
//! different calibrations, analytic vs optimal-control pricing — living in one
//! process. [`Backend`] bundles the pair with an identity (label), a relative
//! capacity weight for dispatch, and an injective byte *fingerprint* that
//! cache layers prepend to their keys so backends never collide in shared
//! caches.
//!
//! ```
//! use qcc_hw::{Backend, ControlLimits, Device, Topology};
//!
//! let base = ControlLimits::asplos19();
//! let fleet = vec![
//!     Backend::calibrated("line-a", Device::transmon_line(8)),
//!     Backend::calibrated(
//!         "grid-fast",
//!         Device::transmon_with(Topology::near_square_grid(8), base.scaled_drives(1.5)),
//!     )
//!     .with_capacity_weight(2.0),
//! ];
//! assert_ne!(fleet[0].fingerprint(), fleet[1].fingerprint());
//! ```

use crate::device::Device;
use crate::latency::{CalibratedLatencyModel, LatencyModel};
use std::fmt;
use std::sync::Arc;

/// A named compilation target: device, latency model, and dispatch weight.
///
/// Backends are cheap to clone (the model is shared behind an [`Arc`]) and a
/// whole heterogeneous fleet of them can live in one process: every cache in
/// the stack keys on [`fingerprint`](Self::fingerprint), so pricing the same
/// circuit against two backends never aliases.
#[derive(Clone)]
pub struct Backend {
    label: String,
    device: Device,
    model: Arc<dyn LatencyModel>,
    capacity_weight: f64,
    fingerprint: Vec<u8>,
}

impl Backend {
    /// A backend priced by the analytic [`CalibratedLatencyModel`] built from
    /// the device's own control limits — the cheap, closed-form pricing tier.
    pub fn calibrated(label: impl Into<String>, device: Device) -> Self {
        let model = Arc::new(CalibratedLatencyModel::new(device.limits));
        Self::with_model(label, device, model)
    }

    /// A backend priced by an arbitrary shared latency model — this is how
    /// GRAPE-priced backends are built (`qcc-hw` cannot depend on
    /// `qcc-control`, so the optimal-control model is injected):
    ///
    /// ```ignore
    /// let grape = Arc::new(GrapeLatencyModel::fast_two_qubit());
    /// let backend = Backend::with_model("grape-line", device, grape.clone());
    /// // `grape.solve_count()` stays observable through the caller's clone.
    /// ```
    pub fn with_model(
        label: impl Into<String>,
        device: Device,
        model: Arc<dyn LatencyModel>,
    ) -> Self {
        let label = label.into();
        let mut fingerprint = Vec::with_capacity(label.len() + 64);
        // Length-prefix the label so ("ab", device X) can never encode the
        // same bytes as ("a", something starting with b'b').
        fingerprint.extend_from_slice(&(label.len() as u64).to_le_bytes());
        fingerprint.extend_from_slice(label.as_bytes());
        device.encode_into(&mut fingerprint);
        fingerprint.extend_from_slice(model.name().as_bytes());
        Self {
            label,
            device,
            model,
            capacity_weight: 1.0,
            fingerprint,
        }
    }

    /// Sets the relative dispatch capacity of this backend (default `1.0`).
    /// A backend with weight `2.0` absorbs roughly twice the backlog of a
    /// weight-`1.0` peer before the router considers it equally loaded.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not a positive finite number.
    pub fn with_capacity_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "backend capacity weight must be positive and finite, got {weight}"
        );
        self.capacity_weight = weight;
        self
    }

    /// The backend's human-readable identity, unique within a fleet.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The physical device this backend compiles for.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The latency model pricing this backend, as a trait object.
    pub fn model(&self) -> &dyn LatencyModel {
        self.model.as_ref()
    }

    /// The shared handle to the latency model (clone to keep instrumented
    /// models, e.g. a GRAPE solve counter, observable from outside).
    pub fn model_arc(&self) -> &Arc<dyn LatencyModel> {
        &self.model
    }

    /// Relative dispatch capacity (see
    /// [`with_capacity_weight`](Self::with_capacity_weight)).
    pub fn capacity_weight(&self) -> f64 {
        self.capacity_weight
    }

    /// Injective identity bytes: length-prefixed label, device encoding
    /// (topology, interaction, control limits), and model name. Cache layers
    /// prefix their keys with this so one process can serve a whole fleet
    /// without cross-backend collisions.
    ///
    /// Since the persistent cache tier, this encoding is also the namespace
    /// stamped into on-disk snapshots (`qcc_hw::persist`), so it must be
    /// **stable across builds**: any byte change silently invalidates every
    /// existing snapshot. The golden test `fingerprint_encoding_is_stable`
    /// pins the current encoding — if it fails, either revert the encoding
    /// change or bump `persist::FORMAT_VERSION` deliberately.
    pub fn fingerprint(&self) -> &[u8] {
        &self.fingerprint
    }
}

impl fmt::Debug for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backend")
            .field("label", &self.label)
            .field("device", &self.device)
            .field("model", &self.model.name())
            .field("capacity_weight", &self.capacity_weight)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ControlLimits;
    use crate::topology::Topology;

    #[test]
    fn calibrated_backend_uses_device_limits() {
        let limits = ControlLimits::asplos19().scaled_drives(2.0);
        let b = Backend::calibrated("fast", Device::transmon_with(Topology::Linear(4), limits));
        assert_eq!(b.label(), "fast");
        assert_eq!(b.model().name(), "calibrated-xy");
        assert_eq!(b.capacity_weight(), 1.0);
        // The model is built from the *device's* limits, not the defaults: a
        // doubled drive halves the interaction part of an iSWAP's latency.
        let slow = Backend::calibrated("slow", Device::transmon_line(4));
        let inst = qcc_ir::Instruction::new(qcc_ir::Gate::ISwap, vec![0, 1]);
        let t_fast = b.model().isa_gate_latency(&inst);
        let t_slow = slow.model().isa_gate_latency(&inst);
        assert!(t_fast < t_slow, "fast {t_fast} vs slow {t_slow}");
    }

    #[test]
    fn fingerprints_separate_backends() {
        let line = Backend::calibrated("a", Device::transmon_line(4));
        let same = Backend::calibrated("a", Device::transmon_line(4));
        let renamed = Backend::calibrated("b", Device::transmon_line(4));
        let grid = Backend::calibrated("a", Device::transmon_grid(4));
        let fast = Backend::calibrated(
            "a",
            Device::transmon_with(
                Topology::Linear(4),
                ControlLimits::asplos19().scaled_drives(1.5),
            ),
        );
        assert_eq!(line.fingerprint(), same.fingerprint());
        assert_ne!(line.fingerprint(), renamed.fingerprint());
        assert_ne!(line.fingerprint(), grid.fingerprint());
        assert_ne!(line.fingerprint(), fast.fingerprint());
        // Label length-prefixing: "ab"+rest cannot alias "a"+(b'b'-led rest).
        let ab = Backend::calibrated("ab", Device::transmon_line(4));
        assert_ne!(line.fingerprint(), ab.fingerprint());
    }

    #[test]
    fn fingerprint_encoding_is_stable() {
        // Golden value: FNV-1a 64 of a reference backend's fingerprint bytes.
        // Snapshots written by older builds are keyed on this encoding, so a
        // change here is a persistence-format break (see `fingerprint` docs).
        let b = Backend::calibrated("golden", Device::transmon_line(3));
        let hash = crate::persist::fnv64(b.fingerprint());
        assert_eq!(
            crate::persist::hex16(hash),
            "dd5e124dcb073759",
            "backend fingerprint encoding changed — this invalidates every \
             existing snapshot; revert or bump persist::FORMAT_VERSION"
        );
    }

    #[test]
    fn capacity_weight_builder() {
        let b = Backend::calibrated("w", Device::transmon_line(3)).with_capacity_weight(2.5);
        assert_eq!(b.capacity_weight(), 2.5);
    }

    #[test]
    #[should_panic(expected = "capacity weight must be positive and finite")]
    fn capacity_weight_rejects_zero() {
        let _ = Backend::calibrated("w", Device::transmon_line(3)).with_capacity_weight(0.0);
    }

    #[test]
    fn shared_model_stays_observable() {
        let model = Arc::new(CalibratedLatencyModel::asplos19());
        let b = Backend::with_model("shared", Device::transmon_line(3), model.clone());
        assert_eq!(Arc::strong_count(b.model_arc()), 2);
        assert_eq!(b.model().name(), model.name());
    }

    #[test]
    fn debug_is_compact() {
        let b = Backend::calibrated("dbg", Device::transmon_line(3));
        let s = format!("{b:?}");
        assert!(s.contains("dbg") && s.contains("calibrated-xy"));
    }
}
