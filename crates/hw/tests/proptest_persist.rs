//! Property tests for the snapshot container format (`qcc_hw::persist`):
//! arbitrary records round-trip bit-identically, and any single-byte
//! corruption or truncation of a snapshot is detected and rejected — never
//! misread as different-but-valid data.

use proptest::prelude::*;
use qcc_hw::persist::{parse, PersistError, SnapshotWriter};

/// Arbitrary record payloads: varied lengths including empty, full byte range.
fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..=255, 0..40), 0..8)
}

fn arb_fingerprint() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 0..24)
}

fn snapshot(kind: &str, fingerprint: &[u8], records: &[Vec<u8>]) -> Vec<u8> {
    let mut w = SnapshotWriter::new(kind, fingerprint);
    for r in records {
        w.record(r);
    }
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever goes in comes back out, bit-identically, in order.
    #[test]
    fn records_round_trip_bit_identically(
        records in arb_records(),
        fp in arb_fingerprint(),
    ) {
        let bytes = snapshot("prop-cache", &fp, &records);
        let back = parse(&bytes, "prop-cache", &fp).expect("round trip");
        prop_assert_eq!(back, records);
    }

    /// Flipping any single byte anywhere in the file makes the parse fail —
    /// the header checksum guards the preamble, per-record checksums guard
    /// payloads, and length/count fields that dodge a checksum still derail
    /// the framing into truncation or trailing-byte errors.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        records in arb_records(),
        fp in arb_fingerprint(),
        position in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let bytes = snapshot("prop-cache", &fp, &records);
        let i = position % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[i] ^= flip;
        prop_assert!(
            parse(&corrupt, "prop-cache", &fp).is_err(),
            "flipped byte {} (xor {:#04x}) parsed as valid", i, flip
        );
    }

    /// Every strict prefix of a snapshot is rejected as truncated (or
    /// otherwise malformed) — a torn write can never load.
    #[test]
    fn any_truncation_is_rejected(
        records in arb_records(),
        fp in arb_fingerprint(),
        cut_sel in 0usize..4096,
    ) {
        let bytes = snapshot("prop-cache", &fp, &records);
        let cut = cut_sel % bytes.len();
        prop_assert!(
            parse(&bytes[..cut], "prop-cache", &fp).is_err(),
            "prefix of length {} parsed as valid", cut
        );
    }

    /// Appended garbage is rejected as trailing bytes.
    #[test]
    fn appended_bytes_are_rejected(
        records in arb_records(),
        extra in prop::collection::vec(0u8..=255, 1..16),
    ) {
        let mut bytes = snapshot("prop-cache", b"fp", &records);
        bytes.extend_from_slice(&extra);
        let extra_len = extra.len();
        match parse(&bytes, "prop-cache", b"fp") {
            Err(PersistError::TrailingBytes { extra }) => {
                prop_assert_eq!(extra, extra_len);
            }
            Err(_) => {} // framing may also read garbage as a short record
            Ok(_) => prop_assert!(false, "garbage-extended snapshot parsed"),
        }
    }

    /// A snapshot loads only under its own fingerprint: any differing
    /// fingerprint is named as a mismatch.
    #[test]
    fn foreign_fingerprints_are_rejected(
        records in arb_records(),
        fp_a in arb_fingerprint(),
        fp_b in arb_fingerprint(),
    ) {
        if fp_a == fp_b {
            return Ok(());
        }
        let bytes = snapshot("prop-cache", &fp_a, &records);
        match parse(&bytes, "prop-cache", &fp_b) {
            Err(PersistError::FingerprintMismatch { expected, found }) => {
                prop_assert_eq!(expected, fp_b);
                prop_assert_eq!(found, fp_a);
            }
            other => prop_assert!(false, "expected FingerprintMismatch, got {:?}", other.is_ok()),
        }
    }
}
