//! Quantum Fourier Transform and Bernstein–Vazirani circuits.
//!
//! The QFT appears in the paper's discussion of low-commutativity applications
//! (§6.1); Bernstein–Vazirani is included as an additional low-depth
//! communication-heavy workload for the examples and ablation benches.

use qcc_ir::{Circuit, Gate};
use std::f64::consts::PI;

/// The standard QFT circuit on `n` qubits (with the final qubit-reversal
/// SWAPs).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for target in 0..n {
        c.push(Gate::H, &[target]);
        for (distance, control) in ((target + 1)..n).enumerate() {
            let angle = PI / (2f64.powi(distance as i32 + 1));
            c.push(Gate::CPhase(angle), &[control, target]);
        }
    }
    for q in 0..n / 2 {
        c.push(Gate::Swap, &[q, n - 1 - q]);
    }
    c
}

/// The inverse QFT.
pub fn inverse_qft(n: usize) -> Circuit {
    qft(n).inverse()
}

/// Bernstein–Vazirani circuit recovering the hidden bit-string `secret` in a
/// single query. Uses `secret.len() + 1` qubits (the last one is the oracle
/// ancilla).
pub fn bernstein_vazirani(secret: &[bool]) -> Circuit {
    let n = secret.len();
    let mut c = Circuit::new(n + 1);
    // Ancilla in |−⟩.
    c.push(Gate::X, &[n]);
    for q in 0..=n {
        c.push(Gate::H, &[q]);
    }
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.push(Gate::Cnot, &[q, n]);
        }
    }
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_math::C64;
    use qcc_sim::StateVector;

    #[test]
    fn qft_of_zero_state_is_uniform() {
        let c = qft(3);
        let state = StateVector::zero(3).evolved(&c);
        for p in state.probabilities() {
            assert!((p - 1.0 / 8.0).abs() < 1e-10);
        }
    }

    #[test]
    fn qft_followed_by_inverse_is_identity() {
        let mut c = qft(4);
        c.extend(&inverse_qft(4));
        assert!(c.unitary().is_identity_up_to_phase(1e-9));
    }

    #[test]
    fn qft_matches_dft_matrix_on_basis_state() {
        // QFT|k⟩ has amplitudes e^{2πi jk / N} / √N.
        let n = 3;
        let k = 5usize;
        let c = qft(n);
        let state = StateVector::basis(n, k).evolved(&c);
        let dim = 1 << n;
        for (j, amp) in state.amplitudes().iter().enumerate() {
            let want = C64::cis(2.0 * PI * (j * k) as f64 / dim as f64) / (dim as f64).sqrt();
            assert!(amp.approx_eq(want, 1e-9), "j={j}: {amp} vs {want}");
        }
    }

    #[test]
    fn bernstein_vazirani_recovers_the_secret() {
        let secret = [true, false, true, true];
        let c = bernstein_vazirani(&secret);
        let state = StateVector::zero(5).evolved(&c);
        // The input register must hold the secret deterministically; the oracle
        // ancilla stays in |−⟩, so marginalize it out.
        let mut p_secret = 0.0;
        for (basis, p) in state.probabilities().iter().enumerate() {
            let measured: Vec<bool> = (0..4).map(|q| (basis >> (4 - q)) & 1 == 1).collect();
            if measured == secret {
                p_secret += p;
            }
        }
        assert!(p_secret > 0.999, "P(secret) = {p_secret}");
    }

    #[test]
    fn qft_gate_count_is_quadratic() {
        let c = qft(6);
        assert_eq!(c.gate_counts()["h"], 6);
        assert_eq!(c.gate_counts()["cu1"], 15);
        assert_eq!(c.gate_counts()["swap"], 3);
    }
}
