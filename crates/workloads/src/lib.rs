//! # qcc-workloads
//!
//! Benchmark circuit generators reproducing Table 3 of the paper: QAOA MAXCUT
//! instances on line / random-4-regular / cluster graphs, Trotterized Ising
//! chains, Grover square-root search built from reversible arithmetic, UCCSD
//! ansatz circuits via the Jordan–Wigner transformation, plus QFT and
//! Bernstein–Vazirani used in the discussion and examples.
//!
//! ## Example
//!
//! ```
//! use qcc_workloads::{qaoa, suite};
//!
//! let triangle = qaoa::paper_triangle_example();
//! assert_eq!(triangle.n_qubits(), 3);
//!
//! let benchmarks = suite::standard_suite(suite::SuiteScale::Reduced, 1);
//! assert_eq!(benchmarks.len(), 11);
//! ```

#![warn(missing_docs)]

pub mod arithmetic;
pub mod grover;
pub mod ising;
pub mod qaoa;
pub mod qft;
pub mod suite;
pub mod uccsd;

pub use suite::{standard_suite, Benchmark, Level, SuiteScale};
