//! UCCSD ansatz circuits for VQE (Table 3, rows 9–10).
//!
//! The Unitary Coupled-Cluster Singles-and-Doubles ansatz, after the
//! Jordan–Wigner transformation, is a product of Pauli-string exponentials:
//! every excitation term becomes a handful of weight-2 or weight-4 strings with
//! Z chains between the involved orbitals, and every string compiles to the
//! CNOT-ladder + Rz construction (§6.4 calls this the "more complicated
//! information encoding scheme"). The circuits are deep and serial: successive
//! strings share qubits and do not commute.

use qcc_ir::{Circuit, PauliOp, PauliRotation, PauliString};

/// One fermionic excitation of the UCCSD ansatz.
#[derive(Debug, Clone, PartialEq)]
pub enum Excitation {
    /// Single excitation from occupied orbital `i` to virtual orbital `a`.
    Single {
        /// Occupied spin-orbital index.
        i: usize,
        /// Virtual spin-orbital index.
        a: usize,
        /// Cluster amplitude.
        theta: f64,
    },
    /// Double excitation `(i, j) → (a, b)`.
    Double {
        /// First occupied spin-orbital.
        i: usize,
        /// Second occupied spin-orbital.
        j: usize,
        /// First virtual spin-orbital.
        a: usize,
        /// Second virtual spin-orbital.
        b: usize,
        /// Cluster amplitude.
        theta: f64,
    },
}

fn z_chain(n: usize, from: usize, to: usize) -> Vec<(usize, PauliOp)> {
    ((from + 1)..to.min(n)).map(|q| (q, PauliOp::Z)).collect()
}

/// Jordan–Wigner Pauli strings of one excitation (with their angles).
pub fn excitation_strings(n_orbitals: usize, exc: &Excitation) -> Vec<PauliRotation> {
    match *exc {
        Excitation::Single { i, a, theta } => {
            let (lo, hi) = (i.min(a), i.max(a));
            let chain = z_chain(n_orbitals, lo, hi);
            let mut s1 = vec![(lo, PauliOp::X), (hi, PauliOp::Y)];
            s1.extend(chain.iter().copied());
            let mut s2 = vec![(lo, PauliOp::Y), (hi, PauliOp::X)];
            s2.extend(chain.iter().copied());
            vec![
                PauliRotation::new(PauliString::new(n_orbitals, &s1), theta),
                PauliRotation::new(PauliString::new(n_orbitals, &s2), -theta),
            ]
        }
        Excitation::Double { i, j, a, b, theta } => {
            // The eight standard strings of a JW-transformed double excitation.
            let patterns: [([PauliOp; 4], f64); 8] = [
                (
                    [PauliOp::X, PauliOp::X, PauliOp::X, PauliOp::Y],
                    theta / 4.0,
                ),
                (
                    [PauliOp::X, PauliOp::X, PauliOp::Y, PauliOp::X],
                    theta / 4.0,
                ),
                (
                    [PauliOp::X, PauliOp::Y, PauliOp::X, PauliOp::X],
                    -theta / 4.0,
                ),
                (
                    [PauliOp::Y, PauliOp::X, PauliOp::X, PauliOp::X],
                    -theta / 4.0,
                ),
                (
                    [PauliOp::Y, PauliOp::Y, PauliOp::Y, PauliOp::X],
                    -theta / 4.0,
                ),
                (
                    [PauliOp::Y, PauliOp::Y, PauliOp::X, PauliOp::Y],
                    -theta / 4.0,
                ),
                (
                    [PauliOp::Y, PauliOp::X, PauliOp::Y, PauliOp::Y],
                    theta / 4.0,
                ),
                (
                    [PauliOp::X, PauliOp::Y, PauliOp::Y, PauliOp::Y],
                    theta / 4.0,
                ),
            ];
            let orbitals = [i, j, a, b];
            patterns
                .iter()
                .map(|(ops, angle)| {
                    let mut factors: Vec<(usize, PauliOp)> = orbitals
                        .iter()
                        .zip(ops.iter())
                        .map(|(&q, &op)| (q, op))
                        .collect();
                    // Z chains between the two occupied and the two virtual
                    // orbitals (standard JW bookkeeping).
                    factors.extend(z_chain(n_orbitals, i.min(j), i.max(j)));
                    factors.extend(z_chain(n_orbitals, a.min(b), a.max(b)));
                    // Remove duplicates introduced by overlapping chains.
                    factors.sort_by_key(|(q, _)| *q);
                    factors.dedup_by_key(|(q, _)| *q);
                    PauliRotation::new(PauliString::new(n_orbitals, &factors), *angle)
                })
                .collect()
        }
    }
}

/// The standard UCCSD excitation list for `n_orbitals` spin-orbitals with the
/// first `n_occupied` occupied.
pub fn standard_excitations(n_orbitals: usize, n_occupied: usize, theta: f64) -> Vec<Excitation> {
    let mut excitations = Vec::new();
    for i in 0..n_occupied {
        for a in n_occupied..n_orbitals {
            excitations.push(Excitation::Single { i, a, theta });
        }
    }
    for i in 0..n_occupied {
        for j in (i + 1)..n_occupied {
            for a in n_occupied..n_orbitals {
                for b in (a + 1)..n_orbitals {
                    excitations.push(Excitation::Double {
                        i,
                        j,
                        a,
                        b,
                        theta: theta * 0.5,
                    });
                }
            }
        }
    }
    excitations
}

/// Builds the UCCSD ansatz circuit: Hartree–Fock preparation (X on the
/// occupied orbitals) followed by every excitation's Pauli rotations.
pub fn uccsd_circuit(n_orbitals: usize, n_occupied: usize, theta: f64) -> Circuit {
    let mut c = Circuit::new(n_orbitals);
    for q in 0..n_occupied {
        c.push(qcc_ir::Gate::X, &[q]);
    }
    for exc in standard_excitations(n_orbitals, n_occupied, theta) {
        for rotation in excitation_strings(n_orbitals, &exc) {
            let sub = rotation.to_circuit();
            c.extend(&sub);
        }
    }
    c
}

/// The Table 3 benchmark instance "UCCSD-n{orbitals}".
pub fn uccsd_benchmark(n_orbitals: usize) -> Circuit {
    uccsd_circuit(n_orbitals, n_orbitals / 2, 0.35)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_sim::StateVector;

    #[test]
    fn single_excitation_produces_two_strings() {
        let strings = excitation_strings(
            4,
            &Excitation::Single {
                i: 0,
                a: 2,
                theta: 0.3,
            },
        );
        assert_eq!(strings.len(), 2);
        for r in &strings {
            assert_eq!(r.string.weight(), 3); // X/Y on 0 and 2 plus Z on 1
        }
    }

    #[test]
    fn double_excitation_produces_eight_strings() {
        let strings = excitation_strings(
            4,
            &Excitation::Double {
                i: 0,
                j: 1,
                a: 2,
                b: 3,
                theta: 0.7,
            },
        );
        assert_eq!(strings.len(), 8);
        for r in &strings {
            assert!(r.string.weight() >= 4);
        }
    }

    #[test]
    fn benchmark_sizes() {
        let c4 = uccsd_benchmark(4);
        assert_eq!(c4.n_qubits(), 4);
        assert!(c4.len() > 50, "UCCSD-4 length {}", c4.len());
        let c6 = uccsd_benchmark(6);
        assert_eq!(c6.n_qubits(), 6);
        assert!(c6.len() > c4.len());
    }

    #[test]
    fn ansatz_preserves_particle_number() {
        // UCCSD conserves the Hamming weight of the occupation: starting from
        // the HF state |1100⟩, every basis state with non-negligible amplitude
        // must still have exactly two ones.
        let c = uccsd_benchmark(4);
        let state = StateVector::zero(4).evolved(&c);
        for (basis, p) in state.probabilities().iter().enumerate() {
            if *p > 1e-6 {
                assert_eq!(
                    (basis as u32).count_ones(),
                    2,
                    "basis {basis:04b} has wrong particle number (p={p})"
                );
            }
        }
    }

    #[test]
    fn ansatz_entangles_beyond_hartree_fock() {
        let c = uccsd_benchmark(4);
        let state = StateVector::zero(4).evolved(&c);
        let probs = state.probabilities();
        // The HF determinant |1100⟩ no longer has all the weight.
        assert!(probs[0b1100] < 0.999);
        // Some excited determinant is populated.
        let excited: f64 = probs
            .iter()
            .enumerate()
            .filter(|(b, _)| *b != 0b1100)
            .map(|(_, p)| *p)
            .sum();
        assert!(excited > 1e-3);
    }
}
