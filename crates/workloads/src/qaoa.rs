//! QAOA MAXCUT circuits (the first three rows of Table 3).
//!
//! The MAXCUT objective Hamiltonian is a sum of ZZ terms over the problem
//! graph's edges; each term is encoded as the CNOT–Rz(γ)–CNOT block the paper
//! uses throughout, preceded by the initial Hadamard layer and followed by the
//! Rx(β) mixing layer. The three benchmark instances differ only in the
//! problem graph — line, random 4-regular, and cluster — which controls their
//! spatial locality (§6.3).

use qcc_graph::{generators, Graph};
use qcc_ir::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one QAOA layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QaoaAngles {
    /// Objective (cost) angle γ.
    pub gamma: f64,
    /// Mixing angle β.
    pub beta: f64,
}

impl Default for QaoaAngles {
    fn default() -> Self {
        // The angles of the paper's worked example (§3.1).
        Self {
            gamma: 5.67,
            beta: 1.26,
        }
    }
}

/// Builds a `p`-layer QAOA MAXCUT circuit for the given problem graph.
pub fn maxcut_circuit(graph: &Graph, angles: &[QaoaAngles]) -> Circuit {
    let n = graph.len();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    for layer in angles {
        for (a, b, w) in graph.edges() {
            if a == b {
                continue;
            }
            c.push(Gate::Cnot, &[a, b]);
            c.push(Gate::Rz(layer.gamma * w), &[b]);
            c.push(Gate::Cnot, &[a, b]);
        }
        for q in 0..n {
            c.push(Gate::Rx(layer.beta), &[q]);
        }
    }
    c
}

/// Single-layer QAOA with the default angles.
pub fn maxcut_circuit_p1(graph: &Graph) -> Circuit {
    maxcut_circuit(graph, &[QaoaAngles::default()])
}

/// MAXCUT-line: a linear chain of `n` vertices (high spatial locality).
pub fn maxcut_line(n: usize) -> Circuit {
    maxcut_circuit_p1(&generators::line_graph(n))
}

/// MAXCUT-reg4: a random 4-regular graph on `n` vertices (medium locality).
pub fn maxcut_reg4(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    maxcut_circuit_p1(&generators::random_regular_graph(&mut rng, n, 4))
}

/// MAXCUT-cluster: dense communities with sparse bridges (low locality).
pub fn maxcut_cluster(clusters: usize, cluster_size: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::cluster_graph(&mut rng, clusters, cluster_size, 0.7, clusters * 2);
    maxcut_circuit_p1(&g)
}

/// The diagonal of the MAXCUT cost observable `Σ_(a,b) w·(1 - Z_a Z_b)/2`,
/// indexed by computational basis state. Useful for checking that a QAOA state
/// actually improves the expected cut value.
pub fn maxcut_cost_diagonal(graph: &Graph) -> Vec<f64> {
    let n = graph.len();
    let dim = 1usize << n;
    let mut diag = vec![0.0; dim];
    for (a, b, w) in graph.edges() {
        if a == b {
            continue;
        }
        for (basis, value) in diag.iter_mut().enumerate() {
            let bit_a = (basis >> (n - 1 - a)) & 1;
            let bit_b = (basis >> (n - 1 - b)) & 1;
            if bit_a != bit_b {
                *value += w;
            }
        }
    }
    diag
}

/// The QAOA triangle of the paper's worked example (§3.1, Fig. 4): MAXCUT on a
/// 3-vertex complete graph with γ = 5.67, β = 1.26.
pub fn paper_triangle_example() -> Circuit {
    maxcut_circuit_p1(&generators::complete_graph(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_sim::StateVector;

    #[test]
    fn circuit_shape_matches_graph() {
        let g = generators::line_graph(5);
        let c = maxcut_circuit_p1(&g);
        assert_eq!(c.n_qubits(), 5);
        // 5 H + 4 edges × 3 gates + 5 Rx
        assert_eq!(c.len(), 5 + 4 * 3 + 5);
        assert_eq!(c.gate_counts()["cx"], 8);
    }

    #[test]
    fn paper_triangle_has_expected_structure() {
        let c = paper_triangle_example();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gate_counts()["cx"], 6);
        assert_eq!(c.gate_counts()["h"], 3);
        assert_eq!(c.gate_counts()["rx"], 3);
        assert_eq!(c.gate_counts()["rz"], 3);
    }

    #[test]
    fn qaoa_improves_expected_cut_over_random_guessing() {
        // Optimizing the two angles over a coarse grid (the "variational" part
        // of QAOA) must beat the uniform-superposition expectation of the cut.
        let g = generators::complete_graph(3);
        let diag = maxcut_cost_diagonal(&g);
        let uniform_cost = 0.5 * 3.0;
        let mut best = f64::NEG_INFINITY;
        for gi in 1..8 {
            for bi in 1..8 {
                let angles = [QaoaAngles {
                    gamma: gi as f64 * 0.35,
                    beta: bi as f64 * 0.2,
                }];
                let c = maxcut_circuit(&g, &angles);
                let state = StateVector::zero(3).evolved(&c);
                best = best.max(state.expectation_diagonal(&diag));
            }
        }
        assert!(
            best > uniform_cost + 0.2,
            "best QAOA cost {best} vs uniform {uniform_cost}"
        );
    }

    #[test]
    fn benchmark_instances_have_table3_sizes() {
        assert_eq!(maxcut_line(20).n_qubits(), 20);
        assert_eq!(maxcut_reg4(30, 7).n_qubits(), 30);
        assert_eq!(maxcut_cluster(5, 6, 7).n_qubits(), 30);
    }

    #[test]
    fn multi_layer_qaoa_repeats_structure() {
        let g = generators::line_graph(4);
        let one = maxcut_circuit(&g, &[QaoaAngles::default()]);
        let two = maxcut_circuit(&g, &[QaoaAngles::default(), QaoaAngles::default()]);
        assert_eq!(two.len(), 2 * (one.len() - 4) + 4);
    }

    #[test]
    fn cost_diagonal_counts_cut_edges() {
        let g = generators::line_graph(3); // edges (0,1),(1,2)
        let diag = maxcut_cost_diagonal(&g);
        // |010⟩ cuts both edges.
        assert!((diag[0b010] - 2.0).abs() < 1e-12);
        // |000⟩ cuts none.
        assert!(diag[0].abs() < 1e-12);
        // |001⟩ cuts one.
        assert!((diag[0b001] - 1.0).abs() < 1e-12);
    }
}
