//! Grover square-root benchmark (Table 3, rows 6–8).
//!
//! The benchmark searches for the `m`-bit value `x` whose square equals a
//! given target: Grover iterations of (oracle, diffusion) where the oracle
//! reversibly computes `x²` into an accumulator, phase-flips on equality with
//! the target, and uncomputes. The resulting circuits are deep, serial, and
//! dominated by Toffoli chains — exactly the "low parallelism / low
//! commutativity / sophisticated encoding" profile the paper attributes to its
//! square-root benchmarks (§5.2, §6.4).

use crate::arithmetic::{
    append_compare_and_flip, append_diffusion, squarer_circuit, SquarerLayout,
};
use qcc_ir::{decompose, Circuit, Gate};

/// Parameters of the square-root search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquareRootParams {
    /// Width of the searched register in bits.
    pub input_bits: usize,
    /// The square to invert (the oracle marks x with x² == target).
    pub target_square: u64,
    /// Number of Grover iterations.
    pub iterations: usize,
}

impl SquareRootParams {
    /// The benchmark instance for `m`-bit inputs, searching for √(m-dependent
    /// perfect square) with one Grover iteration (enough to dominate the
    /// latency profile; more iterations just repeat the same structure).
    pub fn benchmark(input_bits: usize) -> Self {
        let root = (1u64 << (input_bits - 1)) + 1; // an odd value with the MSB set
        Self {
            input_bits,
            target_square: (root * root) & ((1 << (2 * input_bits)) - 1),
            iterations: 1,
        }
    }
}

/// Builds the full Grover square-root circuit.
pub fn square_root_circuit(params: &SquareRootParams) -> Circuit {
    let layout = SquarerLayout::standard(params.input_bits);
    let mut c = Circuit::new(layout.n_qubits());
    // Uniform superposition over x.
    for &q in &layout.x {
        c.push(Gate::H, &[q]);
    }
    let squarer = squarer_circuit(&layout);
    let unsquarer = squarer.inverse();
    for _ in 0..params.iterations {
        // Oracle: compute x², phase-flip on equality, uncompute.
        c.extend(&squarer);
        append_compare_and_flip(&mut c, &layout.acc, params.target_square, &layout.anc);
        c.extend(&unsquarer);
        // Diffusion on the input register.
        append_diffusion(&mut c, &layout.x, &layout.anc);
    }
    c
}

/// The benchmark instance "square root, m-bit input" flattened to the 1-/2-
/// qubit ISA (what the compiler actually consumes).
pub fn square_root_benchmark(input_bits: usize) -> Circuit {
    decompose::flatten(&square_root_circuit(&SquareRootParams::benchmark(
        input_bits,
    )))
}

/// The register layout used by [`square_root_circuit`], exposed so tests and
/// benches can read out the search register.
pub fn benchmark_layout(input_bits: usize) -> SquarerLayout {
    SquarerLayout::standard(input_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arithmetic::register_value;
    use qcc_sim::StateVector;

    #[test]
    fn grover_amplifies_the_correct_root() {
        // 2-bit search: find x with x² = 9 → x = 3.
        let params = SquareRootParams {
            input_bits: 2,
            target_square: 9,
            iterations: 1,
        };
        let layout = benchmark_layout(2);
        let circuit = decompose::flatten(&square_root_circuit(&params));
        let state = StateVector::zero(circuit.n_qubits()).evolved(&circuit);
        let probs = state.probabilities();
        // Probability of measuring x = 3 in the input register.
        let mut p_correct = 0.0;
        let mut p_other_max: f64 = 0.0;
        for (basis, p) in probs.iter().enumerate() {
            let x = register_value(basis, &layout.x, circuit.n_qubits());
            if x == 3 {
                p_correct += p;
            } else {
                p_other_max = p_other_max.max(*p);
            }
        }
        // One Grover iteration over 4 items boosts the marked item to ~100%.
        assert!(p_correct > 0.9, "P(x=3) = {p_correct}");
    }

    #[test]
    fn oracle_uncomputes_the_accumulator() {
        let params = SquareRootParams {
            input_bits: 2,
            target_square: 4,
            iterations: 1,
        };
        let layout = benchmark_layout(2);
        let circuit = decompose::flatten(&square_root_circuit(&params));
        let state = StateVector::zero(circuit.n_qubits()).evolved(&circuit);
        // After the full iteration the accumulator and ancillas must be |0…0⟩
        // for every branch with non-negligible amplitude.
        for (basis, p) in state.probabilities().iter().enumerate() {
            if *p > 1e-9 {
                assert_eq!(register_value(basis, &layout.acc, circuit.n_qubits()), 0);
                assert_eq!(register_value(basis, &layout.anc, circuit.n_qubits()), 0);
            }
        }
    }

    #[test]
    fn benchmark_sizes_grow_with_input_bits() {
        let c3 = square_root_benchmark(3);
        let c4 = square_root_benchmark(4);
        assert!(c3.n_qubits() < c4.n_qubits());
        assert!(c3.len() < c4.len());
        assert!(
            c3.len() > 500,
            "square-root circuits are deep: {}",
            c3.len()
        );
        // Everything is flattened to the virtual ISA.
        assert!(c3.instructions().iter().all(|i| i.qubits.len() <= 2));
    }

    #[test]
    fn benchmark_parameters_pick_a_representable_square() {
        for m in [2usize, 3, 4] {
            let p = SquareRootParams::benchmark(m);
            assert!(p.target_square < (1 << (2 * m)));
        }
    }
}
