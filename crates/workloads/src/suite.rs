//! The benchmark suite of Table 3, with the program-characteristic labels the
//! paper uses (parallelism, spatial locality, commutativity).

use crate::{grover, ising, qaoa, uccsd};
use qcc_ir::Circuit;
use serde::{Deserialize, Serialize};

/// Qualitative level used in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Level::Low => "Low",
            Level::Medium => "Medium",
            Level::High => "High",
        };
        write!(f, "{s}")
    }
}

/// One benchmark of the suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Name as used in the paper's tables/figures.
    pub name: String,
    /// Application purpose (Table 3's second column).
    pub purpose: String,
    /// The circuit.
    pub circuit: Circuit,
    /// Parallelism level.
    pub parallelism: Level,
    /// Spatial locality level.
    pub spatial_locality: Level,
    /// Commutativity level.
    pub commutativity: Level,
}

impl Benchmark {
    /// Number of program qubits.
    pub fn n_qubits(&self) -> usize {
        self.circuit.n_qubits()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.circuit.len()
    }
}

/// Scale of the generated suite. `Full` mirrors Table 3's sizes (minus the
/// square-root register-width caveat recorded in EXPERIMENTS.md); `Reduced`
/// shrinks every instance so the whole suite compiles in seconds, for tests
/// and smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteScale {
    /// Paper-sized benchmarks.
    Full,
    /// Scaled-down benchmarks for quick runs.
    Reduced,
}

impl SuiteScale {
    /// Parses a `QCC_BENCH_SCALE`-style value. `None` or an empty/whitespace
    /// string means "use `default`"; `full` selects [`SuiteScale::Full`] and
    /// `reduced` (or its historical alias `small`) selects
    /// [`SuiteScale::Reduced`], case-insensitively. Anything else is an error
    /// naming the offending value — a typo'd scale must be a loud startup
    /// error, not a silent run at the wrong size.
    pub fn parse_env(value: Option<&str>, default: SuiteScale) -> Result<SuiteScale, String> {
        let Some(raw) = value else {
            return Ok(default);
        };
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(default);
        }
        match trimmed.to_ascii_lowercase().as_str() {
            "full" => Ok(SuiteScale::Full),
            "reduced" | "small" => Ok(SuiteScale::Reduced),
            _ => Err(format!(
                "invalid QCC_BENCH_SCALE value '{raw}': expected 'full' or 'reduced'"
            )),
        }
    }
}

/// Builds the benchmark suite of Table 3.
pub fn standard_suite(scale: SuiteScale, seed: u64) -> Vec<Benchmark> {
    let full = scale == SuiteScale::Full;
    let mut suite = Vec::new();

    suite.push(Benchmark {
        name: "MAXCUT-line".into(),
        purpose: "MAXCUT on a linear graph".into(),
        circuit: qaoa::maxcut_line(if full { 20 } else { 8 }),
        parallelism: Level::Low,
        spatial_locality: Level::High,
        commutativity: Level::High,
    });
    suite.push(Benchmark {
        name: "MAXCUT-reg4".into(),
        purpose: "MAXCUT on a random 4-regular graph".into(),
        circuit: qaoa::maxcut_reg4(if full { 30 } else { 10 }, seed),
        parallelism: Level::High,
        spatial_locality: Level::Medium,
        commutativity: Level::High,
    });
    suite.push(Benchmark {
        name: "MAXCUT-cluster".into(),
        purpose: "MAXCUT on a cluster graph".into(),
        circuit: if full {
            qaoa::maxcut_cluster(5, 6, seed)
        } else {
            qaoa::maxcut_cluster(3, 3, seed)
        },
        parallelism: Level::Medium,
        spatial_locality: Level::Low,
        commutativity: Level::High,
    });
    suite.push(Benchmark {
        name: "Ising-n15".into(),
        purpose: "Find ground state of Ising model".into(),
        circuit: ising::ising_chain(15),
        parallelism: Level::High,
        spatial_locality: Level::High,
        commutativity: Level::Medium,
    });
    suite.push(Benchmark {
        name: "Ising-n30".into(),
        purpose: "Find ground state of Ising model".into(),
        circuit: ising::ising_chain(if full { 30 } else { 10 }),
        parallelism: Level::High,
        spatial_locality: Level::High,
        commutativity: Level::Medium,
    });
    suite.push(Benchmark {
        name: "Ising-n60".into(),
        purpose: "Find ground state of Ising model".into(),
        circuit: ising::ising_chain(if full { 60 } else { 12 }),
        parallelism: Level::High,
        spatial_locality: Level::High,
        commutativity: Level::Medium,
    });
    suite.push(Benchmark {
        name: "square-root-n3".into(),
        purpose: "Grover search for a square root (3-bit input)".into(),
        circuit: grover::square_root_benchmark(if full { 3 } else { 2 }),
        parallelism: Level::Low,
        spatial_locality: Level::High,
        commutativity: Level::Low,
    });
    suite.push(Benchmark {
        name: "square-root-n4".into(),
        purpose: "Grover search for a square root (4-bit input)".into(),
        circuit: grover::square_root_benchmark(if full { 4 } else { 2 }),
        parallelism: Level::Low,
        spatial_locality: Level::High,
        commutativity: Level::Low,
    });
    suite.push(Benchmark {
        name: "square-root-n5".into(),
        purpose: "Grover search for a square root (5-bit input)".into(),
        circuit: grover::square_root_benchmark(if full { 5 } else { 3 }),
        parallelism: Level::Low,
        spatial_locality: Level::High,
        commutativity: Level::Low,
    });
    suite.push(Benchmark {
        name: "UCCSD-n4".into(),
        purpose: "UCCSD ansatz for VQE (4 spin-orbitals)".into(),
        circuit: uccsd::uccsd_benchmark(4),
        parallelism: Level::Low,
        spatial_locality: Level::High,
        commutativity: Level::Low,
    });
    suite.push(Benchmark {
        name: "UCCSD-n6".into(),
        purpose: "UCCSD ansatz for VQE (6 spin-orbitals)".into(),
        circuit: uccsd::uccsd_benchmark(6),
        parallelism: Level::Low,
        spatial_locality: Level::Medium,
        commutativity: Level::Low,
    });
    suite
}

/// Looks a benchmark up by name.
pub fn by_name(suite: &[Benchmark], name: &str) -> Option<Benchmark> {
    suite.iter().find(|b| b.name == name).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_suite_builds_quickly_and_completely() {
        let suite = standard_suite(SuiteScale::Reduced, 3);
        assert_eq!(suite.len(), 11);
        for b in &suite {
            assert!(b.gate_count() > 0, "{} is empty", b.name);
            assert!(b.n_qubits() >= 2);
        }
    }

    #[test]
    fn full_suite_matches_table3_sizes() {
        let suite = standard_suite(SuiteScale::Full, 3);
        let q = |name: &str| by_name(&suite, name).unwrap().n_qubits();
        assert_eq!(q("MAXCUT-line"), 20);
        assert_eq!(q("MAXCUT-reg4"), 30);
        assert_eq!(q("MAXCUT-cluster"), 30);
        assert_eq!(q("Ising-n30"), 30);
        assert_eq!(q("Ising-n60"), 60);
        assert_eq!(q("UCCSD-n4"), 4);
        assert_eq!(q("UCCSD-n6"), 6);
        // Square-root register widths grow with the instance index.
        assert!(q("square-root-n3") < q("square-root-n4"));
        assert!(q("square-root-n4") < q("square-root-n5"));
    }

    #[test]
    fn scale_parsing_accepts_known_names_and_rejects_garbage() {
        // Pure-function tests: mutating the real environment would race with
        // sibling test threads reading it (a libc-level hazard).
        let d = SuiteScale::Full;
        assert_eq!(SuiteScale::parse_env(None, d), Ok(SuiteScale::Full));
        assert_eq!(
            SuiteScale::parse_env(None, SuiteScale::Reduced),
            Ok(SuiteScale::Reduced)
        );
        assert_eq!(SuiteScale::parse_env(Some(""), d), Ok(SuiteScale::Full));
        assert_eq!(SuiteScale::parse_env(Some("  "), d), Ok(SuiteScale::Full));
        for full in ["full", "Full", "FULL", " full "] {
            assert_eq!(SuiteScale::parse_env(Some(full), d), Ok(SuiteScale::Full));
        }
        for reduced in ["reduced", "REDUCED", "small", "Small"] {
            assert_eq!(
                SuiteScale::parse_env(Some(reduced), d),
                Ok(SuiteScale::Reduced)
            );
        }
        for bad in ["tiny", "ful", "reduced!", "0"] {
            let err = SuiteScale::parse_env(Some(bad), d).unwrap_err();
            assert!(err.contains("QCC_BENCH_SCALE"), "{err}");
            assert!(err.contains(bad), "error must name the value: {err}");
        }
    }

    #[test]
    fn characteristics_match_table3() {
        let suite = standard_suite(SuiteScale::Reduced, 3);
        let b = by_name(&suite, "MAXCUT-cluster").unwrap();
        assert_eq!(b.spatial_locality, Level::Low);
        assert_eq!(b.commutativity, Level::High);
        let s = by_name(&suite, "square-root-n3").unwrap();
        assert_eq!(s.commutativity, Level::Low);
        assert_eq!(format!("{}", s.parallelism), "Low");
    }
}
