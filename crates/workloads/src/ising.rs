//! Transverse-field Ising model circuits (Table 3, rows 4–5).
//!
//! Finding the ground state of the Ising model `H = -J Σ Z_i Z_{i+1} - h Σ X_i`
//! is done with Trotterized adiabatic evolution / variational layers: each step
//! applies the ZZ couplings as CNOT–Rz–CNOT blocks along the chain followed by
//! an Rx layer for the transverse field. The circuits are highly parallel
//! (neighbouring blocks on disjoint pairs), have high spatial locality (chain
//! interactions), and only medium commutativity (the X layer separates the ZZ
//! layers) — the characterization given in Table 3.

use qcc_ir::{Circuit, Gate};

/// Parameters of a Trotterized Ising evolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsingParams {
    /// Number of spins.
    pub n_spins: usize,
    /// Number of Trotter steps.
    pub steps: usize,
    /// ZZ coupling angle per step (2·J·dt).
    pub zz_angle: f64,
    /// Transverse-field angle per step (2·h·dt).
    pub x_angle: f64,
    /// Whether the chain wraps around (periodic boundary).
    pub periodic: bool,
}

impl IsingParams {
    /// Default benchmark parameters for a chain of `n_spins`.
    pub fn chain(n_spins: usize) -> Self {
        Self {
            n_spins,
            steps: 2,
            zz_angle: 0.9,
            x_angle: 0.7,
            periodic: false,
        }
    }
}

/// Builds the Trotterized Ising evolution circuit.
pub fn ising_circuit(params: &IsingParams) -> Circuit {
    let n = params.n_spins;
    let mut c = Circuit::new(n);
    // Start in the uniform superposition (ground state of the pure transverse
    // field), as adiabatic-inspired schedules do.
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    for _ in 0..params.steps {
        // Even bonds then odd bonds — the natural parallel pattern.
        for parity in 0..2 {
            for a in (parity..n.saturating_sub(1)).step_by(2) {
                let b = a + 1;
                c.push(Gate::Cnot, &[a, b]);
                c.push(Gate::Rz(params.zz_angle), &[b]);
                c.push(Gate::Cnot, &[a, b]);
            }
        }
        if params.periodic && n > 2 {
            c.push(Gate::Cnot, &[n - 1, 0]);
            c.push(Gate::Rz(params.zz_angle), &[0]);
            c.push(Gate::Cnot, &[n - 1, 0]);
        }
        for q in 0..n {
            c.push(Gate::Rx(params.x_angle), &[q]);
        }
    }
    c
}

/// The benchmark instance "Ising model, n spins" from Table 3.
pub fn ising_chain(n_spins: usize) -> Circuit {
    ising_circuit(&IsingParams::chain(n_spins))
}

/// The energy diagonal of the classical ZZ part `Σ Z_i Z_{i+1}` of a chain,
/// used in tests.
pub fn zz_energy_diagonal(n: usize) -> Vec<f64> {
    let dim = 1usize << n;
    let mut diag = vec![0.0; dim];
    for (basis, value) in diag.iter_mut().enumerate() {
        for a in 0..n - 1 {
            let za = 1.0 - 2.0 * (((basis >> (n - 1 - a)) & 1) as f64);
            let zb = 1.0 - 2.0 * (((basis >> (n - 2 - a)) & 1) as f64);
            *value += za * zb;
        }
    }
    diag
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_sim::StateVector;

    #[test]
    fn circuit_sizes_match_parameters() {
        let c = ising_chain(30);
        assert_eq!(c.n_qubits(), 30);
        let p = IsingParams::chain(30);
        // Per step: 29 bonds × 3 gates + 30 Rx; plus the initial H layer.
        let expected = 30 + p.steps * (29 * 3 + 30);
        assert_eq!(c.len(), expected);
    }

    #[test]
    fn even_odd_ordering_enables_parallel_bonds() {
        let c = ising_chain(6);
        // The first two ZZ blocks touch disjoint pairs (0,1) and (2,3).
        let instrs = c.instructions();
        let first_block_qubits = &instrs[6].qubits; // after 6 H gates
        let second_block_qubits = &instrs[9].qubits;
        assert!(first_block_qubits
            .iter()
            .all(|q| !second_block_qubits.contains(q)));
    }

    #[test]
    fn trotterized_evolution_lowers_zz_energy() {
        // Starting from |+...+> (energy 0), a ferromagnetic-style evolution
        // should move expectation of Σ ZZ away from zero.
        let params = IsingParams {
            n_spins: 4,
            steps: 3,
            zz_angle: 0.6,
            x_angle: 0.3,
            periodic: false,
        };
        let c = ising_circuit(&params);
        let state = StateVector::zero(4).evolved(&c);
        let diag = zz_energy_diagonal(4);
        let energy = state.expectation_diagonal(&diag);
        assert!(energy.abs() > 0.05, "evolution did nothing: {energy}");
    }

    #[test]
    fn periodic_boundary_adds_one_bond() {
        let open = ising_circuit(&IsingParams {
            periodic: false,
            ..IsingParams::chain(8)
        });
        let closed = ising_circuit(&IsingParams {
            periodic: true,
            ..IsingParams::chain(8)
        });
        assert_eq!(closed.len(), open.len() + 2 * 3);
    }
}
