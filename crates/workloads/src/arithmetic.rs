//! Reversible arithmetic building blocks for the Grover square-root benchmark.
//!
//! The square-root circuits in Table 3 come from reversible logic synthesis:
//! Grover search over `x` with an oracle that computes `x²` and compares it to
//! a target. This module provides the arithmetic pieces — multi-controlled
//! constant addition (ripple increments), a squarer built from
//! doubly-controlled constant adds, and a register comparator — all exact and
//! built from the Toffoli/CNOT/X gate set so they flatten to the paper's
//! virtual ISA.

use qcc_ir::{decompose, Circuit, Gate};

/// Register layout of the squarer/oracle circuits.
///
/// * `x` — the `m`-bit input register being searched over,
/// * `acc` — the `2m`-bit accumulator receiving `x²`,
/// * `anc` — ancilla pool used by the multi-controlled gates (returned clean).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquarerLayout {
    /// Input register (most-significant bit first).
    pub x: Vec<usize>,
    /// Accumulator register (most-significant bit first).
    pub acc: Vec<usize>,
    /// Ancilla pool.
    pub anc: Vec<usize>,
}

impl SquarerLayout {
    /// Standard layout for an `m`-bit input: qubits `[0, m)` hold `x`,
    /// `[m, 3m)` the accumulator and the rest the ancilla pool.
    pub fn standard(m: usize) -> Self {
        let anc_count = (2 * m).max(2);
        Self {
            x: (0..m).collect(),
            acc: (m..3 * m).collect(),
            anc: (3 * m..3 * m + anc_count).collect(),
        }
    }

    /// Total number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.x.len() + self.acc.len() + self.anc.len()
    }
}

/// Appends a multi-controlled X with the given controls to `circuit`, using
/// ancillas from `anc` (which must be clean and is returned clean).
pub fn append_mcx(circuit: &mut Circuit, controls: &[usize], target: usize, anc: &[usize]) {
    for inst in decompose::multi_controlled_x(controls, target, anc) {
        circuit.push_instruction(inst);
    }
}

/// Appends a controlled "+2^k" (increment starting at bit `k`) on the register
/// `acc` (most-significant bit first), controlled on `controls`.
///
/// The increment propagates carries with multi-controlled X gates: bit
/// `acc[j]` flips when all lower bits from position `k` up to `j+1` are one
/// (and the controls hold). Gates are emitted from the most significant bit
/// downwards so each flip sees the *original* values of the lower bits.
pub fn append_controlled_add_power(
    circuit: &mut Circuit,
    acc: &[usize],
    k: usize,
    controls: &[usize],
    anc: &[usize],
) {
    let len = acc.len();
    if k >= len {
        return; // adding beyond the register width wraps away: nothing to do
    }
    // Position p counts from the least-significant end; acc is MSB-first so
    // bit p lives at acc[len - 1 - p].
    for p in (k..len).rev() {
        let mut ctrls: Vec<usize> = controls.to_vec();
        for lower in k..p {
            ctrls.push(acc[len - 1 - lower]);
        }
        append_mcx(circuit, &ctrls, acc[len - 1 - p], anc);
    }
}

/// Builds the squarer: `acc += x²` (mod 2^|acc|) as a reversible circuit.
///
/// For every pair of input bits `x_i·x_j` (values `2^i` and `2^j`, counted
/// from the least-significant end) the product contributes `2^(i+j)` once for
/// `i == j` and `2^(i+j+1)` for `i < j`; each contribution is added with a
/// doubly-controlled constant adder.
pub fn squarer_circuit(layout: &SquarerLayout) -> Circuit {
    let m = layout.x.len();
    let mut c = Circuit::new(layout.n_qubits());
    for i in 0..m {
        for j in i..m {
            // Bit values: x[i] is MSB-first, so its value exponent is m-1-i.
            let vi = m - 1 - i;
            let vj = m - 1 - j;
            let exponent = if i == j { vi + vj } else { vi + vj + 1 };
            let controls: Vec<usize> = if i == j {
                vec![layout.x[i]]
            } else {
                vec![layout.x[i], layout.x[j]]
            };
            append_controlled_add_power(&mut c, &layout.acc, exponent, &controls, &layout.anc);
        }
    }
    c
}

/// Appends a phase flip (Z) on the all-controls-true condition that
/// `acc == constant`, by X-ing the zero bits, applying a multi-controlled Z and
/// undoing the X's.
pub fn append_compare_and_flip(circuit: &mut Circuit, acc: &[usize], constant: u64, anc: &[usize]) {
    let len = acc.len();
    // X the bits where the constant has a 0 so the all-ones pattern encodes
    // equality.
    let flip_bits: Vec<usize> = (0..len)
        .filter(|&p| (constant >> p) & 1 == 0)
        .map(|p| acc[len - 1 - p])
        .collect();
    for &q in &flip_bits {
        circuit.push(Gate::X, &[q]);
    }
    // Multi-controlled Z = H target, MCX, H target.
    let target = acc[0];
    let controls: Vec<usize> = acc[1..].to_vec();
    circuit.push(Gate::H, &[target]);
    append_mcx(circuit, &controls, target, anc);
    circuit.push(Gate::H, &[target]);
    for &q in &flip_bits {
        circuit.push(Gate::X, &[q]);
    }
}

/// Appends the Grover diffusion operator on the `x` register.
pub fn append_diffusion(circuit: &mut Circuit, x: &[usize], anc: &[usize]) {
    for &q in x {
        circuit.push(Gate::H, &[q]);
        circuit.push(Gate::X, &[q]);
    }
    let target = *x.last().expect("non-empty register");
    let controls: Vec<usize> = x[..x.len() - 1].to_vec();
    circuit.push(Gate::H, &[target]);
    if controls.is_empty() {
        circuit.push(Gate::X, &[target]);
    } else {
        append_mcx(circuit, &controls, target, anc);
    }
    circuit.push(Gate::H, &[target]);
    for &q in x {
        circuit.push(Gate::X, &[q]);
        circuit.push(Gate::H, &[q]);
    }
}

/// Encodes a classical value into a register with X gates (for tests).
pub fn append_encode(circuit: &mut Circuit, register: &[usize], value: u64) {
    let len = register.len();
    for p in 0..len {
        if (value >> p) & 1 == 1 {
            circuit.push(Gate::X, &[register[len - 1 - p]]);
        }
    }
}

/// Reads the (classical) value of a register from a basis-state index, given
/// the total qubit count (for tests).
pub fn register_value(basis: usize, register: &[usize], n_qubits: usize) -> u64 {
    let len = register.len();
    let mut value = 0u64;
    for (i, &q) in register.iter().enumerate() {
        let bit = (basis >> (n_qubits - 1 - q)) & 1;
        let p = len - 1 - i;
        value |= (bit as u64) << p;
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_sim::StateVector;

    /// Runs a circuit on a basis state and returns the (single) output basis
    /// index, asserting the output is classical.
    fn run_classical(circuit: &Circuit, input: usize) -> usize {
        let n = circuit.n_qubits();
        let flat = decompose::flatten(circuit);
        let state = StateVector::basis(n, input).evolved(&flat);
        let probs = state.probabilities();
        let (idx, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(*p > 0.999, "output is not classical (p = {p})");
        idx
    }

    #[test]
    fn controlled_add_power_adds_when_control_set() {
        // 4-bit accumulator on qubits 1..5, control on qubit 0.
        let mut c = Circuit::new(7);
        let acc: Vec<usize> = (1..5).collect();
        let anc: Vec<usize> = (5..7).collect();
        append_controlled_add_power(&mut c, &acc, 1, &[0], &anc);
        // Input: control=1, acc=0b0011 -> expect 0b0101 (3 + 2 = 5).
        let mut input_circuit = Circuit::new(7);
        input_circuit.push(Gate::X, &[0]);
        append_encode(&mut input_circuit, &acc, 3);
        input_circuit.extend(&c);
        let out = run_classical(&input_circuit, 0);
        assert_eq!(register_value(out, &acc, 7), 5);
        // Without the control nothing happens.
        let mut no_control = Circuit::new(7);
        append_encode(&mut no_control, &acc, 3);
        no_control.extend(&c);
        let out2 = run_classical(&no_control, 0);
        assert_eq!(register_value(out2, &acc, 7), 3);
    }

    #[test]
    fn carry_propagates_through_ones() {
        let mut c = Circuit::new(7);
        let acc: Vec<usize> = (1..5).collect();
        let anc: Vec<usize> = (5..7).collect();
        append_controlled_add_power(&mut c, &acc, 0, &[0], &anc);
        // acc = 0b0111, +1 -> 0b1000
        let mut full = Circuit::new(7);
        full.push(Gate::X, &[0]);
        append_encode(&mut full, &acc, 7);
        full.extend(&c);
        let out = run_classical(&full, 0);
        assert_eq!(register_value(out, &acc, 7), 8);
    }

    #[test]
    fn squarer_computes_squares_for_two_bit_inputs() {
        let layout = SquarerLayout::standard(2);
        let squarer = squarer_circuit(&layout);
        for x in 0u64..4 {
            let mut full = Circuit::new(layout.n_qubits());
            append_encode(&mut full, &layout.x, x);
            full.extend(&squarer);
            let out = run_classical(&full, 0);
            assert_eq!(
                register_value(out, &layout.acc, layout.n_qubits()),
                x * x,
                "squaring {x}"
            );
            // Input register and ancillas are preserved / clean.
            assert_eq!(register_value(out, &layout.x, layout.n_qubits()), x);
            assert_eq!(register_value(out, &layout.anc, layout.n_qubits()), 0);
        }
    }

    #[test]
    fn compare_and_flip_marks_only_the_target_value() {
        // 2-bit accumulator; flip phase when acc == 2.
        let mut c = Circuit::new(4);
        let acc = vec![0usize, 1];
        let anc = vec![2usize, 3];
        append_compare_and_flip(&mut c, &acc, 2, &anc);
        let flat = decompose::flatten(&c);
        let u = flat.unitary();
        // Basis |10 00⟩ = index 0b1000 = 8 picks up a -1 phase; |01 00⟩ does not.
        assert!((u[(8, 8)].re + 1.0).abs() < 1e-9, "{}", u[(8, 8)]);
        assert!((u[(4, 4)].re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn layout_sizes() {
        let l = SquarerLayout::standard(3);
        assert_eq!(l.x.len(), 3);
        assert_eq!(l.acc.len(), 6);
        assert_eq!(l.n_qubits(), 3 + 6 + 6);
    }
}
