//! The GRAPE-backed latency model and pulse verification.
//!
//! This is the "optimal control unit" of the paper's backend (§3.5): given an
//! aggregated instruction (a list of constituent gates on a handful of
//! qubits), it builds the target unitary, searches for the shortest pulse that
//! implements it to a target fidelity, and reports that duration as the
//! instruction latency. Instructions wider than `max_qubits` fall back to the
//! analytic calibrated model, matching the paper's observation that numerical
//! optimal control does not scale past ~10 qubits (§2.5).

use crate::grape::{GrapeConfig, GrapeOptimizer, GrapeResult};
use crate::hamiltonian::TransmonSystem;
use parking_lot::Mutex;
use qcc_hw::persist::SnapshotWriter;
use qcc_hw::{CalibratedLatencyModel, ControlLimits, LatencyModel, PersistError, PricingStats};
use qcc_ir::{ByteCursor, Instruction};
use qcc_math::{gate_fidelity, CMatrix};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use threadpool::ThreadPool;

/// Number of independently locked shards in the latency cache. Concurrent
/// pricing threads only contend when their keys hash to the same shard, so a
/// modest power of two comfortably covers the pool sizes we run.
const CACHE_SHARDS: usize = 16;

/// Snapshot kind tag for the GRAPE solve cache (see [`qcc_hw::persist`]).
pub const GRAPE_SNAPSHOT_KIND: &str = "grape-latency-cache";

/// A sharded, compute-once latency cache.
///
/// Each key hashes (with the deterministic [`std::hash::DefaultHasher`]) to
/// one of [`CACHE_SHARDS`] shards, each guarded by its own `parking_lot`
/// mutex. The shard map stores one [`OnceLock`] slot per key: the shard lock
/// is only held long enough to fetch-or-insert the slot, and the expensive
/// GRAPE solve runs inside `OnceLock::get_or_init` *outside* any shard lock.
/// Concurrent callers of the same key block on the slot — not the shard — so
/// every key is solved exactly once and other keys keep flowing.
/// One shard: byte keys to their compute-once latency slots.
type CacheShard = HashMap<Vec<u8>, Arc<OnceLock<f64>>>;

struct ShardedLatencyCache {
    shards: Vec<Mutex<CacheShard>>,
}

impl ShardedLatencyCache {
    fn new() -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Fetches the compute-once slot for `key`, inserting an empty one if the
    /// key is new (occupied entries take the fast path: one lock, one clone).
    fn slot(&self, key: Vec<u8>) -> Arc<OnceLock<f64>> {
        let mut hasher = std::hash::DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.shards[hasher.finish() as usize % CACHE_SHARDS];
        shard.lock().entry(key).or_default().clone()
    }

    /// Number of cached keys across all shards (including in-flight solves).
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Every *settled* entry — keys whose solve has completed. In-flight
    /// slots are skipped: a snapshot taken mid-compile simply omits them.
    fn settled_entries(&self) -> Vec<(Vec<u8>, f64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (key, slot) in shard.lock().iter() {
                if let Some(&v) = slot.get() {
                    out.push((key.clone(), v));
                }
            }
        }
        out
    }

    /// Seeds `key` with `value` unless the key already has a slot (occupied
    /// or in-flight) — a warm start never overwrites live state.
    fn seed(&self, key: Vec<u8>, value: f64) {
        let slot = self.slot(key);
        let _ = slot.set(value);
    }
}

/// Latency model that runs the GRAPE optimal-control unit for small
/// instructions and falls back to the calibrated analytic model for larger
/// ones.
pub struct GrapeLatencyModel {
    limits: ControlLimits,
    grape: GrapeConfig,
    fallback: CalibratedLatencyModel,
    /// Widest instruction (in qubits) optimized numerically.
    max_qubits: usize,
    /// Bisection rounds in the minimal-time search.
    refinement_rounds: usize,
    cache: ShardedLatencyCache,
    /// Byte encoding of everything that parameterizes a solve besides the
    /// instruction list itself — prefixed to every cache key so models with
    /// different calibrations never alias (see [`cache_key`](Self::cache_key)).
    key_prefix: Vec<u8>,
    /// Number of pricing computations actually performed (cache misses).
    solves: AtomicUsize,
    /// Number of pricing queries answered (single and batched, hits included).
    queries: AtomicUsize,
}

impl std::fmt::Debug for GrapeLatencyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrapeLatencyModel")
            .field("max_qubits", &self.max_qubits)
            .field("refinement_rounds", &self.refinement_rounds)
            .finish()
    }
}

impl GrapeLatencyModel {
    /// Creates the model.
    pub fn new(limits: ControlLimits, grape: GrapeConfig, max_qubits: usize) -> Self {
        let refinement_rounds = 3;
        Self {
            fallback: CalibratedLatencyModel::new(limits),
            key_prefix: Self::solver_prefix(&limits, &grape, max_qubits, refinement_rounds),
            limits,
            grape,
            max_qubits,
            refinement_rounds,
            cache: ShardedLatencyCache::new(),
            solves: AtomicUsize::new(0),
            queries: AtomicUsize::new(0),
        }
    }

    /// Byte encoding of the solver configuration: control limits, every
    /// [`GrapeConfig`] field, the numeric-width cutoff, and the bisection
    /// depth. Two models that could return different latencies for the same
    /// instruction list get different prefixes, so a fleet of GRAPE-priced
    /// backends can share one process (and one key space) without collisions.
    fn solver_prefix(
        limits: &ControlLimits,
        grape: &GrapeConfig,
        max_qubits: usize,
        refinement_rounds: usize,
    ) -> Vec<u8> {
        let mut prefix = Vec::with_capacity(96);
        limits.encode_into(&mut prefix);
        prefix.extend_from_slice(&(grape.max_iterations as u64).to_le_bytes());
        for v in [
            grape.target_fidelity,
            grape.learning_rate,
            grape.dt,
            grape.init_scale,
        ] {
            prefix.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        prefix.extend_from_slice(&grape.seed.to_le_bytes());
        prefix.extend_from_slice(&(max_qubits as u64).to_le_bytes());
        prefix.extend_from_slice(&(refinement_rounds as u64).to_le_bytes());
        prefix
    }

    /// Model with the paper's control limits and a fast GRAPE profile, limited
    /// to two-qubit instructions (suitable for tests and the Table 1 bench).
    pub fn fast_two_qubit() -> Self {
        Self::new(ControlLimits::asplos19(), GrapeConfig::fast(), 2)
    }

    /// Cache key of an instruction list. Gate order is preserved: constituent
    /// gates do not commute in general, so `[X(0); H(0)]` and `[H(0); X(0)]`
    /// are different target unitaries and must price independently. The key is
    /// this model's solver prefix (control limits + full GRAPE configuration —
    /// the backend-identity part of the key) followed by the injective byte
    /// encoding of the sequence ([`Instruction::encode_into`]): variant tags,
    /// raw `f64::to_bits` angle bit patterns, and qubit indices — nearby
    /// rotation angles never share a key, and building it allocates one small
    /// `Vec<u8>` instead of the per-gate `format!` strings of the old
    /// `Debug`-rendered key.
    fn cache_key(&self, constituents: &[Instruction]) -> Vec<u8> {
        // ~18 bytes per encoded gate (tag + angle bits + two qubit indices).
        let mut key = Vec::with_capacity(self.key_prefix.len() + constituents.len() * 20);
        key.extend_from_slice(&self.key_prefix);
        for inst in constituents {
            inst.encode_into(&mut key);
        }
        key
    }

    /// One actual pricing computation for `constituents` (a cache miss):
    /// the optimal-control search, or the calibrated fallback when the
    /// instruction is too wide or the search did not converge.
    fn solve_uncached(&self, constituents: &[Instruction]) -> f64 {
        self.solves.fetch_add(1, Ordering::Relaxed);
        match self.optimize_instruction(constituents) {
            Some((t_best, result)) if result.converged => t_best,
            _ => self.fallback.aggregate_latency(constituents),
        }
    }

    /// Number of distinct instruction keys in the cache. Keys whose first
    /// solve is still in flight are counted (the compute-once slot is
    /// inserted before the solve completes), so during a concurrent compile
    /// this may transiently exceed [`solve_count`](Self::solve_count).
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// Number of pricing computations performed (cache misses). Under
    /// concurrent pricing this equals the number of distinct keys seen — each
    /// key is solved exactly once.
    pub fn solve_count(&self) -> usize {
        self.solves.load(Ordering::Relaxed)
    }

    /// Serializes every settled cache entry to `path` (atomic
    /// write-temp-then-rename; see [`qcc_hw::persist`]). The snapshot is
    /// namespaced by this model's solver fingerprint — control limits, full
    /// GRAPE configuration, width cutoff, bisection depth — so a model with
    /// *any* different calibration will refuse to load it. Returns the number
    /// of entries written. In-flight solves are skipped; records are sorted
    /// by key so identical cache contents always produce identical files.
    pub fn snapshot_to(&self, path: &std::path::Path) -> Result<usize, PersistError> {
        let mut entries = self.cache.settled_entries();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut writer = SnapshotWriter::new(GRAPE_SNAPSHOT_KIND, &self.key_prefix);
        for (key, value) in &entries {
            // Keys are prefix + instruction stream; the prefix doubles as the
            // snapshot fingerprint, so only the suffix goes in the record.
            let suffix = &key[self.key_prefix.len()..];
            let mut payload = Vec::with_capacity(suffix.len() + 16);
            payload.extend_from_slice(&(suffix.len() as u64).to_le_bytes());
            payload.extend_from_slice(suffix);
            payload.extend_from_slice(&value.to_bits().to_le_bytes());
            writer.record(&payload);
        }
        let count = writer.len();
        qcc_hw::persist::write_atomic(path, &writer.finish())?;
        Ok(count)
    }

    /// Warm-starts the solve cache from a snapshot written by
    /// [`snapshot_to`](Self::snapshot_to). Returns the number of entries
    /// loaded. Strict by design: a corrupt, truncated, foreign-version, or
    /// differently-calibrated snapshot is rejected with a [`PersistError`]
    /// naming the mismatch, and the cache is left exactly as it was — callers
    /// that prefer a silent cold start match on the error themselves. Loaded
    /// entries do not count as solves or queries, so
    /// [`solve_count`](Self::solve_count) still reports only this process's
    /// work — the warm-start tests pin it at zero.
    pub fn warm_start_from(&self, path: &std::path::Path) -> Result<usize, PersistError> {
        let records = qcc_hw::persist::load_records(path, GRAPE_SNAPSHOT_KIND, &self.key_prefix)?;
        // Validate every record before touching the cache: a load is
        // all-or-nothing.
        let mut entries = Vec::with_capacity(records.len());
        for payload in &records {
            let mut cur = ByteCursor::new(payload);
            let suffix_len = cur
                .len("grape record key length")
                .map_err(|detail| PersistError::Malformed { detail })?;
            let suffix = cur
                .bytes(suffix_len, "grape record key")
                .map_err(|detail| PersistError::Malformed { detail })?;
            // The key suffix must be a well-formed instruction stream — the
            // checksum guards against corruption, this guards against a
            // confused writer.
            let mut check = ByteCursor::new(suffix);
            while !check.is_empty() {
                Instruction::decode_from(&mut check)
                    .map_err(|detail| PersistError::Malformed { detail })?;
            }
            let value = cur
                .f64("grape record latency")
                .map_err(|detail| PersistError::Malformed { detail })?;
            if !cur.is_empty() {
                return Err(PersistError::Malformed {
                    detail: qcc_ir::DecodeError {
                        what: "grape record (trailing bytes)",
                        offset: cur.offset(),
                    },
                });
            }
            let mut key = Vec::with_capacity(self.key_prefix.len() + suffix.len());
            key.extend_from_slice(&self.key_prefix);
            key.extend_from_slice(suffix);
            entries.push((key, value));
        }
        let count = entries.len();
        for (key, value) in entries {
            self.cache.seed(key, value);
        }
        Ok(count)
    }

    /// Builds the target unitary of an instruction list on its (sorted) local
    /// qubit support, together with that support.
    pub fn target_unitary(constituents: &[Instruction]) -> (CMatrix, Vec<usize>) {
        let mut support: Vec<usize> = Vec::new();
        for inst in constituents {
            for &q in &inst.qubits {
                if !support.contains(&q) {
                    support.push(q);
                }
            }
        }
        support.sort_unstable();
        let n = support.len().max(1);
        let dim = 1usize << n;
        let mut u = CMatrix::identity(dim);
        for inst in constituents {
            let local: Vec<usize> = inst
                .qubits
                .iter()
                .map(|q| {
                    support
                        .iter()
                        .position(|s| s == q)
                        .expect("qubit in support")
                })
                .collect();
            u = inst.gate.matrix().embed(n, &local).matmul(&u);
        }
        (u, support)
    }

    /// Runs the full optimal-control pipeline for one instruction, returning
    /// the pulse duration and the GRAPE result.
    pub fn optimize_instruction(&self, constituents: &[Instruction]) -> Option<(f64, GrapeResult)> {
        let (target, support) = Self::target_unitary(constituents);
        if support.is_empty() || support.len() > self.max_qubits {
            return None;
        }
        let system = TransmonSystem::fully_coupled(support.len(), self.limits);
        let optimizer = GrapeOptimizer::new(self.grape.clone());
        let guess = self
            .fallback
            .aggregate_latency(constituents)
            .max(2.0 * self.grape.dt);
        let (t_best, result) =
            optimizer.minimize_time(&system, &target, guess, self.refinement_rounds);
        Some((t_best, result))
    }
}

impl LatencyModel for GrapeLatencyModel {
    fn isa_gate_latency(&self, inst: &Instruction) -> f64 {
        self.fallback.isa_gate_latency(inst)
    }

    fn aggregate_latency(&self, constituents: &[Instruction]) -> f64 {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let slot = self.cache.slot(self.cache_key(constituents));
        *slot.get_or_init(|| self.solve_uncached(constituents))
    }

    /// Batched pricing that dedups against the sharded cache before touching
    /// the pool: every query fetches its compute-once slot first, already
    /// solved keys (and duplicates within the batch, which share one slot
    /// allocation) are answered for free, and only the *unique* misses fan
    /// out over `pool` — one GRAPE solve per distinct key, exactly-once under
    /// any concurrency via the existing [`OnceLock`] slots. Values are
    /// bit-identical to sequential
    /// [`aggregate_latency`](LatencyModel::aggregate_latency) calls: same
    /// keys, same slots, same deterministic solves.
    fn aggregate_latency_batch(&self, queries: &[&[Instruction]], pool: &ThreadPool) -> Vec<f64> {
        self.queries.fetch_add(queries.len(), Ordering::Relaxed);
        let slots: Vec<Arc<OnceLock<f64>>> = queries
            .iter()
            .map(|q| self.cache.slot(self.cache_key(q)))
            .collect();
        // Unique unsolved keys, in first-occurrence order. Duplicate queries
        // resolve to the same slot allocation, so pointer identity dedups
        // without re-deriving the keys.
        let mut seen = HashSet::new();
        let misses: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.get().is_none() && seen.insert(Arc::as_ptr(slot)))
            .map(|(i, _)| i)
            .collect();
        if !misses.is_empty() {
            pool.parallel_map(&misses, |&i| {
                slot_value(&slots[i], || self.solve_uncached(queries[i]))
            });
        }
        // Collect in input order. Slots we fanned out above are initialized;
        // a slot observed occupied before the fan-out may still be mid-solve
        // in a concurrent caller, in which case get_or_init blocks on it (the
        // closure never runs twice for one slot — exactly-once holds).
        slots
            .iter()
            .zip(queries)
            .map(|(slot, q)| slot_value(slot, || self.solve_uncached(q)))
            .collect()
    }

    /// GRAPE solves take milliseconds each — always worth fanning out.
    fn parallel_pricing(&self) -> bool {
        true
    }

    fn pricing_stats(&self) -> Option<PricingStats> {
        Some(PricingStats {
            queries: self.queries.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
        })
    }

    fn persistent_cache(&self) -> Option<&dyn qcc_hw::PersistentCache> {
        Some(self)
    }

    fn name(&self) -> &'static str {
        "grape-xy"
    }
}

/// The GRAPE solve cache is the workspace's most expensive state — this is
/// the snapshot/warm-start surface front doors reach through
/// [`LatencyModel::persistent_cache`]. Delegates to the inherent
/// [`snapshot_to`](GrapeLatencyModel::snapshot_to) /
/// [`warm_start_from`](GrapeLatencyModel::warm_start_from) methods.
impl qcc_hw::PersistentCache for GrapeLatencyModel {
    fn snapshot_kind(&self) -> &'static str {
        GRAPE_SNAPSHOT_KIND
    }

    fn snapshot_fingerprint(&self) -> Vec<u8> {
        self.key_prefix.clone()
    }

    fn snapshot_to(&self, path: &std::path::Path) -> Result<usize, PersistError> {
        GrapeLatencyModel::snapshot_to(self, path)
    }

    fn warm_start_from(&self, path: &std::path::Path) -> Result<usize, PersistError> {
        GrapeLatencyModel::warm_start_from(self, path)
    }
}

/// Reads a compute-once slot, running `solve` (exactly once across all
/// threads) when the slot is still empty.
fn slot_value(slot: &OnceLock<f64>, solve: impl FnOnce() -> f64) -> f64 {
    *slot.get_or_init(solve)
}

/// Outcome of verifying one pulse against its target unitary (§3.6).
#[derive(Debug, Clone, PartialEq)]
pub struct PulseVerification {
    /// Gate fidelity between the pulse propagator and the target unitary.
    pub fidelity: f64,
    /// Whether the fidelity exceeds the verification threshold.
    pub passed: bool,
    /// Pulse duration in ns.
    pub duration_ns: f64,
}

/// Verifies a GRAPE result against a target unitary by re-simulating the pulse
/// with the piecewise-constant propagator (the role QuTiP plays in the paper).
pub fn verify_pulse(
    system: &TransmonSystem,
    result: &GrapeResult,
    target: &CMatrix,
    threshold: f64,
) -> PulseVerification {
    let u = result.pulse.propagator(system);
    let fidelity = gate_fidelity(&u, target);
    PulseVerification {
        fidelity,
        passed: fidelity >= threshold,
        duration_ns: result.pulse.duration(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grape::optimize_pulse;
    use qcc_ir::Gate;
    use qcc_math::pauli;

    fn inst(gate: Gate, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec())
    }

    /// A unique temp path for snapshot tests (no tempfile dependency).
    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "qcc-grape-snap-{}-{}.qccsnap",
            tag,
            std::process::id()
        ))
    }

    #[test]
    fn snapshot_round_trip_restores_latencies_without_solves() {
        let writer = GrapeLatencyModel::fast_two_qubit();
        let queries: Vec<Vec<Instruction>> = vec![
            vec![inst(Gate::X, &[0])],
            vec![inst(Gate::H, &[0]), inst(Gate::Rz(0.3), &[0])],
            vec![inst(Gate::Cnot, &[0, 1])],
        ];
        let expected: Vec<f64> = queries
            .iter()
            .map(|q| writer.aggregate_latency(q))
            .collect();
        assert_eq!(writer.solve_count(), 3);

        let path = scratch("roundtrip");
        assert_eq!(writer.snapshot_to(&path).unwrap(), 3);

        // A fresh, identically configured model warm-starts to the same
        // answers with zero new solves, bit-identically.
        let reader = GrapeLatencyModel::fast_two_qubit();
        assert_eq!(reader.warm_start_from(&path).unwrap(), 3);
        assert_eq!(reader.solve_count(), 0);
        assert_eq!(reader.cached_entries(), 3);
        for (q, want) in queries.iter().zip(&expected) {
            assert_eq!(reader.aggregate_latency(q).to_bits(), want.to_bits());
        }
        assert_eq!(reader.solve_count(), 0, "warm cache must answer everything");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshots_are_deterministic_bytes() {
        let a = GrapeLatencyModel::fast_two_qubit();
        let b = GrapeLatencyModel::fast_two_qubit();
        // Prime the two caches in different orders; the sorted snapshot must
        // come out byte-identical.
        let q1 = [inst(Gate::X, &[0])];
        let q2 = [inst(Gate::Cnot, &[0, 1])];
        a.aggregate_latency(&q1);
        a.aggregate_latency(&q2);
        b.aggregate_latency(&q2);
        b.aggregate_latency(&q1);
        let (pa, pb) = (scratch("det-a"), scratch("det-b"));
        a.snapshot_to(&pa).unwrap();
        b.snapshot_to(&pb).unwrap();
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
        std::fs::remove_file(&pa).unwrap();
        std::fs::remove_file(&pb).unwrap();
    }

    #[test]
    fn stale_calibration_snapshot_is_rejected_naming_the_mismatch() {
        let writer = GrapeLatencyModel::fast_two_qubit();
        writer.aggregate_latency(&[inst(Gate::X, &[0])]);
        let path = scratch("stale");
        writer.snapshot_to(&path).unwrap();

        // Same gates, different device calibration: the solver fingerprint
        // differs, so the cached pulse durations would be *wrong* here.
        let recalibrated = GrapeLatencyModel::new(
            ControlLimits::asplos19().scaled_drives(2.0),
            GrapeConfig::fast(),
            2,
        );
        let err = recalibrated.warm_start_from(&path).unwrap_err();
        assert!(
            matches!(err, PersistError::FingerprintMismatch { .. }),
            "expected FingerprintMismatch, got {err}"
        );
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
        // The rejected load left the cache cold.
        assert_eq!(recalibrated.cached_entries(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_rejected_and_cache_untouched() {
        let writer = GrapeLatencyModel::fast_two_qubit();
        writer.aggregate_latency(&[inst(Gate::X, &[0])]);
        let path = scratch("corrupt");
        writer.snapshot_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let reader = GrapeLatencyModel::fast_two_qubit();
        assert!(reader.warm_start_from(&path).is_err());
        assert_eq!(reader.cached_entries(), 0);
        // Cold start still works and prices correctly.
        let t = reader.aggregate_latency(&[inst(Gate::X, &[0])]);
        assert!(t.is_finite() && t > 0.0);
        assert_eq!(reader.solve_count(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn warm_start_never_overwrites_live_entries() {
        let writer = GrapeLatencyModel::fast_two_qubit();
        let q = [inst(Gate::X, &[0])];
        let t = writer.aggregate_latency(&q);
        let path = scratch("no-clobber");
        writer.snapshot_to(&path).unwrap();

        let reader = GrapeLatencyModel::fast_two_qubit();
        let live = reader.aggregate_latency(&q);
        assert_eq!(live.to_bits(), t.to_bits());
        reader.warm_start_from(&path).unwrap();
        assert_eq!(reader.aggregate_latency(&q).to_bits(), live.to_bits());
        assert_eq!(reader.cached_entries(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn target_unitary_uses_local_support() {
        let (u, support) = GrapeLatencyModel::target_unitary(&[
            inst(Gate::Cnot, &[4, 7]),
            inst(Gate::Rz(0.5), &[7]),
            inst(Gate::Cnot, &[4, 7]),
        ]);
        assert_eq!(support, vec![4, 7]);
        assert_eq!(u.rows(), 4);
        assert!(u.approx_eq(&pauli::zz_rotation(0.5), 1e-12));
    }

    #[test]
    fn grape_latency_close_to_theoretical_for_x_gate() {
        let model = GrapeLatencyModel::fast_two_qubit();
        let t = model.aggregate_latency(&[inst(Gate::X, &[3])]);
        // A π rotation at the 0.1 GHz drive limit takes 5 ns; the search should
        // land somewhere in the low single digits (it cannot beat ~5 ns but may
        // stop early near the guess).
        assert!(t > 1.0 && t < 12.0, "X-gate pulse duration {t} ns");
        // Cached second query returns the same value.
        assert_eq!(t, model.aggregate_latency(&[inst(Gate::X, &[3])]));
    }

    #[test]
    fn wide_instructions_fall_back_to_calibrated_model() {
        let model = GrapeLatencyModel::fast_two_qubit();
        let constituents = vec![
            inst(Gate::Cnot, &[0, 1]),
            inst(Gate::Cnot, &[1, 2]),
            inst(Gate::Cnot, &[2, 3]),
        ];
        let grape_t = model.aggregate_latency(&constituents);
        let calib = CalibratedLatencyModel::asplos19().aggregate_latency(&constituents);
        assert!((grape_t - calib).abs() < 1e-9);
    }

    #[test]
    fn isa_latency_delegates_to_calibrated_model() {
        let model = GrapeLatencyModel::fast_two_qubit();
        let calib = CalibratedLatencyModel::asplos19();
        let cnot = inst(Gate::Cnot, &[0, 1]);
        assert!((model.isa_gate_latency(&cnot) - calib.isa_gate_latency(&cnot)).abs() < 1e-12);
        assert_eq!(model.name(), "grape-xy");
    }

    #[test]
    fn cache_key_preserves_gate_order() {
        // X·H ≠ H·X: the two orders are different target unitaries and must
        // not collide in the cache (the old key sorted constituents).
        let xh = [inst(Gate::X, &[0]), inst(Gate::H, &[0])];
        let hx = [inst(Gate::H, &[0]), inst(Gate::X, &[0])];
        let keyer = GrapeLatencyModel::fast_two_qubit();
        assert_ne!(keyer.cache_key(&xh), keyer.cache_key(&hx));
        let (u_xh, _) = GrapeLatencyModel::target_unitary(&xh);
        let (u_hx, _) = GrapeLatencyModel::target_unitary(&hx);
        assert!(!u_xh.approx_eq_up_to_phase(&u_hx, 1e-9));

        // Rotation angles that differ in any bit must key separately (the
        // byte key embeds the raw f64 bit pattern).
        assert_ne!(
            keyer.cache_key(&[inst(Gate::Rz(0.40001), &[0])]),
            keyer.cache_key(&[inst(Gate::Rz(0.40004), &[0])])
        );

        let model = GrapeLatencyModel::fast_two_qubit();
        let t_xh = model.aggregate_latency(&xh);
        let t_hx = model.aggregate_latency(&hx);
        assert_eq!(model.cached_entries(), 2, "orders must price independently");
        assert_eq!(model.solve_count(), 2);
        assert!(t_xh > 0.0 && t_hx > 0.0);
        // Re-querying either order hits its own cached entry.
        assert_eq!(t_xh, model.aggregate_latency(&xh));
        assert_eq!(t_hx, model.aggregate_latency(&hx));
        assert_eq!(model.solve_count(), 2);
    }

    #[test]
    fn cache_keys_diverge_across_solver_configurations() {
        // Two models that could price the same instruction differently —
        // different control limits, or different GRAPE settings — must never
        // share a key, or a fleet of backends in one process would cross-read
        // each other's cached latencies.
        let query = [inst(Gate::X, &[0]), inst(Gate::H, &[0])];
        let base = GrapeLatencyModel::fast_two_qubit();
        let fast_limits = GrapeLatencyModel::new(
            ControlLimits::asplos19().scaled_drives(2.0),
            GrapeConfig::fast(),
            2,
        );
        let deeper = {
            let mut cfg = GrapeConfig::fast();
            cfg.max_iterations += 1;
            GrapeLatencyModel::new(ControlLimits::asplos19(), cfg, 2)
        };
        let wider = GrapeLatencyModel::new(ControlLimits::asplos19(), GrapeConfig::fast(), 3);
        assert_ne!(base.cache_key(&query), fast_limits.cache_key(&query));
        assert_ne!(base.cache_key(&query), deeper.cache_key(&query));
        assert_ne!(base.cache_key(&query), wider.cache_key(&query));
        // Identically configured models agree — the prefix is a pure function
        // of configuration, so persistent caches can share keys across runs.
        assert_eq!(
            base.cache_key(&query),
            GrapeLatencyModel::fast_two_qubit().cache_key(&query)
        );
    }

    #[test]
    fn concurrent_pricing_is_compute_once_and_deterministic() {
        // Hammer one model from 8 threads over a shared workload: the priced
        // latencies must be bit-identical to a single-threaded run, and every
        // distinct key must be solved exactly once despite the contention.
        let workload: Vec<Vec<Instruction>> = vec![
            vec![inst(Gate::X, &[0])],
            vec![inst(Gate::H, &[1])],
            vec![inst(Gate::X, &[0]), inst(Gate::H, &[0])],
            vec![inst(Gate::H, &[0]), inst(Gate::X, &[0])],
            vec![inst(Gate::Rz(0.4), &[2])],
            // Duplicate of the first key: must not trigger a second solve.
            vec![inst(Gate::X, &[0])],
        ];
        let reference = GrapeLatencyModel::fast_two_qubit();
        let expected: Vec<f64> = workload
            .iter()
            .map(|c| reference.aggregate_latency(c))
            .collect();
        let unique_keys = 5;
        assert_eq!(reference.solve_count(), unique_keys);

        let model = GrapeLatencyModel::fast_two_qubit();
        let runs: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        workload
                            .iter()
                            .map(|c| model.aggregate_latency(c))
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pricing thread panicked"))
                .collect()
        });
        for run in &runs {
            for (got, want) in run.iter().zip(expected.iter()) {
                assert_eq!(got.to_bits(), want.to_bits(), "{got} != {want}");
            }
        }
        assert_eq!(model.solve_count(), unique_keys, "duplicated GRAPE solves");
        assert_eq!(model.cached_entries(), unique_keys);
    }

    #[test]
    fn batch_pricing_dedups_and_matches_single_queries() {
        let workload: Vec<Vec<Instruction>> = vec![
            vec![inst(Gate::X, &[0])],
            vec![inst(Gate::H, &[1])],
            vec![inst(Gate::X, &[0]), inst(Gate::H, &[0])],
            vec![inst(Gate::X, &[0])], // duplicate within the batch
            vec![inst(Gate::Rz(0.4), &[2])],
        ];
        let queries: Vec<&[Instruction]> = workload.iter().map(|c| c.as_slice()).collect();
        let reference = GrapeLatencyModel::fast_two_qubit();
        let expected: Vec<f64> = workload
            .iter()
            .map(|c| reference.aggregate_latency(c))
            .collect();
        assert_eq!(reference.solve_count(), 4, "4 unique keys");

        for threads in [1, 4] {
            let model = GrapeLatencyModel::fast_two_qubit();
            let got = model.aggregate_latency_batch(&queries, &ThreadPool::new(threads));
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.to_bits(), e.to_bits(), "{threads} threads");
            }
            // The in-batch duplicate is priced by one solve.
            assert_eq!(model.solve_count(), 4, "{threads} threads");
            assert_eq!(model.cached_entries(), 4);
            // Re-batching is all cache hits: queries grow, solves do not.
            let again = model.aggregate_latency_batch(&queries, &ThreadPool::new(threads));
            assert_eq!(model.solve_count(), 4);
            for (g, e) in again.iter().zip(&expected) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
            let stats = model.pricing_stats().expect("grape model is instrumented");
            assert_eq!(stats.queries, 2 * workload.len());
            assert_eq!(stats.solves, 4);
            assert_eq!(stats.cache_hits(), 2 * workload.len() - 4);
        }
    }

    #[test]
    fn pulse_verification_passes_for_converged_result() {
        let sys = TransmonSystem::new(1, &[], ControlLimits::asplos19());
        let target = pauli::sigma_x();
        let result = optimize_pulse(&sys, &target, 8.0, GrapeConfig::fast());
        let verification = verify_pulse(&sys, &result, &target, 0.98);
        assert!(verification.passed, "fidelity {}", verification.fidelity);
        assert!((verification.duration_ns - result.pulse.duration()).abs() < 1e-12);
        // Verifying against a wrong target fails.
        let wrong = verify_pulse(&sys, &result, &pauli::sigma_z(), 0.9);
        assert!(!wrong.passed);
    }
}
