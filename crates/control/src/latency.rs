//! The GRAPE-backed latency model and pulse verification.
//!
//! This is the "optimal control unit" of the paper's backend (§3.5): given an
//! aggregated instruction (a list of constituent gates on a handful of
//! qubits), it builds the target unitary, searches for the shortest pulse that
//! implements it to a target fidelity, and reports that duration as the
//! instruction latency. Instructions wider than `max_qubits` fall back to the
//! analytic calibrated model, matching the paper's observation that numerical
//! optimal control does not scale past ~10 qubits (§2.5).

use crate::grape::{GrapeConfig, GrapeOptimizer, GrapeResult};
use crate::hamiltonian::TransmonSystem;
use parking_lot::Mutex;
use qcc_hw::{CalibratedLatencyModel, ControlLimits, LatencyModel};
use qcc_ir::Instruction;
use qcc_math::{gate_fidelity, CMatrix};
use std::collections::HashMap;

/// Latency model that runs the GRAPE optimal-control unit for small
/// instructions and falls back to the calibrated analytic model for larger
/// ones.
pub struct GrapeLatencyModel {
    limits: ControlLimits,
    grape: GrapeConfig,
    fallback: CalibratedLatencyModel,
    /// Widest instruction (in qubits) optimized numerically.
    max_qubits: usize,
    /// Bisection rounds in the minimal-time search.
    refinement_rounds: usize,
    cache: Mutex<HashMap<String, f64>>,
}

impl std::fmt::Debug for GrapeLatencyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrapeLatencyModel")
            .field("max_qubits", &self.max_qubits)
            .field("refinement_rounds", &self.refinement_rounds)
            .finish()
    }
}

impl GrapeLatencyModel {
    /// Creates the model.
    pub fn new(limits: ControlLimits, grape: GrapeConfig, max_qubits: usize) -> Self {
        Self {
            fallback: CalibratedLatencyModel::new(limits),
            limits,
            grape,
            max_qubits,
            refinement_rounds: 3,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Model with the paper's control limits and a fast GRAPE profile, limited
    /// to two-qubit instructions (suitable for tests and the Table 1 bench).
    pub fn fast_two_qubit() -> Self {
        Self::new(ControlLimits::asplos19(), GrapeConfig::fast(), 2)
    }

    fn cache_key(constituents: &[Instruction]) -> String {
        let mut parts: Vec<String> = constituents
            .iter()
            .map(|i| format!("{}:{:?}", i.gate, i.qubits))
            .collect();
        parts.sort();
        parts.join(";")
    }

    /// Builds the target unitary of an instruction list on its (sorted) local
    /// qubit support, together with that support.
    pub fn target_unitary(constituents: &[Instruction]) -> (CMatrix, Vec<usize>) {
        let mut support: Vec<usize> = Vec::new();
        for inst in constituents {
            for &q in &inst.qubits {
                if !support.contains(&q) {
                    support.push(q);
                }
            }
        }
        support.sort_unstable();
        let n = support.len().max(1);
        let dim = 1usize << n;
        let mut u = CMatrix::identity(dim);
        for inst in constituents {
            let local: Vec<usize> = inst
                .qubits
                .iter()
                .map(|q| {
                    support
                        .iter()
                        .position(|s| s == q)
                        .expect("qubit in support")
                })
                .collect();
            u = inst.gate.matrix().embed(n, &local).matmul(&u);
        }
        (u, support)
    }

    /// Runs the full optimal-control pipeline for one instruction, returning
    /// the pulse duration and the GRAPE result.
    pub fn optimize_instruction(&self, constituents: &[Instruction]) -> Option<(f64, GrapeResult)> {
        let (target, support) = Self::target_unitary(constituents);
        if support.is_empty() || support.len() > self.max_qubits {
            return None;
        }
        let system = TransmonSystem::fully_coupled(support.len(), self.limits);
        let optimizer = GrapeOptimizer::new(self.grape.clone());
        let guess = self
            .fallback
            .aggregate_latency(constituents)
            .max(2.0 * self.grape.dt);
        let (t_best, result) =
            optimizer.minimize_time(&system, &target, guess, self.refinement_rounds);
        Some((t_best, result))
    }
}

impl LatencyModel for GrapeLatencyModel {
    fn isa_gate_latency(&self, inst: &Instruction) -> f64 {
        self.fallback.isa_gate_latency(inst)
    }

    fn aggregate_latency(&self, constituents: &[Instruction]) -> f64 {
        let key = Self::cache_key(constituents);
        if let Some(&t) = self.cache.lock().get(&key) {
            return t;
        }
        let t = match self.optimize_instruction(constituents) {
            Some((t_best, result)) if result.converged => t_best,
            _ => self.fallback.aggregate_latency(constituents),
        };
        self.cache.lock().insert(key, t);
        t
    }

    fn name(&self) -> &'static str {
        "grape-xy"
    }
}

/// Outcome of verifying one pulse against its target unitary (§3.6).
#[derive(Debug, Clone, PartialEq)]
pub struct PulseVerification {
    /// Gate fidelity between the pulse propagator and the target unitary.
    pub fidelity: f64,
    /// Whether the fidelity exceeds the verification threshold.
    pub passed: bool,
    /// Pulse duration in ns.
    pub duration_ns: f64,
}

/// Verifies a GRAPE result against a target unitary by re-simulating the pulse
/// with the piecewise-constant propagator (the role QuTiP plays in the paper).
pub fn verify_pulse(
    system: &TransmonSystem,
    result: &GrapeResult,
    target: &CMatrix,
    threshold: f64,
) -> PulseVerification {
    let u = result.pulse.propagator(system);
    let fidelity = gate_fidelity(&u, target);
    PulseVerification {
        fidelity,
        passed: fidelity >= threshold,
        duration_ns: result.pulse.duration(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grape::optimize_pulse;
    use qcc_ir::Gate;
    use qcc_math::pauli;

    fn inst(gate: Gate, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec())
    }

    #[test]
    fn target_unitary_uses_local_support() {
        let (u, support) = GrapeLatencyModel::target_unitary(&[
            inst(Gate::Cnot, &[4, 7]),
            inst(Gate::Rz(0.5), &[7]),
            inst(Gate::Cnot, &[4, 7]),
        ]);
        assert_eq!(support, vec![4, 7]);
        assert_eq!(u.rows(), 4);
        assert!(u.approx_eq(&pauli::zz_rotation(0.5), 1e-12));
    }

    #[test]
    fn grape_latency_close_to_theoretical_for_x_gate() {
        let model = GrapeLatencyModel::fast_two_qubit();
        let t = model.aggregate_latency(&[inst(Gate::X, &[3])]);
        // A π rotation at the 0.1 GHz drive limit takes 5 ns; the search should
        // land somewhere in the low single digits (it cannot beat ~5 ns but may
        // stop early near the guess).
        assert!(t > 1.0 && t < 12.0, "X-gate pulse duration {t} ns");
        // Cached second query returns the same value.
        assert_eq!(t, model.aggregate_latency(&[inst(Gate::X, &[3])]));
    }

    #[test]
    fn wide_instructions_fall_back_to_calibrated_model() {
        let model = GrapeLatencyModel::fast_two_qubit();
        let constituents = vec![
            inst(Gate::Cnot, &[0, 1]),
            inst(Gate::Cnot, &[1, 2]),
            inst(Gate::Cnot, &[2, 3]),
        ];
        let grape_t = model.aggregate_latency(&constituents);
        let calib = CalibratedLatencyModel::asplos19().aggregate_latency(&constituents);
        assert!((grape_t - calib).abs() < 1e-9);
    }

    #[test]
    fn isa_latency_delegates_to_calibrated_model() {
        let model = GrapeLatencyModel::fast_two_qubit();
        let calib = CalibratedLatencyModel::asplos19();
        let cnot = inst(Gate::Cnot, &[0, 1]);
        assert!((model.isa_gate_latency(&cnot) - calib.isa_gate_latency(&cnot)).abs() < 1e-12);
        assert_eq!(model.name(), "grape-xy");
    }

    #[test]
    fn pulse_verification_passes_for_converged_result() {
        let sys = TransmonSystem::new(1, &[], ControlLimits::asplos19());
        let target = pauli::sigma_x();
        let result = optimize_pulse(&sys, &target, 8.0, GrapeConfig::fast());
        let verification = verify_pulse(&sys, &result, &target, 0.98);
        assert!(verification.passed, "fidelity {}", verification.fidelity);
        assert!((verification.duration_ns - result.pulse.duration()).abs() < 1e-12);
        // Verifying against a wrong target fails.
        let wrong = verify_pulse(&sys, &result, &pauli::sigma_z(), 0.9);
        assert!(!wrong.passed);
    }
}
