//! GRAPE (GRadient Ascent Pulse Engineering) with Adam updates.
//!
//! Given a target unitary and a [`TransmonSystem`], the optimizer searches for
//! piecewise-constant control amplitudes whose propagator matches the target
//! (§2.5 of the paper). The gradient of the fidelity with respect to each
//! amplitude is computed analytically from the forward/backward propagator
//! products (the standard first-order GRAPE gradient), and amplitudes are
//! clipped to the device limits after every update — the same "realistic
//! experimental concerns" the paper's optimal-control unit enforces (§3.5).

use crate::hamiltonian::TransmonSystem;
use crate::pulse::PulseProgram;
use qcc_math::{expm, gate_fidelity, matmul_with, CMatrix, ExpmWorkspace, MatmulWorkspace, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a GRAPE run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrapeConfig {
    /// Maximum number of gradient iterations.
    pub max_iterations: usize,
    /// Target gate fidelity at which the run stops early.
    pub target_fidelity: f64,
    /// Adam learning rate (GHz per step).
    pub learning_rate: f64,
    /// Time-step duration in ns.
    pub dt: f64,
    /// Seed for the random initial pulse.
    pub seed: u64,
    /// Scale of the random initial amplitudes relative to each control limit.
    pub init_scale: f64,
}

impl Default for GrapeConfig {
    fn default() -> Self {
        Self {
            max_iterations: 300,
            target_fidelity: 0.999,
            learning_rate: 0.003,
            dt: 0.5,
            seed: 0xA5_5A,
            init_scale: 0.3,
        }
    }
}

impl GrapeConfig {
    /// A faster, lower-accuracy profile used in unit tests.
    pub fn fast() -> Self {
        Self {
            max_iterations: 150,
            target_fidelity: 0.99,
            learning_rate: 0.01,
            ..Self::default()
        }
    }
}

/// Result of a GRAPE optimization.
#[derive(Debug, Clone)]
pub struct GrapeResult {
    /// The optimized pulse program.
    pub pulse: PulseProgram,
    /// Gate fidelity of the final pulse against the target.
    pub fidelity: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the target fidelity was reached.
    pub converged: bool,
}

/// GRAPE optimizer for a fixed [`TransmonSystem`].
#[derive(Debug, Clone)]
pub struct GrapeOptimizer {
    config: GrapeConfig,
}

impl GrapeOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: GrapeConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GrapeConfig {
        &self.config
    }

    /// Optimizes a pulse of `n_steps · dt` ns that implements `target` on
    /// `system`.
    ///
    /// # Panics
    ///
    /// Panics if the target dimension does not match the system dimension or
    /// `n_steps` is zero.
    pub fn optimize(
        &self,
        system: &TransmonSystem,
        target: &CMatrix,
        n_steps: usize,
    ) -> GrapeResult {
        assert_eq!(target.rows(), system.dim(), "target dimension mismatch");
        assert!(n_steps > 0, "pulse needs at least one step");
        let cfg = &self.config;
        let n_controls = system.n_controls();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut pulse = PulseProgram::zeros(system, n_steps, cfg.dt);
        for step in &mut pulse.amplitudes {
            for (k, u) in step.iter_mut().enumerate() {
                let lim = system.limit(k);
                *u = rng.gen_range(-1.0..1.0) * lim * cfg.init_scale;
            }
        }

        // Adam state.
        let mut m = vec![vec![0.0f64; n_controls]; n_steps];
        let mut v = vec![vec![0.0f64; n_controls]; n_steps];
        let (beta1, beta2, eps) = (0.9f64, 0.999f64, 1e-8f64);

        let mut best_pulse = pulse.clone();
        let mut best_fid = 0.0;
        let mut iterations = 0;
        // One workspace (propagators, partial products, expm scratch, the
        // target adjoint) serves every gradient iteration of this run — the
        // per-iteration matrix churn of the old code was the dominant
        // allocation cost of a GRAPE solve.
        let mut ws = GradientWorkspace::for_target(target);

        for iter in 0..cfg.max_iterations {
            iterations = iter + 1;
            let (fidelity, gradient) = fidelity_and_gradient_with(system, target, &pulse, &mut ws);
            if fidelity > best_fid {
                best_fid = fidelity;
                best_pulse = pulse.clone();
            }
            if fidelity >= cfg.target_fidelity {
                return GrapeResult {
                    pulse: best_pulse,
                    fidelity: best_fid,
                    iterations,
                    converged: true,
                };
            }
            // Adam ascent step on the fidelity.
            let t = (iter + 1) as f64;
            for j in 0..n_steps {
                for k in 0..n_controls {
                    let g = gradient[j][k];
                    m[j][k] = beta1 * m[j][k] + (1.0 - beta1) * g;
                    v[j][k] = beta2 * v[j][k] + (1.0 - beta2) * g * g;
                    let m_hat = m[j][k] / (1.0 - beta1.powf(t));
                    let v_hat = v[j][k] / (1.0 - beta2.powf(t));
                    pulse.amplitudes[j][k] += cfg.learning_rate * m_hat / (v_hat.sqrt() + eps);
                }
            }
            pulse.clip_to_limits();
        }

        // Final evaluation in case the last step improved the pulse.
        let final_fid = gate_fidelity(&pulse.propagator(system), target);
        if final_fid > best_fid {
            best_fid = final_fid;
            best_pulse = pulse;
        }
        GrapeResult {
            converged: best_fid >= cfg.target_fidelity,
            pulse: best_pulse,
            fidelity: best_fid,
            iterations,
        }
    }

    /// Searches for the shortest pulse duration (in ns) that reaches the target
    /// fidelity, by doubling up from `t_min` and then bisecting. Returns the
    /// best result found and its duration.
    ///
    /// `t_guess` seeds the search (e.g. from the calibrated latency model).
    pub fn minimize_time(
        &self,
        system: &TransmonSystem,
        target: &CMatrix,
        t_guess: f64,
        refinement_rounds: usize,
    ) -> (f64, GrapeResult) {
        let dt = self.config.dt;
        let steps_for = |t: f64| ((t / dt).ceil() as usize).max(2);

        // Find a feasible upper bound.
        let mut t_hi = t_guess.max(2.0 * dt);
        let mut result_hi = self.optimize(system, target, steps_for(t_hi));
        let mut expand = 0;
        while !result_hi.converged && expand < 4 {
            t_hi *= 1.6;
            result_hi = self.optimize(system, target, steps_for(t_hi));
            expand += 1;
        }
        if !result_hi.converged {
            return (t_hi, result_hi);
        }
        // Bisection between a (possibly infeasible) lower bound and t_hi.
        let mut t_lo = t_hi / 3.0;
        let mut best = (t_hi, result_hi);
        for _ in 0..refinement_rounds {
            let t_mid = 0.5 * (t_lo + best.0);
            let r = self.optimize(system, target, steps_for(t_mid));
            if r.converged {
                best = (t_mid, r);
            } else {
                t_lo = t_mid;
            }
        }
        best
    }
}

/// Reusable buffers of one GRAPE run: the per-step propagators, the
/// forward/backward partial products, the expm scratch, the target adjoint,
/// and the two per-step products of the gradient loop. Allocated once per
/// [`GrapeOptimizer::optimize`] call and reused across all of its gradient
/// iterations (up to `max_iterations` of them), instead of reallocating
/// `3·n_steps + ~12` matrices every iteration as the per-call version did.
#[derive(Debug, Default)]
struct GradientWorkspace {
    expm: ExpmWorkspace,
    mm: MatmulWorkspace,
    step_props: Vec<CMatrix>,
    forward: Vec<CMatrix>,
    backward: Vec<CMatrix>,
    total: CMatrix,
    scaled_h: CMatrix,
    c_j: CMatrix,
    pc: CMatrix,
    target_dag: CMatrix,
    id: CMatrix,
}

impl GradientWorkspace {
    /// A workspace with the target adjoint (constant across iterations)
    /// precomputed.
    fn for_target(target: &CMatrix) -> Self {
        Self {
            target_dag: target.dagger(),
            ..Self::default()
        }
    }

    /// Shapes the per-step buffer vectors for `n_steps` steps of dimension
    /// `dim` (no-op when already shaped).
    fn ensure(&mut self, n_steps: usize, dim: usize) {
        self.step_props.resize_with(n_steps, CMatrix::default);
        self.forward.resize_with(n_steps, CMatrix::default);
        self.backward.resize_with(n_steps, CMatrix::default);
        if self.id.rows() != dim {
            self.id = CMatrix::identity(dim);
        }
    }
}

/// Computes the gate fidelity of the pulse and its gradient with respect to
/// every amplitude, using the first-order GRAPE expressions. (The optimizer
/// itself goes through [`fidelity_and_gradient_with`] to reuse buffers; this
/// fresh-workspace wrapper serves the finite-difference test.)
#[cfg(test)]
fn fidelity_and_gradient(
    system: &TransmonSystem,
    target: &CMatrix,
    pulse: &PulseProgram,
) -> (f64, Vec<Vec<f64>>) {
    fidelity_and_gradient_with(
        system,
        target,
        pulse,
        &mut GradientWorkspace::for_target(target),
    )
}

/// [`fidelity_and_gradient`] against a reusable [`GradientWorkspace`] —
/// `ws.target_dag` must be the adjoint of `target` (use
/// [`GradientWorkspace::for_target`]).
fn fidelity_and_gradient_with(
    system: &TransmonSystem,
    target: &CMatrix,
    pulse: &PulseProgram,
    ws: &mut GradientWorkspace,
) -> (f64, Vec<Vec<f64>>) {
    let n_steps = pulse.n_steps();
    let n_controls = system.n_controls();
    let dim = system.dim();
    let d = dim as f64;
    let two_pi_dt = 2.0 * std::f64::consts::PI * pulse.dt;
    ws.ensure(n_steps, dim);

    // Step propagators and forward partial products P_j = U_j … U_1.
    for (j, amps) in pulse.amplitudes.iter().enumerate() {
        let h = system.hamiltonian(amps);
        ws.scaled_h.scale_into(&h, C64::new(0.0, -two_pi_dt));
        ws.step_props[j] = expm::expm_with(&ws.scaled_h, &mut ws.expm);
    }
    for j in 0..n_steps {
        // P_0 = U_1 · I, P_j = U_{j+1} · P_{j-1}: multiplying by the stored
        // identity keeps the arithmetic of the original accumulator loop.
        let (done, rest) = ws.forward.split_at_mut(j);
        let prev = if j == 0 { &ws.id } else { &done[j - 1] };
        matmul_with(&ws.step_props[j], prev, &mut rest[0], &mut ws.mm);
    }
    // Backward products B_j = U_N … U_{j+1} (B_{N-1} = I), and the full
    // product U_N … U_1.
    ws.backward[n_steps - 1].copy_from(&ws.id);
    for j in (0..n_steps.saturating_sub(1)).rev() {
        let (head, tail) = ws.backward.split_at_mut(j + 1);
        matmul_with(&tail[0], &ws.step_props[j + 1], &mut head[j], &mut ws.mm);
    }
    matmul_with(
        &ws.backward[0],
        &ws.step_props[0],
        &mut ws.total,
        &mut ws.mm,
    );
    let overlap = target.hs_inner(&ws.total); // tr(target† U_total)
    let fidelity = overlap.norm_sqr() / (d * d);

    // Gradient: dF/du_{j,k} = (2/d²)·Re[ conj(g)·tr(target† B_j ∂U_j P_{j-1}) ]
    // with the first-order approximation ∂U_j ≈ -i·2π·dt·H_k·U_j, so
    // tr(target† B_j (-i 2π dt H_k) U_j P_{j-1}) = -i 2π dt · tr(C_j H_k P_j)
    // where C_j = target† B_j and P_j = forward[j].
    let mut gradient = vec![vec![0.0f64; n_controls]; n_steps];
    for (j, grad_row) in gradient.iter_mut().enumerate() {
        matmul_with(&ws.target_dag, &ws.backward[j], &mut ws.c_j, &mut ws.mm);
        // Using the cyclic property: tr(C_j H_k P_j) = tr(P_j C_j H_k), so one
        // matmul per step suffices and each control costs only a trace.
        matmul_with(&ws.forward[j], &ws.c_j, &mut ws.pc, &mut ws.mm);
        for (k, (_, h_k, _)) in system.controls().iter().enumerate() {
            // tr(P_j C_j H_k) = Σ_{a,b} (P_j C_j)[a,b] · H_k[b,a].
            let mut tr = C64::zero();
            for a in 0..dim {
                for b in 0..dim {
                    let h = h_k[(b, a)];
                    if h.re != 0.0 || h.im != 0.0 {
                        tr += ws.pc[(a, b)] * h;
                    }
                }
            }
            let term = C64::new(0.0, -two_pi_dt) * tr;
            let grad = 2.0 * (overlap.conj() * term).re / (d * d);
            grad_row[k] = grad;
        }
    }
    (fidelity, gradient)
}

/// Convenience wrapper: optimize `target` on `system` with default settings and
/// a pulse of duration `duration_ns`.
pub fn optimize_pulse(
    system: &TransmonSystem,
    target: &CMatrix,
    duration_ns: f64,
    config: GrapeConfig,
) -> GrapeResult {
    let n_steps = ((duration_ns / config.dt).ceil() as usize).max(2);
    GrapeOptimizer::new(config).optimize(system, target, n_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_hw::ControlLimits;
    use qcc_math::pauli;

    fn single_qubit_system() -> TransmonSystem {
        TransmonSystem::new(1, &[], ControlLimits::asplos19())
    }

    #[test]
    // `k` indexes both `grad` and the pulse being bumped; an iterator over one
    // of them would obscure the pairing.
    #[allow(clippy::needless_range_loop)]
    fn gradient_matches_finite_differences() {
        let sys = TransmonSystem::new(1, &[], ControlLimits::asplos19());
        let target = pauli::hadamard();
        // Use a small dt: the GRAPE gradient is first order in dt, so the
        // agreement with finite differences tightens as dt shrinks.
        let mut pulse = PulseProgram::zeros(&sys, 6, 0.1);
        // Deterministic non-trivial starting pulse.
        for (j, step) in pulse.amplitudes.iter_mut().enumerate() {
            step[0] = 0.03 * ((j as f64) - 2.0) / 3.0;
            step[1] = 0.02 * ((j % 3) as f64 - 1.0);
        }
        let (f0, grad) = fidelity_and_gradient(&sys, &target, &pulse);
        let h = 1e-6;
        for j in [0usize, 3, 5] {
            for k in 0..sys.n_controls() {
                let mut bumped = pulse.clone();
                bumped.amplitudes[j][k] += h;
                let (f1, _) = fidelity_and_gradient(&sys, &target, &bumped);
                let fd = (f1 - f0) / h;
                // The GRAPE gradient is first order in dt, so agreement with a
                // finite difference is approximate (a few percent at dt=0.5 ns)
                // but the sign and magnitude must match.
                let tol = 0.10 * fd.abs().max(grad[j][k].abs()) + 2e-4;
                assert!(
                    (fd - grad[j][k]).abs() < tol,
                    "step {j} control {k}: fd {fd} vs analytic {}",
                    grad[j][k]
                );
            }
        }
    }

    #[test]
    fn grape_learns_x_gate() {
        let sys = single_qubit_system();
        let target = pauli::sigma_x();
        // A π rotation at 0.1 GHz needs 5 ns; give it 8 ns of budget.
        let result = optimize_pulse(&sys, &target, 8.0, GrapeConfig::fast());
        assert!(
            result.fidelity > 0.99,
            "X-gate GRAPE fidelity {}",
            result.fidelity
        );
        assert!(result.pulse.respects_limits(1e-9));
    }

    #[test]
    fn grape_learns_hadamard() {
        let sys = single_qubit_system();
        let target = pauli::hadamard();
        let result = optimize_pulse(&sys, &target, 10.0, GrapeConfig::fast());
        assert!(
            result.fidelity > 0.99,
            "H-gate GRAPE fidelity {}",
            result.fidelity
        );
    }

    #[test]
    fn grape_learns_iswap_on_coupled_pair() {
        let sys = TransmonSystem::new(2, &[(0, 1)], ControlLimits::asplos19());
        let target = pauli::iswap();
        // An iSWAP needs ≥ 12.5 ns of interaction at the coupling limit; give
        // head-room so the fast profile converges reliably.
        let mut cfg = GrapeConfig::fast();
        cfg.dt = 1.0;
        let result = optimize_pulse(&sys, &target, 20.0, cfg);
        assert!(
            result.fidelity > 0.98,
            "iSWAP GRAPE fidelity {}",
            result.fidelity
        );
        assert!(result.pulse.respects_limits(1e-9));
    }

    #[test]
    fn infeasible_duration_does_not_converge() {
        // 1 ns is far too short for an X gate at a 0.1 GHz drive limit.
        let sys = single_qubit_system();
        let target = pauli::sigma_x();
        let result = optimize_pulse(&sys, &target, 1.0, GrapeConfig::fast());
        assert!(!result.converged);
        assert!(result.fidelity < 0.9);
    }

    #[test]
    fn minimize_time_finds_shorter_feasible_pulse() {
        let sys = single_qubit_system();
        let target = pauli::rx(std::f64::consts::FRAC_PI_2);
        let opt = GrapeOptimizer::new(GrapeConfig::fast());
        let (t_best, result) = opt.minimize_time(&sys, &target, 8.0, 3);
        assert!(result.converged, "fidelity {}", result.fidelity);
        // The theoretical minimum is 2.5 ns; we should land well under the
        // 8 ns guess.
        assert!(t_best < 8.0 + 1e-9);
        assert!(t_best >= 1.0);
    }
}
