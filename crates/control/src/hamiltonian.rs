//! Control Hamiltonians for superconducting transmon systems with XY coupling.
//!
//! The model follows §5.1 of the paper: every qubit has independent x and y
//! microwave drives (limit `5·µ_max`), and every coupled pair has a tunable
//! XY (flip-flop) interaction `(XX + YY)/2` with drive limit `µ_max`.
//! Operating below the transmon anharmonicity keeps leakage negligible, so the
//! system is modelled in the computational subspace.

use qcc_hw::ControlLimits;
use qcc_math::{pauli, CMatrix};
use serde::{Deserialize, Serialize};

/// Identifies one control field of a [`TransmonSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlKind {
    /// X drive on a single qubit.
    DriveX(usize),
    /// Y drive on a single qubit.
    DriveY(usize),
    /// XY coupling between two qubits.
    Coupling(usize, usize),
}

impl ControlKind {
    /// Label in the style of the paper's pulse plots (µxi, µix, µxx+yy, …).
    pub fn label(&self) -> String {
        match self {
            ControlKind::DriveX(q) => format!("mu_x[{q}]"),
            ControlKind::DriveY(q) => format!("mu_y[{q}]"),
            ControlKind::Coupling(a, b) => format!("mu_xx+yy[{a},{b}]"),
        }
    }
}

/// A small transmon system: qubits, coupling edges, drift and control
/// operators, and per-control amplitude limits.
#[derive(Debug, Clone)]
pub struct TransmonSystem {
    n_qubits: usize,
    controls: Vec<(ControlKind, CMatrix, f64)>,
    drift: CMatrix,
    limits: ControlLimits,
}

impl TransmonSystem {
    /// Builds the system for `n_qubits` qubits coupled along `edges`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or larger than 10 (the scalability limit of
    /// the optimal-control unit, §2.5), or if an edge references an unknown
    /// qubit.
    pub fn new(n_qubits: usize, edges: &[(usize, usize)], limits: ControlLimits) -> Self {
        assert!(n_qubits >= 1, "need at least one qubit");
        assert!(
            n_qubits <= 10,
            "optimal control is limited to 10 qubits (got {n_qubits})"
        );
        let dim = 1usize << n_qubits;
        let mut controls = Vec::new();
        for q in 0..n_qubits {
            let sx = pauli::sigma_x().scale_re(0.5).embed(n_qubits, &[q]);
            let sy = pauli::sigma_y().scale_re(0.5).embed(n_qubits, &[q]);
            controls.push((ControlKind::DriveX(q), sx, limits.one_qubit_max_ghz));
            controls.push((ControlKind::DriveY(q), sy, limits.one_qubit_max_ghz));
        }
        for &(a, b) in edges {
            assert!(a < n_qubits && b < n_qubits && a != b, "bad coupling edge");
            let xx = pauli::sigma_x().kron(&pauli::sigma_x());
            let yy = pauli::sigma_y().kron(&pauli::sigma_y());
            let coupling = (&xx + &yy).scale_re(0.5).embed(n_qubits, &[a, b]);
            controls.push((
                ControlKind::Coupling(a, b),
                coupling,
                limits.two_qubit_max_ghz,
            ));
        }
        Self {
            n_qubits,
            controls,
            drift: CMatrix::zeros(dim, dim),
            limits,
        }
    }

    /// System for a fully connected register of `n_qubits` (every pair
    /// coupled). Convenient for aggregated instructions whose qubits are all
    /// mutually adjacent after mapping.
    pub fn fully_coupled(n_qubits: usize, limits: ControlLimits) -> Self {
        let mut edges = Vec::new();
        for a in 0..n_qubits {
            for b in (a + 1)..n_qubits {
                edges.push((a, b));
            }
        }
        Self::new(n_qubits, &edges, limits)
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// Number of control fields.
    pub fn n_controls(&self) -> usize {
        self.controls.len()
    }

    /// Drift Hamiltonian (zero in the rotating frame used here).
    pub fn drift(&self) -> &CMatrix {
        &self.drift
    }

    /// Control operators with their identities and amplitude limits.
    pub fn controls(&self) -> &[(ControlKind, CMatrix, f64)] {
        &self.controls
    }

    /// Amplitude limit of control `k` in GHz.
    pub fn limit(&self, k: usize) -> f64 {
        self.controls[k].2
    }

    /// The control limits the system was built with.
    pub fn control_limits(&self) -> &ControlLimits {
        &self.limits
    }

    /// Total Hamiltonian for a vector of control amplitudes (GHz).
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != n_controls()`.
    pub fn hamiltonian(&self, amplitudes: &[f64]) -> CMatrix {
        assert_eq!(amplitudes.len(), self.controls.len(), "amplitude count");
        let mut h = self.drift.clone();
        for (u, (_, op, _)) in amplitudes.iter().zip(self.controls.iter()) {
            if *u != 0.0 {
                h += &op.scale_re(*u);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_counts() {
        let sys = TransmonSystem::new(3, &[(0, 1), (1, 2)], ControlLimits::asplos19());
        // 2 drives per qubit + 1 coupling per edge.
        assert_eq!(sys.n_controls(), 3 * 2 + 2);
        assert_eq!(sys.dim(), 8);
        assert_eq!(sys.n_qubits(), 3);
    }

    #[test]
    fn limits_match_paper_settings() {
        let sys = TransmonSystem::new(2, &[(0, 1)], ControlLimits::asplos19());
        let one_q_limits: Vec<f64> = sys
            .controls()
            .iter()
            .filter(|(k, _, _)| matches!(k, ControlKind::DriveX(_) | ControlKind::DriveY(_)))
            .map(|(_, _, l)| *l)
            .collect();
        let coupling_limits: Vec<f64> = sys
            .controls()
            .iter()
            .filter(|(k, _, _)| matches!(k, ControlKind::Coupling(_, _)))
            .map(|(_, _, l)| *l)
            .collect();
        assert!(one_q_limits.iter().all(|&l| (l - 0.1).abs() < 1e-12));
        assert!(coupling_limits.iter().all(|&l| (l - 0.02).abs() < 1e-12));
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let sys = TransmonSystem::fully_coupled(2, ControlLimits::asplos19());
        let amps: Vec<f64> = (0..sys.n_controls())
            .map(|k| 0.01 * (k as f64 + 1.0))
            .collect();
        let h = sys.hamiltonian(&amps);
        assert!(h.is_hermitian(1e-12));
    }

    #[test]
    fn control_labels_are_unique() {
        let sys = TransmonSystem::fully_coupled(3, ControlLimits::asplos19());
        let labels: std::collections::HashSet<String> =
            sys.controls().iter().map(|(k, _, _)| k.label()).collect();
        assert_eq!(labels.len(), sys.n_controls());
    }

    #[test]
    #[should_panic]
    fn too_many_qubits_rejected() {
        TransmonSystem::new(11, &[], ControlLimits::asplos19());
    }
}
