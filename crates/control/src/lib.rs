//! # qcc-control
//!
//! The quantum optimal-control unit of the aggregated-instruction compiler
//! (§2.5, §3.5 of the paper): a GRAPE optimizer with analytic gradients and
//! Adam updates over a transmon system with per-qubit x/y drives and per-edge
//! XY coupling, amplitude limits matching the paper's §5.1 settings, a
//! minimal-pulse-time search, and the pulse-verification procedure of §3.6.
//!
//! The companion [`GrapeLatencyModel`] plugs the unit into the compiler's
//! aggregation loop through the [`qcc_hw::LatencyModel`] trait; instructions
//! wider than its limit use the analytic calibrated model instead, which is
//! how the workspace scales the paper's approach to 60-qubit benchmarks.
//!
//! ## Example
//!
//! ```no_run
//! use qcc_control::{GrapeConfig, optimize_pulse, TransmonSystem};
//! use qcc_hw::ControlLimits;
//! use qcc_math::pauli;
//!
//! let system = TransmonSystem::new(1, &[], ControlLimits::asplos19());
//! let result = optimize_pulse(&system, &pauli::hadamard(), 10.0, GrapeConfig::default());
//! assert!(result.fidelity > 0.999);
//! ```

#![warn(missing_docs)]

pub mod grape;
pub mod hamiltonian;
pub mod latency;
pub mod pulse;

pub use grape::{optimize_pulse, GrapeConfig, GrapeOptimizer, GrapeResult};
pub use hamiltonian::{ControlKind, TransmonSystem};
pub use latency::{verify_pulse, GrapeLatencyModel, PulseVerification, GRAPE_SNAPSHOT_KIND};
pub use pulse::PulseProgram;
