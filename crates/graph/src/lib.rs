//! # qcc-graph
//!
//! Graph algorithms backing the aggregated-instruction quantum compiler:
//!
//! * [`graph::Graph`] — a small undirected weighted graph with BFS utilities,
//!   used for qubit-interaction graphs, scheduling conflict graphs and device
//!   topologies.
//! * [`matching`] — maximal matchings for the commutativity-aware logical
//!   scheduler (Fig. 7 / Algorithm 1 of the paper).
//! * [`partition`] — recursive bisection with Kernighan–Lin refinement, the
//!   in-tree substitute for the METIS partitioner the paper uses for qubit
//!   placement (§3.4.1).
//! * [`generators`] — problem-instance graphs for the benchmark suite
//!   (line, grid, random 4-regular, cluster graphs).
//!
//! ## Example
//!
//! ```
//! use qcc_graph::{generators, partition};
//! let g = generators::grid_graph(3, 3);
//! let order = partition::recursive_bisection_order(&g);
//! assert_eq!(order.len(), 9);
//! ```

#![warn(missing_docs)]

pub mod generators;
pub mod graph;
pub mod matching;
pub mod partition;

pub use graph::Graph;
pub use matching::{greedy_maximal_matching, improved_matching, is_maximal_matching, Matching};
pub use partition::{bisect, k_way_partition, recursive_bisection_order, Bisection};
