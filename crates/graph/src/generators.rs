//! Graph generators for the benchmark suite's problem instances (Table 3):
//! line graphs, grids, random d-regular graphs, and cluster graphs with tunable
//! spatial locality.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Path (line) graph on `n` vertices: `0 - 1 - 2 - … - (n-1)`.
pub fn line_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(i, i + 1, 1.0);
    }
    g
}

/// Cycle graph on `n` vertices.
pub fn cycle_graph(n: usize) -> Graph {
    let mut g = line_graph(n);
    if n > 2 {
        g.add_edge(n - 1, 0, 1.0);
    }
    g
}

/// Rectangular grid graph with `rows × cols` vertices, indexed row-major.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1, 1.0);
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols, 1.0);
            }
        }
    }
    g
}

/// Complete graph on `n` vertices.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b, 1.0);
        }
    }
    g
}

/// Random `d`-regular graph via the pairing (configuration) model with
/// rejection of self-loops and duplicate edges.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular_graph<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "n*d must be even for a d-regular graph"
    );
    assert!(d < n, "degree must be below vertex count");
    'attempt: for _ in 0..1000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut g = Graph::new(n);
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || g.has_edge(a, b) {
                continue 'attempt;
            }
            g.add_edge(a, b, 1.0);
        }
        return g;
    }
    // Fall back to a deterministic circulant d-regular graph when rejection
    // sampling keeps failing (tiny n); still d-regular for even d.
    let mut g = Graph::new(n);
    for v in 0..n {
        for k in 1..=(d / 2) {
            g.add_edge(v, (v + k) % n, 1.0);
        }
    }
    if !d.is_multiple_of(2) && n.is_multiple_of(2) {
        for v in 0..n / 2 {
            g.add_edge(v, v + n / 2, 1.0);
        }
    }
    g
}

/// Cluster graph: `clusters` dense communities of `cluster_size` vertices each
/// (intra-cluster edge probability `p_in`), with `inter_edges` random edges
/// between distinct clusters. Models the low-spatial-locality MAXCUT instances
/// of the paper's benchmark suite.
pub fn cluster_graph<R: Rng + ?Sized>(
    rng: &mut R,
    clusters: usize,
    cluster_size: usize,
    p_in: f64,
    inter_edges: usize,
) -> Graph {
    let n = clusters * cluster_size;
    let mut g = Graph::new(n);
    for c in 0..clusters {
        let base = c * cluster_size;
        for a in 0..cluster_size {
            for b in (a + 1)..cluster_size {
                if rng.gen_bool(p_in.clamp(0.0, 1.0)) {
                    g.add_edge(base + a, base + b, 1.0);
                }
            }
        }
        // Guarantee each cluster is connected by threading a path through it.
        for a in 0..cluster_size.saturating_sub(1) {
            if !g.has_edge(base + a, base + a + 1) {
                g.add_edge(base + a, base + a + 1, 1.0);
            }
        }
    }
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < inter_edges && guard < inter_edges * 50 + 100 {
        guard += 1;
        let ca = rng.gen_range(0..clusters);
        let cb = rng.gen_range(0..clusters);
        if ca == cb {
            continue;
        }
        let a = ca * cluster_size + rng.gen_range(0..cluster_size);
        let b = cb * cluster_size + rng.gen_range(0..cluster_size);
        if !g.has_edge(a, b) {
            g.add_edge(a, b, 1.0);
            added += 1;
        }
    }
    g
}

/// Erdős–Rényi random graph `G(n, p)`.
pub fn erdos_renyi<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(a, b, 1.0);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_and_cycle_counts() {
        let l = line_graph(20);
        assert_eq!(l.len(), 20);
        assert_eq!(l.edge_count(), 19);
        assert!(l.is_connected());
        let c = cycle_graph(20);
        assert_eq!(c.edge_count(), 20);
        assert_eq!(c.degree(0), 2);
    }

    #[test]
    fn grid_structure() {
        let g = grid_graph(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(g.is_connected());
        // Corner has degree 2, interior degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.degree(3), 5);
    }

    #[test]
    fn random_regular_graph_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular_graph(&mut rng, 30, 4);
        assert_eq!(g.len(), 30);
        for v in 0..30 {
            assert_eq!(g.degree(v), 4, "vertex {v} has wrong degree");
        }
    }

    #[test]
    fn cluster_graph_has_clusters_and_bridges() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = cluster_graph(&mut rng, 5, 6, 0.8, 6);
        assert_eq!(g.len(), 30);
        // At least the connecting paths threaded through each cluster.
        assert!(g.edge_count() > 5 * 5);
        // Bridges exist: at least one edge between clusters.
        let has_inter = g.edges().iter().any(|(a, b, _)| a / 6 != b / 6);
        assert!(has_inter);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = erdos_renyi(&mut rng, 10, 0.0);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(&mut rng, 10, 1.0);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn generators_are_reproducible_with_seed() {
        let a = random_regular_graph(&mut StdRng::seed_from_u64(9), 20, 4);
        let b = random_regular_graph(&mut StdRng::seed_from_u64(9), 20, 4);
        assert_eq!(a.edges(), b.edges());
    }
}
