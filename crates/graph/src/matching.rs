//! Matchings on conflict graphs.
//!
//! The commutativity-aware logical scheduler (CLS, Algorithm 1 of the paper)
//! repeatedly builds a *computational graph* whose vertices are qubits and
//! whose edges are candidate gates, then schedules a maximal set of
//! non-conflicting gates — a maximal matching (Fig. 7). Single-qubit gates are
//! self-loops and never conflict with each other, so they are handled by the
//! caller.

use crate::graph::Graph;

/// A matching: a set of edges, no two of which share a vertex.
pub type Matching = Vec<(usize, usize)>;

/// Greedy maximal matching.
///
/// Edges are considered in order of decreasing weight (ties broken by vertex
/// index), so heavier gates — e.g. longer-latency instructions that should
/// start as early as possible — are matched first. The result is maximal: no
/// remaining edge can be added.
pub fn greedy_maximal_matching(g: &Graph) -> Matching {
    let mut edges = g.edges();
    edges.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut used = vec![false; g.len()];
    let mut matching = Vec::new();
    for (a, b, _) in edges {
        if a == b {
            continue; // self-loops (single-qubit gates) are not part of the matching
        }
        if !used[a] && !used[b] {
            used[a] = true;
            used[b] = true;
            matching.push((a, b));
        }
    }
    matching
}

/// Maximal matching improved by augmenting-path search.
///
/// Starts from the greedy matching and repeatedly searches for augmenting
/// paths of length three (the common case in sparse conflict graphs), which is
/// enough to guarantee a matching at least ¾ the size of a maximum matching
/// and in practice is optimal on the interaction graphs produced by the
/// scheduler.
pub fn improved_matching(g: &Graph) -> Matching {
    let mut matching = greedy_maximal_matching(g);
    loop {
        let mut mate = vec![usize::MAX; g.len()];
        for &(a, b) in &matching {
            mate[a] = b;
            mate[b] = a;
        }
        let mut improved = false;
        // Look for an augmenting path u - a - b - v where (a, b) is matched and
        // u, v are free.
        'outer: for (idx, &(a, b)) in matching.iter().enumerate() {
            let free_nbr = |x: usize, exclude: usize| {
                g.neighbors(x)
                    .iter()
                    .map(|&(v, _)| v)
                    .find(|&v| v != exclude && v != x && mate[v] == usize::MAX)
            };
            if let Some(u) = free_nbr(a, b) {
                if let Some(v) = free_nbr(b, a) {
                    if u != v {
                        matching.swap_remove(idx);
                        matching.push((u, a));
                        matching.push((b, v));
                        improved = true;
                        break 'outer;
                    }
                }
            }
        }
        if !improved {
            return matching;
        }
    }
}

/// Checks that `matching` is a valid matching of `g` (edges exist, vertex-disjoint).
pub fn is_valid_matching(g: &Graph, matching: &[(usize, usize)]) -> bool {
    let mut used = vec![false; g.len()];
    for &(a, b) in matching {
        if a == b || !g.has_edge(a, b) || used[a] || used[b] {
            return false;
        }
        used[a] = true;
        used[b] = true;
    }
    true
}

/// Checks that `matching` is *maximal*: no edge of `g` can still be added.
pub fn is_maximal_matching(g: &Graph, matching: &[(usize, usize)]) -> bool {
    if !is_valid_matching(g, matching) {
        return false;
    }
    let mut used = vec![false; g.len()];
    for &(a, b) in matching {
        used[a] = true;
        used[b] = true;
    }
    for (a, b, _) in g.edges() {
        if a != b && !used[a] && !used[b] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The six-qubit computational graph of Fig. 7 (a path-like conflict graph).
    fn fig7_like_graph() -> Graph {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 5, 1.0);
        g
    }

    #[test]
    fn greedy_matching_is_valid_and_maximal() {
        let g = fig7_like_graph();
        let m = greedy_maximal_matching(&g);
        assert!(is_valid_matching(&g, &m));
        assert!(is_maximal_matching(&g, &m));
        assert!(m.len() >= 2);
    }

    #[test]
    fn improved_matching_on_path_is_maximum() {
        // A 6-vertex path has a maximum matching of size 3.
        let g = fig7_like_graph();
        let m = improved_matching(&g);
        assert!(is_valid_matching(&g, &m));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn star_graph_matches_single_edge() {
        let mut g = Graph::new(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf, 1.0);
        }
        let m = improved_matching(&g);
        assert_eq!(m.len(), 1);
        assert!(is_maximal_matching(&g, &m));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(0, 0, 1.0);
        g.add_edge(1, 2, 1.0);
        let m = greedy_maximal_matching(&g);
        assert_eq!(m, vec![(1, 2)]);
    }

    #[test]
    fn heavier_edges_matched_first() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 10.0);
        g.add_edge(2, 3, 1.0);
        let m = greedy_maximal_matching(&g);
        assert!(m.contains(&(1, 2)));
        assert_eq!(m.len(), 1);
        // The improved matching should still find the two-edge alternative.
        let m2 = improved_matching(&g);
        assert_eq!(m2.len(), 2);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::new(0);
        assert!(greedy_maximal_matching(&g).is_empty());
        let g2 = Graph::new(4);
        assert!(improved_matching(&g2).is_empty());
        assert!(is_maximal_matching(&g2, &[]));
    }
}
