//! Graph partitioning: recursive bisection with Kernighan–Lin refinement.
//!
//! This module substitutes for the METIS library used by the paper's backend
//! (§3.4.1): the qubit-interaction graph is recursively bisected along cuts
//! with few crossing edges, and the recursion ordering yields a linear layout
//! that places frequently-interacting qubits close together.

use crate::graph::Graph;

/// Result of a single bisection: vertex sets `left` and `right` plus the total
/// weight of edges crossing the cut.
#[derive(Debug, Clone, PartialEq)]
pub struct Bisection {
    /// Vertices on the left side of the cut.
    pub left: Vec<usize>,
    /// Vertices on the right side of the cut.
    pub right: Vec<usize>,
    /// Total weight of cut edges.
    pub cut_weight: f64,
}

/// Computes the weight of edges crossing a given two-way partition.
pub fn cut_weight(g: &Graph, in_left: &[bool]) -> f64 {
    g.edges()
        .iter()
        .filter(|(a, b, _)| a != b && in_left[*a] != in_left[*b])
        .map(|(_, _, w)| *w)
        .sum()
}

/// Bisects the graph into two halves of (near) equal size, minimizing the cut
/// weight heuristically: BFS-grown initial halves followed by Kernighan–Lin
/// style refinement passes.
pub fn bisect(g: &Graph) -> Bisection {
    let n = g.len();
    if n == 0 {
        return Bisection {
            left: Vec::new(),
            right: Vec::new(),
            cut_weight: 0.0,
        };
    }
    let target_left = n / 2 + n % 2;

    // Initial split: grow a BFS region from the highest-weighted-degree vertex.
    let seed = (0..n)
        .max_by(|&a, &b| {
            g.weighted_degree(a)
                .partial_cmp(&g.weighted_degree(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);
    let mut in_left = vec![false; n];
    let mut count_left = 0usize;
    let mut frontier = std::collections::VecDeque::new();
    let mut visited = vec![false; n];
    frontier.push_back(seed);
    visited[seed] = true;
    while count_left < target_left {
        let u = match frontier.pop_front() {
            Some(u) => u,
            None => {
                // Disconnected remainder: pick any unvisited vertex.
                match (0..n).find(|&v| !visited[v]) {
                    Some(v) => {
                        visited[v] = true;
                        v
                    }
                    None => break,
                }
            }
        };
        in_left[u] = true;
        count_left += 1;
        // Prefer neighbors with the strongest connection into the left side.
        let mut nbrs: Vec<usize> = g
            .neighbors(u)
            .iter()
            .map(|&(v, _)| v)
            .filter(|&v| !visited[v])
            .collect();
        nbrs.sort_by(|&a, &b| {
            let ga = gain_into_left(g, a, &in_left);
            let gb = gain_into_left(g, b, &in_left);
            gb.partial_cmp(&ga).unwrap_or(std::cmp::Ordering::Equal)
        });
        for v in nbrs {
            if !visited[v] {
                visited[v] = true;
                frontier.push_back(v);
            }
        }
    }

    // Kernighan–Lin refinement: repeatedly swap the pair of vertices (one per
    // side) with the best combined gain until no improving swap exists.
    kl_refine(g, &mut in_left);

    let left: Vec<usize> = (0..n).filter(|&v| in_left[v]).collect();
    let right: Vec<usize> = (0..n).filter(|&v| !in_left[v]).collect();
    let cw = cut_weight(g, &in_left);
    Bisection {
        left,
        right,
        cut_weight: cw,
    }
}

fn gain_into_left(g: &Graph, v: usize, in_left: &[bool]) -> f64 {
    g.neighbors(v)
        .iter()
        .map(|&(u, w)| if in_left[u] { w } else { 0.0 })
        .sum()
}

/// One pass of Kernighan–Lin style pairwise swaps; repeated until convergence
/// (bounded by the number of vertices to stay `O(n³)` in the worst case).
fn kl_refine(g: &Graph, in_left: &mut [bool]) {
    let n = g.len();
    for _ in 0..n {
        let mut best_gain = 1e-12;
        let mut best_pair = None;
        // External minus internal connection cost for each vertex.
        let d: Vec<f64> = (0..n)
            .map(|v| {
                let mut ext = 0.0;
                let mut int = 0.0;
                for &(u, w) in g.neighbors(v) {
                    if u == v {
                        continue;
                    }
                    if in_left[u] == in_left[v] {
                        int += w;
                    } else {
                        ext += w;
                    }
                }
                ext - int
            })
            .collect();
        for a in 0..n {
            if !in_left[a] {
                continue;
            }
            for b in 0..n {
                if in_left[b] {
                    continue;
                }
                let w_ab = g.edge_weight(a, b).unwrap_or(0.0);
                let gain = d[a] + d[b] - 2.0 * w_ab;
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((a, b));
                }
            }
        }
        match best_pair {
            Some((a, b)) => {
                in_left[a] = false;
                in_left[b] = true;
            }
            None => break,
        }
    }
}

/// Recursively bisects the graph and returns a linear ordering of the vertices
/// in which strongly-interacting vertices end up close together.
///
/// This is the ordering the qubit mapper uses to assign program qubits to a
/// line or to the row-major order of a grid.
pub fn recursive_bisection_order(g: &Graph) -> Vec<usize> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let vertices: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    recurse(g, &vertices, &mut order);
    order
}

fn recurse(original: &Graph, vertices: &[usize], order: &mut Vec<usize>) {
    if vertices.len() <= 2 {
        order.extend_from_slice(vertices);
        return;
    }
    let (sub, map) = original.induced_subgraph(vertices);
    let bis = bisect(&sub);
    let left: Vec<usize> = bis.left.iter().map(|&v| map[v]).collect();
    let right: Vec<usize> = bis.right.iter().map(|&v| map[v]).collect();
    if left.is_empty() || right.is_empty() {
        // Degenerate split (e.g. edgeless graph); keep input order.
        order.extend_from_slice(vertices);
        return;
    }
    recurse(original, &left, order);
    recurse(original, &right, order);
}

/// Partitions the graph into `k` roughly equal parts by recursive bisection.
///
/// Total by construction — callers pass user-supplied `k` straight through:
/// `k == 0` yields no parts (an empty vector, never a panic), `k == 1` yields
/// one part holding every vertex, and `k` larger than the vertex count yields
/// `k` parts of which the trailing ones are empty. Empty and disconnected
/// graphs partition like any other (the bisection order covers every vertex,
/// connected or not). Every vertex appears in exactly one part.
pub fn k_way_partition(g: &Graph, k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return Vec::new();
    }
    let order = recursive_bisection_order(g);
    let n = order.len();
    let mut parts = vec![Vec::new(); k];
    for (i, v) in order.into_iter().enumerate() {
        // Consecutive blocks of the bisection order become the parts; this keeps
        // tightly coupled vertices in the same part.
        let part = (i * k) / n.max(1);
        parts[part.min(k - 1)].push(v);
    }
    parts
}

/// Total weight of edges whose endpoints land in different parts of a k-way
/// partition (self-loops never count). Vertices missing from every part are
/// treated as isolated: edges touching them are not counted.
pub fn k_way_cut_weight(g: &Graph, parts: &[Vec<usize>]) -> f64 {
    let mut part_of = vec![usize::MAX; g.len()];
    for (p, part) in parts.iter().enumerate() {
        for &v in part {
            part_of[v] = p;
        }
    }
    g.edges()
        .iter()
        .filter(|(a, b, _)| {
            a != b
                && part_of[*a] != usize::MAX
                && part_of[*b] != usize::MAX
                && part_of[*a] != part_of[*b]
        })
        .map(|(_, _, w)| *w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single edge — the obvious cut is that edge.
    fn two_cliques() -> Graph {
        let mut g = Graph::new(8);
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(a, b, 1.0);
                g.add_edge(a + 4, b + 4, 1.0);
            }
        }
        g.add_edge(3, 4, 1.0);
        g
    }

    #[test]
    fn bisect_two_cliques_finds_bridge_cut() {
        let g = two_cliques();
        let bis = bisect(&g);
        assert_eq!(bis.left.len() + bis.right.len(), 8);
        assert_eq!(bis.left.len(), 4);
        assert!(
            (bis.cut_weight - 1.0).abs() < 1e-9,
            "cut = {}",
            bis.cut_weight
        );
        // Each clique ends up wholly on one side.
        let left_set: std::collections::HashSet<_> = bis.left.iter().copied().collect();
        assert!(left_set == [0, 1, 2, 3].into() || left_set == [4, 5, 6, 7].into());
    }

    #[test]
    fn bisection_balanced_on_path() {
        let mut g = Graph::new(10);
        for i in 0..9 {
            g.add_edge(i, i + 1, 1.0);
        }
        let bis = bisect(&g);
        assert_eq!(bis.left.len(), 5);
        assert_eq!(bis.right.len(), 5);
        assert!(bis.cut_weight <= 1.0 + 1e-9);
    }

    #[test]
    fn recursive_order_keeps_cliques_contiguous() {
        let g = two_cliques();
        let order = recursive_bisection_order(&g);
        assert_eq!(order.len(), 8);
        let pos: Vec<usize> = (0..8)
            .map(|v| order.iter().position(|&x| x == v).unwrap())
            .collect();
        // All of clique {0..3} should occupy positions {0..3} or {4..7}.
        let first_clique_max = pos[0..4].iter().max().unwrap();
        let first_clique_min = pos[0..4].iter().min().unwrap();
        assert_eq!(first_clique_max - first_clique_min, 3);
    }

    #[test]
    fn k_way_partition_sizes() {
        let g = two_cliques();
        let parts = k_way_partition(&g, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 8);
        for p in &parts {
            assert!(p.len() == 2, "unbalanced part: {:?}", parts);
        }
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g = Graph::new(0);
        assert!(recursive_bisection_order(&g).is_empty());
        let g1 = Graph::new(1);
        assert_eq!(recursive_bisection_order(&g1), vec![0]);
        let bis = bisect(&g1);
        assert_eq!(bis.left.len() + bis.right.len(), 1);
    }

    #[test]
    fn cut_weight_helper() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 2.0);
        g.add_edge(2, 3, 3.0);
        g.add_edge(1, 2, 5.0);
        let in_left = vec![true, true, false, false];
        assert!((cut_weight(&g, &in_left) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph_partitions_without_panic() {
        let g = Graph::new(7);
        let order = recursive_bisection_order(&g);
        assert_eq!(order.len(), 7);
        let parts = k_way_partition(&g, 3);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 7);
    }

    #[test]
    fn k_zero_yields_no_parts_instead_of_panicking() {
        assert!(k_way_partition(&two_cliques(), 0).is_empty());
        assert!(k_way_partition(&Graph::new(0), 0).is_empty());
    }

    #[test]
    fn k_one_is_the_whole_vertex_set() {
        let parts = k_way_partition(&two_cliques(), 1);
        assert_eq!(parts.len(), 1);
        let mut all = parts[0].clone();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn k_larger_than_vertex_count_pads_with_empty_parts() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let parts = k_way_partition(&g, 7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 3);
        // Every vertex appears exactly once.
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        assert!(parts.iter().filter(|p| p.is_empty()).count() >= 4);
    }

    #[test]
    fn empty_graph_partitions_into_empty_parts() {
        let parts = k_way_partition(&Graph::new(0), 4);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn disconnected_graph_covers_every_component() {
        // Two disjoint triangles plus two isolated vertices.
        let mut g = Graph::new(8);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 1.0);
        }
        for k in 1..=5 {
            let parts = k_way_partition(&g, k);
            let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..8).collect::<Vec<_>>(), "k={k}");
        }
    }

    #[test]
    fn k_way_cut_weight_counts_only_crossing_edges() {
        let g = two_cliques();
        // The natural 2-way split cuts only the bridge.
        let parts = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        assert!((k_way_cut_weight(&g, &parts) - 1.0).abs() < 1e-9);
        // One part: nothing crosses.
        let one = vec![(0..8).collect::<Vec<_>>()];
        assert_eq!(k_way_cut_weight(&g, &one), 0.0);
        // Splitting a clique in half cuts its 2x2 internal edges plus the bridge.
        let skew = vec![vec![0, 1, 4, 5], vec![2, 3, 6, 7]];
        assert!(k_way_cut_weight(&g, &skew) > 1.0);
        // Empty partition list: every vertex unassigned, nothing counted.
        assert_eq!(k_way_cut_weight(&g, &[]), 0.0);
    }
}
