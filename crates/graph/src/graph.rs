//! A small undirected weighted graph used for qubit-interaction analysis,
//! scheduling conflict graphs, and device topologies.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An undirected graph with `f64` edge weights, stored as adjacency lists.
///
/// Vertices are dense indices `0..n`. Parallel edges are merged by adding their
/// weights; self-loops are allowed (they appear once in the adjacency list).
///
/// # Examples
///
/// ```
/// use qcc_graph::Graph;
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 2.0);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<(usize, f64)>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds an undirected edge; merging weights if the edge already exists.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize, w: f64) {
        assert!(a < self.n && b < self.n, "edge endpoint out of range");
        if let Some(entry) = self.adj[a].iter_mut().find(|(v, _)| *v == b) {
            entry.1 += w;
            if a != b {
                if let Some(rev) = self.adj[b].iter_mut().find(|(v, _)| *v == a) {
                    rev.1 += w;
                }
            }
            return;
        }
        self.adj[a].push((b, w));
        if a != b {
            self.adj[b].push((a, w));
        }
        self.edge_count += 1;
    }

    /// Adds a vertex and returns its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.n += 1;
        self.n - 1
    }

    /// Returns the weight of edge `(a, b)` if present.
    pub fn edge_weight(&self, a: usize, b: usize) -> Option<f64> {
        self.adj
            .get(a)?
            .iter()
            .find(|(v, _)| *v == b)
            .map(|(_, w)| *w)
    }

    /// `true` when an edge `(a, b)` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edge_weight(a, b).is_some()
    }

    /// Neighbors of `v` with weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.adj[v]
    }

    /// Degree (number of incident edges) of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Sum of the weights of edges incident to `v`.
    pub fn weighted_degree(&self, v: usize) -> f64 {
        self.adj[v].iter().map(|(_, w)| *w).sum()
    }

    /// Iterates over every undirected edge once as `(a, b, w)` with `a <= b`.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for a in 0..self.n {
            for &(b, w) in &self.adj[a] {
                if a <= b {
                    out.push((a, b, w));
                }
            }
        }
        out
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges().iter().map(|(_, _, w)| *w).sum()
    }

    /// Breadth-first distances (in hops) from `src`; unreachable vertices get
    /// `usize::MAX`.
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &(v, _) in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Shortest path (fewest hops) from `src` to `dst`, inclusive of both
    /// endpoints. Returns `None` when unreachable.
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev = vec![usize::MAX; self.n];
        let mut visited = vec![false; self.n];
        let mut q = VecDeque::new();
        visited[src] = true;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &(v, _) in &self.adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    prev[v] = u;
                    if v == dst {
                        let mut path = vec![dst];
                        let mut cur = dst;
                        while prev[cur] != usize::MAX {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// Connected components, each a sorted list of vertices.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::new();
            seen[s] = true;
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                comp.push(u);
                for &(v, _) in &self.adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        q.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// `true` when the graph is connected (or has ≤ 1 vertex).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Builds the subgraph induced by `vertices`; returns the subgraph and the
    /// mapping from new indices to original vertex ids.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let mut index_of = vec![usize::MAX; self.n];
        for (new, &old) in vertices.iter().enumerate() {
            index_of[old] = new;
        }
        let mut sub = Graph::new(vertices.len());
        for &old in vertices {
            for &(nbr, w) in &self.adj[old] {
                if index_of[nbr] != usize::MAX && old <= nbr {
                    sub.add_edge(index_of[old], index_of[nbr], w);
                }
            }
        }
        (sub, vertices.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1, 1.0);
        }
        g
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.5);
        g.add_edge(0, 1, 0.5); // merges
        g.add_edge(2, 3, 1.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), Some(2.0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(0), 1);
        assert!((g.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = path_graph(5);
        assert_eq!(g.shortest_path(0, 4).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.shortest_path(2, 2).unwrap(), vec![2]);
        let mut disconnected = path_graph(3);
        disconnected.add_vertex();
        assert!(disconnected.shortest_path(0, 3).is_none());
    }

    #[test]
    fn connected_components_detection() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![0, 1, 2]));
        assert!(comps.contains(&vec![3, 4]));
        assert!(comps.contains(&vec![5]));
        assert!(!g.is_connected());
        assert!(path_graph(4).is_connected());
    }

    #[test]
    fn induced_subgraph_remaps_vertices() {
        let mut g = Graph::new(5);
        g.add_edge(0, 2, 1.0);
        g.add_edge(2, 4, 2.0);
        g.add_edge(1, 3, 1.0);
        let (sub, map) = g.induced_subgraph(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(map, vec![0, 2, 4]);
        assert_eq!(sub.edge_weight(0, 1), Some(1.0));
        assert_eq!(sub.edge_weight(1, 2), Some(2.0));
    }

    #[test]
    fn weighted_degree_sums() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 2.5);
        assert!((g.weighted_degree(0) - 3.5).abs() < 1e-12);
    }
}
