//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use qcc_graph::{generators, matching, partition, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 0u64..10_000).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(&mut rng, n, 0.3)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Greedy and improved matchings are always valid and maximal.
    #[test]
    fn matchings_are_valid_and_maximal(g in arbitrary_graph()) {
        let m1 = matching::greedy_maximal_matching(&g);
        prop_assert!(matching::is_maximal_matching(&g, &m1));
        let m2 = matching::improved_matching(&g);
        prop_assert!(matching::is_maximal_matching(&g, &m2));
        prop_assert!(m2.len() >= m1.len().saturating_sub(0) || m2.len() >= m1.len());
    }

    /// The bisection covers every vertex exactly once and is balanced.
    #[test]
    fn bisection_is_a_partition(g in arbitrary_graph()) {
        let bis = partition::bisect(&g);
        let mut all: Vec<usize> = bis.left.iter().chain(bis.right.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..g.len()).collect::<Vec<_>>());
        let diff = (bis.left.len() as isize - bis.right.len() as isize).abs();
        prop_assert!(diff <= 1);
    }

    /// The recursive bisection order is a permutation of the vertices.
    #[test]
    fn recursive_order_is_permutation(g in arbitrary_graph()) {
        let mut order = partition::recursive_bisection_order(&g);
        order.sort_unstable();
        prop_assert_eq!(order, (0..g.len()).collect::<Vec<_>>());
    }

    /// BFS distances satisfy the triangle property along shortest paths.
    #[test]
    fn shortest_paths_are_consistent(g in arbitrary_graph()) {
        let d = g.bfs_distances(0);
        for (v, &dist) in d.iter().enumerate() {
            if dist != usize::MAX {
                if let Some(path) = g.shortest_path(0, v) {
                    prop_assert_eq!(path.len(), dist + 1);
                    prop_assert_eq!(path[0], 0);
                    prop_assert_eq!(*path.last().unwrap(), v);
                    for pair in path.windows(2) {
                        prop_assert!(g.has_edge(pair[0], pair[1]));
                    }
                }
            }
        }
    }

    /// k-way partitioning never loses or duplicates vertices.
    #[test]
    fn k_way_is_exhaustive(g in arbitrary_graph(), k in 1usize..5) {
        let parts = partition::k_way_partition(&g, k);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..g.len()).collect::<Vec<_>>());
    }
}
