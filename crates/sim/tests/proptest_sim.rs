//! Property tests: the state-vector simulator agrees with dense unitaries and
//! preserves norms.

use proptest::prelude::*;
use qcc_ir::{Circuit, Gate};
use qcc_sim::StateVector;

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0usize..7, 0..n, 0..n, -3.0f64..3.0), 1..max_len).prop_map(move |spec| {
        let mut c = Circuit::new(n);
        for (kind, a, b, theta) in spec {
            match kind {
                0 => {
                    c.push(Gate::H, &[a]);
                }
                1 => {
                    c.push(Gate::Rz(theta), &[a]);
                }
                2 => {
                    c.push(Gate::Rx(theta), &[a]);
                }
                3 if a != b => {
                    c.push(Gate::Cnot, &[a, b]);
                }
                4 if a != b => {
                    c.push(Gate::Rzz(theta), &[a, b]);
                }
                5 if a != b => {
                    c.push(Gate::ISwap, &[a, b]);
                }
                6 if a != b => {
                    c.push(Gate::Swap, &[a, b]);
                }
                _ => {
                    c.push(Gate::T, &[a]);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Evolving |0...0> through the simulator matches column 0 of the dense
    /// circuit unitary.
    #[test]
    fn simulator_matches_dense_unitary(c in arb_circuit(4, 14)) {
        let s = StateVector::zero(4).evolved(&c);
        let u = c.unitary();
        for (i, amp) in s.amplitudes().iter().enumerate() {
            prop_assert!(amp.approx_eq(u[(i, 0)], 1e-9));
        }
    }

    /// Unitary evolution preserves the norm.
    #[test]
    fn norm_is_preserved(c in arb_circuit(5, 20)) {
        let s = StateVector::zero(5).evolved(&c);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Applying a circuit and then its inverse returns to the initial state.
    #[test]
    fn inverse_restores_state(c in arb_circuit(4, 12)) {
        let mut full = c.clone();
        full.extend(&c.inverse());
        let s = StateVector::zero(4).evolved(&full);
        prop_assert!((s.probabilities()[0] - 1.0).abs() < 1e-8);
    }

    /// Basis states evolve to the matching unitary column.
    #[test]
    fn basis_states_select_columns(c in arb_circuit(3, 10), idx in 0usize..8) {
        let s = StateVector::basis(3, idx).evolved(&c);
        let u = c.unitary();
        for (i, amp) in s.amplitudes().iter().enumerate() {
            prop_assert!(amp.approx_eq(u[(i, idx)], 1e-9));
        }
    }
}
