//! # qcc-sim
//!
//! Verification backend for the aggregated-instruction compiler: a dense
//! state-vector simulator for circuits and a piecewise-constant Hamiltonian
//! propagator for control pulses. Together they play the role the QuTiP
//! simulator plays in the paper's toolflow (§3.6): every aggregated
//! instruction's pulse can be checked against the unitary of the gate
//! sub-circuit it replaces.
//!
//! ## Example
//!
//! ```
//! use qcc_ir::{Circuit, Gate};
//! use qcc_sim::StateVector;
//!
//! let mut circuit = Circuit::new(2);
//! circuit.push(Gate::H, &[0]);
//! circuit.push(Gate::Cnot, &[0, 1]);
//! let state = StateVector::zero(2).evolved(&circuit);
//! assert!((state.probabilities()[3] - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod evolution;
pub mod statevector;

pub use evolution::PiecewiseHamiltonian;
pub use statevector::StateVector;
