//! Dense state-vector simulation of quantum circuits.
//!
//! This plays the role of the QuTiP backend the paper uses for verification
//! (§3.6): it checks that circuits, aggregated instructions and optimized
//! pulses all implement the same transformation.

use qcc_ir::{Circuit, Instruction};
use qcc_math::{CMatrix, C64};

/// A pure quantum state of `n` qubits stored as a dense vector of `2^n`
/// amplitudes (big-endian: qubit 0 is the most significant bit of the index).
///
/// # Examples
///
/// ```
/// use qcc_sim::StateVector;
/// use qcc_ir::{Circuit, Gate};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H, &[0]);
/// bell.push(Gate::Cnot, &[0, 1]);
/// let state = StateVector::zero(2).evolved(&bell);
/// let probs = state.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12);
/// assert!((probs[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amplitudes: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits <= 24, "state vector too large");
        let mut amplitudes = vec![C64::zero(); 1usize << n_qubits];
        amplitudes[0] = C64::one();
        Self {
            n_qubits,
            amplitudes,
        }
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_qubits`.
    pub fn basis(n_qubits: usize, index: usize) -> Self {
        let mut s = Self::zero(n_qubits);
        assert!(index < s.amplitudes.len(), "basis index out of range");
        s.amplitudes[0] = C64::zero();
        s.amplitudes[index] = C64::one();
        s
    }

    /// Builds a state from raw amplitudes (normalizing them).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the vector has zero norm.
    pub fn from_amplitudes(amplitudes: Vec<C64>) -> Self {
        let len = amplitudes.len();
        assert!(
            len.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let n_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-300, "cannot normalize the zero vector");
        let amplitudes = amplitudes.into_iter().map(|a| a / norm).collect();
        Self {
            n_qubits,
            amplitudes,
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amplitudes
    }

    /// Measurement probabilities in the computational basis.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Squared norm (should always be ≈ 1).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Overlap `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "state size mismatch");
        self.amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies a `k`-qubit gate matrix to the given target qubits in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match the number of targets or
    /// a target is out of range.
    pub fn apply_matrix(&mut self, matrix: &CMatrix, targets: &[usize]) {
        let k = targets.len();
        assert_eq!(matrix.rows(), 1 << k, "matrix does not match target count");
        for t in targets {
            assert!(*t < self.n_qubits, "target {t} out of range");
        }
        let n = self.n_qubits;
        // Bit positions of the targets counted from the least-significant bit.
        let bits: Vec<usize> = targets.iter().map(|&q| n - 1 - q).collect();
        let dim = self.amplitudes.len();
        let mut scratch = vec![C64::zero(); 1 << k];
        let mut visited = vec![false; dim];
        for base in 0..dim {
            if visited[base] {
                continue;
            }
            // Only handle indices where all target bits are zero; the rest of
            // the orbit is generated from it.
            if bits.iter().any(|&b| (base >> b) & 1 == 1) {
                continue;
            }
            // Gather the 2^k amplitudes of this block.
            for (sub, slot) in scratch.iter_mut().enumerate().take(1usize << k) {
                let mut idx = base;
                for (pos, &b) in bits.iter().enumerate() {
                    // `pos` indexes the gate's qubit order: targets[0] is the
                    // most significant bit of the gate's local index.
                    if (sub >> (k - 1 - pos)) & 1 == 1 {
                        idx |= 1 << b;
                    }
                }
                *slot = self.amplitudes[idx];
                visited[idx] = true;
            }
            // Apply the matrix.
            for row in 0..(1usize << k) {
                let mut acc = C64::zero();
                for col in 0..(1usize << k) {
                    let m = matrix[(row, col)];
                    if m.re != 0.0 || m.im != 0.0 {
                        acc += m * scratch[col];
                    }
                }
                let mut idx = base;
                for (pos, &b) in bits.iter().enumerate() {
                    if (row >> (k - 1 - pos)) & 1 == 1 {
                        idx |= 1 << b;
                    }
                }
                self.amplitudes[idx] = acc;
            }
        }
    }

    /// Applies a single instruction.
    pub fn apply_instruction(&mut self, inst: &Instruction) {
        self.apply_matrix(&inst.gate.matrix(), &inst.qubits);
    }

    /// Applies a whole circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        for inst in circuit.instructions() {
            self.apply_instruction(inst);
        }
    }

    /// Returns a new state equal to this one evolved by `circuit`.
    pub fn evolved(&self, circuit: &Circuit) -> StateVector {
        let mut s = self.clone();
        s.apply_circuit(circuit);
        s
    }

    /// Expectation value of a diagonal observable given by its diagonal
    /// entries (e.g. an Ising energy).
    ///
    /// # Panics
    ///
    /// Panics if `diagonal.len()` does not match the state dimension.
    pub fn expectation_diagonal(&self, diagonal: &[f64]) -> f64 {
        assert_eq!(diagonal.len(), self.amplitudes.len(), "dimension mismatch");
        self.amplitudes
            .iter()
            .zip(diagonal.iter())
            .map(|(a, d)| a.norm_sqr() * d)
            .sum()
    }

    /// Probability that measuring qubit `q` yields `1`.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits);
        let bit = self.n_qubits - 1 - q;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| (i >> bit) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_ir::Gate;
    use qcc_math::pauli;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero(3);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-14);
        assert_eq!(s.probabilities()[0], 1.0);
    }

    #[test]
    fn x_flips_qubit() {
        let mut s = StateVector::zero(2);
        s.apply_matrix(&pauli::sigma_x(), &[1]);
        // |01> has index 1.
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-14);
        assert!((s.prob_one(1) - 1.0).abs() < 1e-14);
        assert!(s.prob_one(0) < 1e-14);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cnot, &[0, 1]);
        let s = StateVector::zero(2).evolved(&c);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!(p[1] < 1e-12 && p[2] < 1e-12);
    }

    #[test]
    fn ghz_state_on_four_qubits() {
        let mut c = Circuit::new(4);
        c.push(Gate::H, &[0]);
        for i in 0..3 {
            c.push(Gate::Cnot, &[i, i + 1]);
        }
        let s = StateVector::zero(4).evolved(&c);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[15] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn statevector_matches_dense_unitary() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Rz(0.7), &[1]);
        c.push(Gate::Cnot, &[0, 2]);
        c.push(Gate::Rzz(1.2), &[1, 2]);
        c.push(Gate::Swap, &[0, 1]);
        let via_sim = StateVector::zero(3).evolved(&c);
        let u = c.unitary();
        // Column 0 of U is the evolved |000>.
        for (i, amp) in via_sim.amplitudes().iter().enumerate() {
            assert!(amp.approx_eq(u[(i, 0)], 1e-11), "row {i}");
        }
    }

    #[test]
    fn apply_gate_with_reversed_targets() {
        // CNOT with control q1, target q0.
        let mut s = StateVector::basis(2, 0b01); // q0=0, q1=1
        s.apply_matrix(&pauli::cnot(), &[1, 0]);
        // Control (q1) is 1 so q0 flips: |11> = index 3.
        assert!((s.probabilities()[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let zero = StateVector::zero(1);
        let mut plus = StateVector::zero(1);
        plus.apply_matrix(&pauli::hadamard(), &[0]);
        assert!((zero.fidelity(&plus) - 0.5).abs() < 1e-12);
        assert!((plus.fidelity(&plus) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_diagonal_observable() {
        let mut c = Circuit::new(2);
        c.push(Gate::X, &[0]);
        let s = StateVector::zero(2).evolved(&c);
        // Observable Z0: diag over basis |q0 q1>: +1 when q0=0, -1 when q0=1.
        let diag = vec![1.0, 1.0, -1.0, -1.0];
        assert!((s.expectation_diagonal(&diag) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![
            C64::new(3.0, 0.0),
            C64::zero(),
            C64::zero(),
            C64::new(4.0, 0.0),
        ]);
        let p = s.probabilities();
        assert!((p[0] - 0.36).abs() < 1e-12);
        assert!((p[3] - 0.64).abs() < 1e-12);
    }

    #[test]
    fn norm_preserved_by_unitaries() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Ry(1.1), &[1]);
        c.push(Gate::ISwap, &[1, 2]);
        c.push(Gate::Rzz(0.5), &[0, 2]);
        let s = StateVector::zero(3).evolved(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }
}
