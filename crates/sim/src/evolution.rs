//! Time evolution under piecewise-constant Hamiltonians.
//!
//! The optimal-control unit produces pulse programs — sequences of control
//! amplitudes held constant over short time steps. This module turns such a
//! program (given the Hamiltonian terms it drives) into the exact propagator,
//! which is how pulses are verified against their target unitaries (§3.6).

use qcc_math::{expm, CMatrix, C64};

/// A time-dependent Hamiltonian of the form
/// `H(t) = H₀ + Σ_k u_k(t) H_k` with piecewise-constant controls `u_k`.
#[derive(Debug, Clone)]
pub struct PiecewiseHamiltonian {
    /// Drift term `H₀` (may be the zero matrix).
    pub drift: CMatrix,
    /// Control operators `H_k`.
    pub controls: Vec<CMatrix>,
}

impl PiecewiseHamiltonian {
    /// Creates a Hamiltonian model.
    ///
    /// # Panics
    ///
    /// Panics if the matrices are not square or have mismatched dimensions.
    pub fn new(drift: CMatrix, controls: Vec<CMatrix>) -> Self {
        assert!(drift.is_square(), "drift must be square");
        for c in &controls {
            assert!(c.is_square(), "control operator must be square");
            assert_eq!(c.rows(), drift.rows(), "control dimension mismatch");
        }
        Self { drift, controls }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.drift.rows()
    }

    /// Number of control fields.
    pub fn n_controls(&self) -> usize {
        self.controls.len()
    }

    /// The total Hamiltonian for one time step given the control amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != n_controls()`.
    pub fn at(&self, amplitudes: &[f64]) -> CMatrix {
        assert_eq!(
            amplitudes.len(),
            self.controls.len(),
            "amplitude count mismatch"
        );
        let mut h = self.drift.clone();
        for (u, hk) in amplitudes.iter().zip(self.controls.iter()) {
            if *u != 0.0 {
                h += &hk.scale_re(*u);
            }
        }
        h
    }

    /// Single-step propagator `exp(-i·2π·dt·H(u))`.
    ///
    /// The `2π` converts control amplitudes expressed in frequency units (GHz)
    /// and times in nanoseconds into phase.
    pub fn step_propagator(&self, amplitudes: &[f64], dt: f64) -> CMatrix {
        let h = self.at(amplitudes);
        expm::expm(&h.scale(C64::new(0.0, -2.0 * std::f64::consts::PI * dt)))
    }

    /// Full propagator of a pulse: `U = U_N … U_2 U_1` for the amplitude matrix
    /// `pulse[step][control]`.
    ///
    /// # Panics
    ///
    /// Panics if any step has the wrong number of amplitudes.
    pub fn propagate(&self, pulse: &[Vec<f64>], dt: f64) -> CMatrix {
        let mut u = CMatrix::identity(self.dim());
        for amps in pulse {
            let step = self.step_propagator(amps, dt);
            u = step.matmul(&u);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_math::{gate_fidelity, pauli};
    use std::f64::consts::PI;

    #[test]
    fn constant_x_drive_produces_rotation() {
        // Driving σx/2 with amplitude Ω for time t rotates by θ = 2π·Ω·t.
        let h =
            PiecewiseHamiltonian::new(CMatrix::zeros(2, 2), vec![pauli::sigma_x().scale_re(0.5)]);
        let omega = 0.1; // GHz
        let t_total = 2.5; // ns -> θ = 2π·0.25 = π/2
        let steps = 50;
        let dt = t_total / steps as f64;
        let pulse = vec![vec![omega]; steps];
        let u = h.propagate(&pulse, dt);
        let want = pauli::rx(2.0 * PI * omega * t_total);
        assert!(gate_fidelity(&u, &want) > 1.0 - 1e-9);
    }

    #[test]
    fn zero_pulse_is_identity() {
        let h = PiecewiseHamiltonian::new(
            CMatrix::zeros(4, 4),
            vec![pauli::sigma_x().kron(&CMatrix::identity(2))],
        );
        let pulse = vec![vec![0.0]; 10];
        assert!(h.propagate(&pulse, 1.0).is_identity(1e-12));
    }

    #[test]
    fn drift_alone_evolves() {
        // Drift = 0.25·Z ⇒ after t=1 ns the propagator is Rz(2π·0.5) up to phase.
        let h = PiecewiseHamiltonian::new(pauli::sigma_z().scale_re(0.25), vec![]);
        let u = h.propagate(&vec![vec![]; 4], 0.25);
        let want = pauli::rz(2.0 * PI * 0.5);
        assert!(gate_fidelity(&u, &want) > 1.0 - 1e-9);
    }

    #[test]
    fn xy_coupling_produces_iswap() {
        // H = u·(XX+YY)/2, with ∫u dt = 1/4 (in cycles) giving iSWAP.
        let xx = pauli::sigma_x().kron(&pauli::sigma_x());
        let yy = pauli::sigma_y().kron(&pauli::sigma_y());
        let coupling = (&xx + &yy).scale_re(0.5);
        let h = PiecewiseHamiltonian::new(CMatrix::zeros(4, 4), vec![coupling]);
        let u_max = 0.02; // GHz, the paper's two-qubit drive limit
        let t_total = 12.5; // ns ⇒ 2π·0.02·12.5 = π/2 rotation of the XY block
        let steps = 100;
        // A negative drive of the XY term generates iSWAP (a positive one
        // generates iSWAP†); either way the magnitude stays within the limit.
        let pulse = vec![vec![-u_max]; steps];
        let u = h.propagate(&pulse, t_total / steps as f64);
        let fid = gate_fidelity(&u, &pauli::iswap());
        assert!(fid > 1.0 - 1e-6, "fidelity {fid}");
    }

    #[test]
    fn propagator_is_unitary_for_random_pulse() {
        let h = PiecewiseHamiltonian::new(
            pauli::sigma_z().kron(&pauli::sigma_z()).scale_re(0.01),
            vec![
                pauli::sigma_x().kron(&CMatrix::identity(2)).scale_re(0.5),
                CMatrix::identity(2).kron(&pauli::sigma_x()).scale_re(0.5),
            ],
        );
        let pulse: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![0.05 * ((i % 5) as f64 - 2.0), 0.03 * ((i % 3) as f64)])
            .collect();
        let u = h.propagate(&pulse, 0.5);
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    #[should_panic]
    fn mismatched_amplitudes_panic() {
        let h = PiecewiseHamiltonian::new(CMatrix::zeros(2, 2), vec![pauli::sigma_x()]);
        h.at(&[0.1, 0.2]);
    }
}
