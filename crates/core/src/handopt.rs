//! Hand-optimization baseline (the "CLS + hand optimization" bars of Fig. 9).
//!
//! The paper compares against mechanically applying the known manual
//! optimizations for iSWAP-based superconducting architectures ([39, 48]):
//! cancelling adjacent self-inverse gate pairs, merging runs of Z-rotations,
//! and fusing a SWAP with an adjacent CNOT on the same pair (which a human
//! pulse designer implements with fewer native iSWAP pulses than the two gates
//! separately). These rewrites act on the instruction stream before
//! scheduling; the fused patterns are priced by the dedicated
//! [`hand_latency`] rule instead of the generic gate-based cost.

use crate::instr::{AggregateInstruction, InstructionOrigin};
use qcc_hw::{ControlLimits, LatencyModel};
use qcc_ir::{Gate, Instruction};
use std::f64::consts::{FRAC_PI_2, PI};

/// Applies the hand-optimization rewrites to a (flattened, single-gate)
/// instruction stream and returns the rewritten stream.
///
/// Rules applied until a fixed point (bounded by a few passes):
/// 1. adjacent self-inverse pairs on the same qubits cancel (CNOT·CNOT, H·H,
///    X·X, Z·Z, SWAP·SWAP, CZ·CZ);
/// 2. consecutive Rz/Phase rotations on the same qubit merge;
/// 3. a SWAP adjacent to a CNOT on the same qubit pair fuses into one
///    hand-optimized instruction.
pub fn rewrite(instrs: &[AggregateInstruction]) -> Vec<AggregateInstruction> {
    let mut current: Vec<AggregateInstruction> = instrs.to_vec();
    for _ in 0..6 {
        let (next, changed) = rewrite_pass(&current);
        current = next;
        if !changed {
            break;
        }
    }
    current
}

fn is_self_inverse(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::Cnot | Gate::Cz | Gate::Swap
    )
}

fn rewrite_pass(instrs: &[AggregateInstruction]) -> (Vec<AggregateInstruction>, bool) {
    let mut out: Vec<AggregateInstruction> = Vec::with_capacity(instrs.len());
    let mut consumed = vec![false; instrs.len()];
    let mut changed = false;
    for i in 0..instrs.len() {
        if consumed[i] {
            continue;
        }
        let a = &instrs[i];
        // Only rewrite plain single-gate instructions.
        if a.gate_count() != 1 {
            out.push(a.clone());
            consumed[i] = true;
            continue;
        }
        // Find the next instruction touching any of a's qubits.
        let mut partner = None;
        for (j, cand) in instrs.iter().enumerate().skip(i + 1) {
            if consumed[j] {
                continue;
            }
            if !a.shared_qubits(cand).is_empty() {
                partner = Some(j);
                break;
            }
        }
        let Some(j) = partner else {
            out.push(a.clone());
            consumed[i] = true;
            continue;
        };
        let b = &instrs[j];
        if b.gate_count() != 1 {
            out.push(a.clone());
            consumed[i] = true;
            continue;
        }
        let ga = &a.constituents[0];
        let gb = &b.constituents[0];
        // The pair must be adjacent on *all* qubits of both gates: no
        // instruction between them may touch any qubit of either.
        let blocked = instrs[(i + 1)..j].iter().enumerate().any(|(off, k)| {
            let idx = i + 1 + off;
            !consumed[idx]
                && k.qubits
                    .iter()
                    .any(|q| a.qubits.contains(q) || b.qubits.contains(q))
        });
        if blocked {
            out.push(a.clone());
            consumed[i] = true;
            continue;
        }

        // Rule 1: self-inverse pair cancellation.
        if ga.gate == gb.gate && ga.qubits == gb.qubits && is_self_inverse(&ga.gate) {
            consumed[i] = true;
            consumed[j] = true;
            changed = true;
            continue;
        }
        // Rule 2: merge Rz/Phase rotations on the same qubit.
        if let (Some(ta), Some(tb)) = (z_angle(&ga.gate), z_angle(&gb.gate)) {
            if ga.qubits == gb.qubits {
                consumed[i] = true;
                consumed[j] = true;
                changed = true;
                let total = ta + tb;
                if total.rem_euclid(2.0 * PI).abs() > 1e-12
                    && (total.rem_euclid(2.0 * PI) - 2.0 * PI).abs() > 1e-12
                {
                    out.push(AggregateInstruction::from_gate(Instruction::new(
                        Gate::Rz(total),
                        ga.qubits.clone(),
                    )));
                }
                continue;
            }
        }
        // Rule 3: SWAP + CNOT fusion on the same pair.
        let same_pair = a.qubits == b.qubits;
        let swap_cnot = (ga.gate == Gate::Swap && gb.gate == Gate::Cnot)
            || (ga.gate == Gate::Cnot && gb.gate == Gate::Swap);
        if same_pair && swap_cnot {
            consumed[i] = true;
            consumed[j] = true;
            changed = true;
            out.push(AggregateInstruction::from_gates(
                vec![ga.clone(), gb.clone()],
                InstructionOrigin::HandOptimized,
            ));
            continue;
        }
        out.push(a.clone());
        consumed[i] = true;
    }
    (out, changed)
}

fn z_angle(gate: &Gate) -> Option<f64> {
    match gate {
        Gate::Rz(t) | Gate::Phase(t) => Some(*t),
        Gate::Z => Some(PI),
        Gate::S => Some(FRAC_PI_2),
        Gate::Sdg => Some(-FRAC_PI_2),
        Gate::T => Some(PI / 4.0),
        Gate::Tdg => Some(-PI / 4.0),
        _ => None,
    }
}

/// Latency of an instruction under the hand-optimized gate-based scheme:
/// ordinary gates are priced by the ISA rule; the fused SWAP+CNOT pattern is
/// priced as the published manual pulse construction (two native iSWAP pulses
/// plus dressing rather than the five of the naive decomposition).
pub fn hand_latency(
    inst: &AggregateInstruction,
    model: &dyn LatencyModel,
    limits: &ControlLimits,
) -> f64 {
    if inst.origin == InstructionOrigin::HandOptimized {
        limits.instruction_overhead_ns
            + limits.two_qubit_time(PI)
            + 2.0 * limits.one_qubit_time(FRAC_PI_2)
    } else if inst.origin == InstructionOrigin::DiagonalBlock && inst.width() == 2 {
        // The CNOT–Rz–CNOT → direct ZZ-interaction pulse is a published manual
        // construction for XY-coupled hardware ([48]); hand optimization gets
        // credit for it, which is why the paper finds hand optimization
        // competitive on simply-encoded workloads such as MAXCUT-line (§6.4).
        model.aggregate_latency(&inst.constituents)
    } else {
        inst.constituents
            .iter()
            .map(|g| model.isa_gate_latency(g))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use qcc_hw::CalibratedLatencyModel;
    use qcc_ir::Circuit;

    fn single(g: Gate, qs: &[usize]) -> AggregateInstruction {
        AggregateInstruction::from_gate(Instruction::new(g, qs.to_vec()))
    }

    #[test]
    fn cnot_pairs_cancel() {
        let instrs = vec![
            single(Gate::Cnot, &[0, 1]),
            single(Gate::Cnot, &[0, 1]),
            single(Gate::H, &[2]),
        ];
        let out = rewrite(&instrs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].constituents[0].gate, Gate::H);
    }

    #[test]
    fn rz_runs_merge() {
        let instrs = vec![
            single(Gate::Rz(0.3), &[1]),
            single(Gate::T, &[1]),
            single(Gate::Rz(-0.1), &[1]),
        ];
        let out = rewrite(&instrs);
        assert_eq!(out.len(), 1);
        match out[0].constituents[0].gate {
            Gate::Rz(t) => assert!((t - (0.3 + PI / 4.0 - 0.1)).abs() < 1e-12),
            ref g => panic!("expected merged Rz, got {g:?}"),
        }
    }

    #[test]
    fn opposite_rotations_cancel_to_nothing() {
        let instrs = vec![single(Gate::Rz(0.7), &[0]), single(Gate::Rz(-0.7), &[0])];
        let out = rewrite(&instrs);
        assert!(out.is_empty());
    }

    #[test]
    fn swap_cnot_fuses_and_gets_cheaper_price() {
        let instrs = vec![single(Gate::Swap, &[0, 1]), single(Gate::Cnot, &[0, 1])];
        let out = rewrite(&instrs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].origin, InstructionOrigin::HandOptimized);
        let model = CalibratedLatencyModel::asplos19();
        let limits = *model.limits();
        let fused = hand_latency(&out[0], &model, &limits);
        let separate: f64 = instrs
            .iter()
            .map(|i| hand_latency(i, &model, &limits))
            .sum();
        assert!(fused < separate, "fused {fused} vs separate {separate}");
    }

    #[test]
    fn rewrites_preserve_semantics() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Rz(0.4), &[2]);
        c.push(Gate::Rz(0.6), &[2]);
        c.push(Gate::Swap, &[1, 2]);
        c.push(Gate::Cnot, &[1, 2]);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[0]);
        let instrs = frontend::lower(&c);
        let out = rewrite(&instrs);
        let before = c.unitary();
        let after = frontend::to_circuit(&out, 3).unitary();
        assert!(after.approx_eq_up_to_phase(&before, 1e-9));
        // And it actually got smaller.
        let gates_after: usize = out.iter().map(|i| i.gate_count()).sum();
        assert!(gates_after < c.len());
    }

    #[test]
    fn cancellation_blocked_by_interposed_gate() {
        let instrs = vec![
            single(Gate::Cnot, &[0, 1]),
            single(Gate::H, &[1]),
            single(Gate::Cnot, &[0, 1]),
        ];
        let out = rewrite(&instrs);
        let gates: usize = out.iter().map(|i| i.gate_count()).sum();
        assert_eq!(gates, 3);
    }
}
