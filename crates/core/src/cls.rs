//! Commutativity-aware Logical Scheduling (CLS) — Algorithm 1 of the paper.
//!
//! Each qubit carries an ordered list of *commutation groups*: maximal runs of
//! consecutive instructions (in program order restricted to that qubit) that
//! pairwise commute. Two instructions may be reordered exactly when they sit in
//! the same commutation group on every qubit they share. The scheduler walks
//! the groups front to back; at every round it gathers the instructions whose
//! groups are currently "open" on all of their qubits, resolves qubit conflicts
//! with a maximal matching of the candidate computational graph (Fig. 7), and
//! emits the selected instructions. The output is a new instruction order that
//! maximizes parallelism without changing circuit semantics.

use crate::instr::AggregateInstruction;
use qcc_graph::{matching, Graph};
use std::collections::HashMap;

/// Per-qubit commutation groups: `groups[q]` is an ordered list of groups, each
/// an ordered list of instruction indices acting on qubit `q`.
#[derive(Debug, Clone, PartialEq)]
pub struct CommutationGroups {
    /// Groups per qubit index.
    pub groups: HashMap<usize, Vec<Vec<usize>>>,
}

impl CommutationGroups {
    /// Builds the commutation groups for an instruction sequence.
    pub fn build(instrs: &[AggregateInstruction]) -> Self {
        let mut per_qubit: HashMap<usize, Vec<usize>> = HashMap::new();
        for (idx, inst) in instrs.iter().enumerate() {
            for &q in &inst.qubits {
                per_qubit.entry(q).or_default().push(idx);
            }
        }
        let mut groups: HashMap<usize, Vec<Vec<usize>>> = HashMap::new();
        for (q, order) in per_qubit {
            let mut qgroups: Vec<Vec<usize>> = Vec::new();
            for &idx in &order {
                let fits_last = qgroups.last().is_some_and(|last| {
                    last.iter()
                        .all(|&other| instrs[idx].commutes_with(&instrs[other]))
                });
                if fits_last {
                    qgroups.last_mut().expect("non-empty").push(idx);
                } else {
                    qgroups.push(vec![idx]);
                }
            }
            groups.insert(q, qgroups);
        }
        Self { groups }
    }

    /// Number of groups on qubit `q` (0 when the qubit is idle).
    pub fn group_count(&self, q: usize) -> usize {
        self.groups.get(&q).map_or(0, |g| g.len())
    }

    /// Whether two instructions can be reordered: they are in the same group on
    /// every shared qubit.
    pub fn can_reorder(&self, instrs: &[AggregateInstruction], a: usize, b: usize) -> bool {
        let shared = instrs[a].shared_qubits(&instrs[b]);
        shared.iter().all(|q| {
            self.groups
                .get(q)
                .map(|qgroups| qgroups.iter().any(|g| g.contains(&a) && g.contains(&b)))
                .unwrap_or(false)
        })
    }
}

/// Result of the CLS pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ClsResult {
    /// New instruction order (indices into the input slice).
    pub order: Vec<usize>,
    /// Number of scheduling rounds used (a proxy for logical depth).
    pub rounds: usize,
}

/// Runs CLS and returns the new instruction order.
///
/// The `latencies` are used to prioritize longer instructions inside a round
/// (they are matched first), mirroring the greedy choice of Algorithm 1.
pub fn schedule(instrs: &[AggregateInstruction], latencies: &[f64]) -> ClsResult {
    assert_eq!(instrs.len(), latencies.len(), "latency count mismatch");
    let n = instrs.len();
    if n == 0 {
        return ClsResult {
            order: Vec::new(),
            rounds: 0,
        };
    }
    let groups = CommutationGroups::build(instrs);
    // Per qubit: (current group index, set of already-scheduled members of the
    // current group).
    let mut group_cursor: HashMap<usize, usize> = HashMap::new();
    let mut scheduled = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut rounds = 0usize;

    let qubit_ids: Vec<usize> = groups.groups.keys().copied().collect();
    let max_qubit = qubit_ids.iter().copied().max().unwrap_or(0);

    while order.len() < n {
        rounds += 1;
        // Advance cursors past fully-scheduled groups.
        for &q in &qubit_ids {
            let qgroups = &groups.groups[&q];
            let cursor = group_cursor.entry(q).or_insert(0);
            while *cursor < qgroups.len() && qgroups[*cursor].iter().all(|&i| scheduled[i]) {
                *cursor += 1;
            }
        }
        // Candidate instructions: unscheduled, and on every one of their qubits
        // they belong to that qubit's currently open group.
        let candidates: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i])
            .filter(|&i| {
                instrs[i].qubits.iter().all(|q| {
                    let cursor = group_cursor.get(q).copied().unwrap_or(0);
                    groups
                        .groups
                        .get(q)
                        .and_then(|qg| qg.get(cursor))
                        .map(|g| g.contains(&i))
                        .unwrap_or(false)
                })
            })
            .collect();

        if candidates.is_empty() {
            // Should not happen for well-formed inputs, but guarantee progress
            // by force-scheduling the earliest unscheduled instruction.
            let fallback = (0..n)
                .find(|&i| !scheduled[i])
                .expect("unscheduled remains");
            scheduled[fallback] = true;
            order.push(fallback);
            continue;
        }

        // Build the computational graph: qubits are vertices, 2-qubit candidate
        // instructions are edges (weighted by latency so long instructions are
        // matched first); single-qubit candidates never conflict.
        let mut conflict = Graph::new(max_qubit + 1);
        let mut edge_to_candidate: HashMap<(usize, usize), usize> = HashMap::new();
        let mut selected: Vec<usize> = Vec::new();
        for &i in &candidates {
            match instrs[i].qubits.len() {
                1 => selected.push(i),
                2 => {
                    let a = instrs[i].qubits[0].min(instrs[i].qubits[1]);
                    let b = instrs[i].qubits[0].max(instrs[i].qubits[1]);
                    // Keep only the first candidate per edge this round; the
                    // rest will be picked up in later rounds.
                    if let std::collections::hash_map::Entry::Vacant(slot) =
                        edge_to_candidate.entry((a, b))
                    {
                        slot.insert(i);
                        conflict.add_edge(a, b, latencies[i].max(1e-9));
                    }
                }
                _ => {
                    // Wider instructions (rare before aggregation) are
                    // scheduled greedily if none of their qubits is used by an
                    // already-selected instruction this round.
                    selected.push(i);
                }
            }
        }
        let matched = matching::improved_matching(&conflict);
        for (a, b) in matched {
            let key = (a.min(b), a.max(b));
            if let Some(&i) = edge_to_candidate.get(&key) {
                selected.push(i);
            }
        }
        // Resolve residual conflicts among the selected set (wide instructions
        // or a 1-qubit gate whose qubit also appears in a matched edge): keep
        // the earliest conflict-free subset in candidate order.
        let mut used_qubits: Vec<bool> = vec![false; max_qubit + 1];
        selected.sort_unstable();
        let mut emitted_this_round = Vec::new();
        for i in selected {
            if instrs[i].qubits.iter().any(|&q| used_qubits[q]) {
                continue;
            }
            for &q in &instrs[i].qubits {
                used_qubits[q] = true;
            }
            scheduled[i] = true;
            emitted_this_round.push(i);
        }
        if emitted_this_round.is_empty() {
            let fallback = candidates[0];
            scheduled[fallback] = true;
            emitted_this_round.push(fallback);
        }
        // Emit in original-index order for determinism.
        emitted_this_round.sort_unstable();
        order.extend(emitted_this_round);
    }

    ClsResult { order, rounds }
}

/// Applies an order to an instruction list.
pub fn apply_order(instrs: &[AggregateInstruction], order: &[usize]) -> Vec<AggregateInstruction> {
    order.iter().map(|&i| instrs[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use crate::instr::InstructionOrigin;
    use crate::schedule::asap_schedule;
    use qcc_ir::{Circuit, Gate, Instruction};

    fn zz(a: usize, b: usize, theta: f64) -> AggregateInstruction {
        AggregateInstruction::from_gates(
            vec![
                Instruction::new(Gate::Cnot, vec![a, b]),
                Instruction::new(Gate::Rz(theta), vec![b]),
                Instruction::new(Gate::Cnot, vec![a, b]),
            ],
            InstructionOrigin::DiagonalBlock,
        )
    }

    #[test]
    fn commutation_groups_for_diagonal_chain() {
        // Three ZZ blocks along a line: on the shared qubits they all commute,
        // so each qubit has a single group.
        let instrs = vec![zz(0, 1, 0.5), zz(1, 2, 0.5), zz(2, 3, 0.5)];
        let groups = CommutationGroups::build(&instrs);
        assert_eq!(groups.group_count(1), 1);
        assert_eq!(groups.group_count(2), 1);
        assert!(groups.can_reorder(&instrs, 0, 1));
        assert!(groups.can_reorder(&instrs, 1, 2));
    }

    #[test]
    fn commutation_groups_break_at_non_commuting_gates() {
        let h = AggregateInstruction::from_gate(Instruction::new(Gate::H, vec![1]));
        let instrs = vec![zz(0, 1, 0.5), h, zz(0, 1, 0.8)];
        let groups = CommutationGroups::build(&instrs);
        // Qubit 1 sees block / H / block: three groups.
        assert_eq!(groups.group_count(1), 3);
        assert!(!groups.can_reorder(&instrs, 0, 2));
    }

    #[test]
    fn cls_parallelizes_commuting_chain() {
        // ZZ blocks along a 6-qubit line, emitted in chain order. Without CLS
        // they serialize (5 rounds); with CLS they fit in 2 rounds.
        let instrs: Vec<AggregateInstruction> = (0..5).map(|i| zz(i, i + 1, 0.4)).collect();
        let lat = vec![30.0; instrs.len()];
        let baseline = asap_schedule(&instrs, &lat).makespan;
        let result = schedule(&instrs, &lat);
        let reordered = apply_order(&instrs, &result.order);
        let optimized = asap_schedule(&reordered, &lat).makespan;
        assert!((baseline - 150.0).abs() < 1e-9);
        assert!((optimized - 60.0).abs() < 1e-9, "optimized = {optimized}");
        assert!(result.rounds <= 3);
    }

    #[test]
    fn cls_respects_real_dependences() {
        // H(1) between two blocks on (0,1): the second block must stay after
        // the H on qubit 1.
        let h = AggregateInstruction::from_gate(Instruction::new(Gate::H, vec![1]));
        let instrs = vec![zz(0, 1, 0.5), h.clone(), zz(0, 1, 0.8)];
        let lat = vec![30.0, 5.0, 30.0];
        let result = schedule(&instrs, &lat);
        let pos = |idx: usize| result.order.iter().position(|&x| x == idx).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn cls_output_is_a_permutation() {
        let circuit = {
            let mut c = Circuit::new(4);
            for q in 0..4 {
                c.push(Gate::H, &[q]);
            }
            for i in 0..3 {
                c.push(Gate::Cnot, &[i, i + 1]);
                c.push(Gate::Rz(0.3), &[i + 1]);
                c.push(Gate::Cnot, &[i, i + 1]);
            }
            for q in 0..4 {
                c.push(Gate::Rx(0.9), &[q]);
            }
            c
        };
        let instrs = frontend::run(&circuit);
        let lat = vec![10.0; instrs.len()];
        let result = schedule(&instrs, &lat);
        let mut sorted = result.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..instrs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn cls_preserves_circuit_semantics() {
        let circuit = {
            let mut c = Circuit::new(4);
            for q in 0..4 {
                c.push(Gate::H, &[q]);
            }
            for i in 0..3 {
                c.push(Gate::Cnot, &[i, i + 1]);
                c.push(Gate::Rz(0.3 + i as f64 * 0.2), &[i + 1]);
                c.push(Gate::Cnot, &[i, i + 1]);
            }
            for q in 0..4 {
                c.push(Gate::Rx(0.9), &[q]);
            }
            c
        };
        let instrs = frontend::run(&circuit);
        let lat = vec![10.0; instrs.len()];
        let result = schedule(&instrs, &lat);
        let reordered = apply_order(&instrs, &result.order);
        let rebuilt = frontend::to_circuit(&reordered, circuit.n_qubits());
        assert!(rebuilt
            .unitary()
            .approx_eq_up_to_phase(&circuit.unitary(), 1e-9));
    }

    #[test]
    fn cls_never_increases_makespan_on_detected_circuits() {
        // QAOA-like ring of blocks.
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.push(Gate::H, &[q]);
        }
        for i in 0..5 {
            let a = i;
            let b = (i + 1) % 5;
            c.push(Gate::Cnot, &[a, b]);
            c.push(Gate::Rz(1.0), &[b]);
            c.push(Gate::Cnot, &[a, b]);
        }
        let instrs = frontend::run(&c);
        let lat: Vec<f64> = instrs
            .iter()
            .map(|i| 10.0 * i.gate_count() as f64)
            .collect();
        let before = asap_schedule(&instrs, &lat).makespan;
        let result = schedule(&instrs, &lat);
        let reordered = apply_order(&instrs, &result.order);
        let reordered_lat: Vec<f64> = result.order.iter().map(|&i| lat[i]).collect();
        let after = asap_schedule(&reordered, &reordered_lat).makespan;
        assert!(after <= before + 1e-9, "after {after} > before {before}");
    }
}
