//! The end-to-end compilation pipeline and the strategy matrix of the
//! evaluation (Fig. 9).
//!
//! Every strategy shares the same front door (flattening) and the same back
//! door (ASAP scheduling of priced instructions on the device); they differ in
//! which of the paper's passes run in between:
//!
//! | strategy | commutativity detection | CLS | routing | aggregation | pricing |
//! |---|---|---|---|---|---|
//! | `IsaBaseline` | – | – | ✓ | – | per-gate ISA pulses |
//! | `Cls` | ✓ | ✓ | ✓ | – | per-gate ISA pulses |
//! | `AggregationOnly` | ✓ | – | ✓ | ✓ | per-instruction optimized pulses |
//! | `ClsAggregation` | ✓ | ✓ | ✓ | ✓ | per-instruction optimized pulses |
//! | `ClsHandOptimized` | – | ✓ | ✓ | – | hand-tuned gate pulses ([39,48]) |

use crate::aggregate::{self, AggregationOptions, AggregationStats};
use crate::cls;
use crate::frontend;
use crate::handopt;
use crate::instr::AggregateInstruction;
use crate::mapping;
use crate::schedule::{asap_schedule, Schedule};
use qcc_hw::{CalibratedLatencyModel, Device, LatencyModel};
use qcc_ir::Circuit;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use threadpool::ThreadPool;

/// Compilation strategy, matching the bars of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Standard gate-based (ISA) compilation — the baseline with latency 1.0.
    IsaBaseline,
    /// Commutativity-aware logical scheduling only (§3.3.2).
    Cls,
    /// Instruction aggregation without CLS (§4.3).
    AggregationOnly,
    /// The full proposed flow: CLS + aggregation.
    ClsAggregation,
    /// CLS plus mechanically-applied hand optimizations for iSWAP
    /// architectures.
    ClsHandOptimized,
}

impl Strategy {
    /// All strategies in presentation order.
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::IsaBaseline,
            Strategy::Cls,
            Strategy::AggregationOnly,
            Strategy::ClsAggregation,
            Strategy::ClsHandOptimized,
        ]
    }

    /// Short display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::IsaBaseline => "ISA",
            Strategy::Cls => "CLS",
            Strategy::AggregationOnly => "Aggregation",
            Strategy::ClsAggregation => "CLS+Aggregation",
            Strategy::ClsHandOptimized => "CLS+HandOpt",
        }
    }

    fn uses_detection(&self) -> bool {
        // Every strategy that schedules with commutativity awareness needs the
        // detection pass (Fig. 5, right); only the plain ISA baseline skips it.
        !matches!(self, Strategy::IsaBaseline)
    }

    fn uses_cls(&self) -> bool {
        matches!(
            self,
            Strategy::Cls | Strategy::ClsAggregation | Strategy::ClsHandOptimized
        )
    }

    fn uses_aggregation(&self) -> bool {
        matches!(self, Strategy::AggregationOnly | Strategy::ClsAggregation)
    }

    fn uses_handopt(&self) -> bool {
        matches!(self, Strategy::ClsHandOptimized)
    }

    /// Whether instructions are priced as single optimized pulses (aggregated
    /// compilation) rather than sequences of per-gate pulses.
    pub fn pulse_per_instruction(&self) -> bool {
        self.uses_aggregation()
    }
}

/// Options of a compilation run.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// Which passes to run.
    pub strategy: Strategy,
    /// Aggregation options (width limit etc.).
    pub aggregation: AggregationOptions,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::ClsAggregation,
            aggregation: AggregationOptions::default(),
        }
    }
}

impl CompilerOptions {
    /// Options for a given strategy with default aggregation settings.
    pub fn strategy(strategy: Strategy) -> Self {
        Self {
            strategy,
            ..Self::default()
        }
    }

    /// Options for the full flow with a specific instruction-width limit.
    pub fn with_width(width: usize) -> Self {
        Self {
            strategy: Strategy::ClsAggregation,
            aggregation: AggregationOptions::with_width(width),
        }
    }
}

/// Snapshot of the instruction stream after one pipeline stage (the material
/// of Fig. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name.
    pub stage: String,
    /// Number of instructions after the stage.
    pub instructions: usize,
    /// Number of constituent gates after the stage.
    pub gates: usize,
}

/// Result of compiling one circuit with one strategy.
#[derive(Debug, Clone)]
pub struct CompilationResult {
    /// The strategy that produced this result.
    pub strategy: Strategy,
    /// Final instruction stream on physical qubits.
    pub instructions: Vec<AggregateInstruction>,
    /// Per-instruction latencies in ns (aligned with `instructions`).
    pub latencies: Vec<f64>,
    /// The final ASAP schedule.
    pub schedule: Schedule,
    /// Total pulse latency of the program in ns (the paper's metric).
    pub total_latency_ns: f64,
    /// Number of routing SWAPs inserted.
    pub swap_count: usize,
    /// Aggregation statistics (zeroed when the strategy does not aggregate).
    pub aggregation: AggregationStats,
    /// Instruction-count snapshots per pipeline stage.
    pub stages: Vec<StageSnapshot>,
    /// The initial qubit layout used.
    pub initial_layout: mapping::Layout,
    /// The final qubit layout (after routing SWAPs).
    pub final_layout: mapping::Layout,
}

impl CompilationResult {
    /// Histogram of instruction widths in the final program.
    pub fn width_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for inst in &self.instructions {
            *h.entry(inst.width()).or_insert(0) += 1;
        }
        h
    }

    /// Number of aggregated (multi-gate) instructions.
    pub fn aggregated_instruction_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate_count() > 1)
            .count()
    }

    /// Latency of the largest and of the smallest instruction on the critical
    /// path, as plotted in Fig. 10's shaded band. Returns `None` for an empty
    /// schedule.
    pub fn critical_path_latency_band(&self) -> Option<(f64, f64)> {
        let slacks =
            crate::schedule::alap_slacks(&self.instructions, &self.latencies, &self.schedule);
        let on_path = self.schedule.critical_path(&slacks);
        let latencies: Vec<f64> = on_path.iter().map(|&i| self.latencies[i]).collect();
        if latencies.is_empty() {
            return None;
        }
        let min = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = latencies.iter().cloned().fold(0.0f64, f64::max);
        Some((min, max))
    }
}

/// The compiler: a device, a latency model, and a thread pool for the
/// embarrassingly-parallel pricing loops.
///
/// Both the device and the model are borrowed — compiling never clones the
/// device, so one `Device` can back any number of compilers (and one compiler
/// any number of concurrent `compile` calls: `Compiler` is `Sync`, and the
/// latency models are internally synchronized).
pub struct Compiler<'a> {
    device: &'a Device,
    model: &'a dyn LatencyModel,
    pool: ThreadPool,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler for a device using the given latency model.
    ///
    /// Pricing parallelism defaults to the machine's available parallelism,
    /// overridable with the `QCC_THREADS` environment variable; use
    /// [`with_threads`](Self::with_threads) for an explicit count.
    pub fn new(device: &'a Device, model: &'a dyn LatencyModel) -> Self {
        Self {
            device,
            model,
            pool: ThreadPool::with_default_parallelism(),
        }
    }

    /// Sets the number of threads used for parallel pricing (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = ThreadPool::new(threads);
        self
    }

    /// The device the compiler targets.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Compiles `circuit` with the given options.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than the device provides.
    pub fn compile(&self, circuit: &Circuit, options: &CompilerOptions) -> CompilationResult {
        let strategy = options.strategy;
        // Fan per-instruction pricing out over the pool only when the model
        // says a single query is expensive (GRAPE solves); for cheap analytic
        // models the scoped thread spawns would cost more than the loop.
        let pricing_pool = if self.model.parallel_pricing() {
            self.pool
        } else {
            ThreadPool::serial()
        };
        let mut stages = Vec::new();
        let snapshot = |stage: &str, instrs: &[AggregateInstruction]| StageSnapshot {
            stage: stage.to_string(),
            instructions: instrs.len(),
            gates: instrs.iter().map(|i| i.gate_count()).sum(),
        };

        // ---- Front end: flatten, then (optionally) detect diagonal blocks.
        let mut instrs = frontend::lower(circuit);
        stages.push(snapshot("flatten", &instrs));
        if strategy.uses_detection() {
            instrs = frontend::detect_diagonal_blocks(&instrs);
            stages.push(snapshot("commutativity-detection", &instrs));
        }
        if strategy.uses_handopt() {
            instrs = handopt::rewrite(&instrs);
            stages.push(snapshot("hand-optimization", &instrs));
        }

        // Pricing of an instruction *before* aggregation (also used by CLS for
        // prioritization): gate-based pulse costs.
        let pre_price = |inst: &AggregateInstruction| -> f64 {
            if strategy.uses_handopt() {
                handopt::hand_latency(inst, self.model, &self.device.limits)
            } else {
                inst.constituents
                    .iter()
                    .map(|g| self.model.isa_gate_latency(g))
                    .sum()
            }
        };

        // ---- Commutativity-aware logical scheduling.
        //
        // When aggregation follows, the logical-level CLS is skipped: the
        // aggregation pass works on program order (its action space follows
        // per-qubit adjacency), and the commutativity-aware reordering is
        // applied to the *aggregated* instructions afterwards, which preserves
        // both benefits (the paper likewise reschedules the aggregated
        // instructions with CLS before emitting pulses, §3.4.2).
        if strategy.uses_cls() && !strategy.uses_aggregation() {
            let lat: Vec<f64> = instrs.iter().map(&pre_price).collect();
            let result = cls::schedule(&instrs, &lat);
            instrs = cls::apply_order(&instrs, &result.order);
            stages.push(snapshot("cls", &instrs));
        }

        // ---- Mapping and routing.
        let routed = mapping::map_and_route(&instrs, circuit.n_qubits(), &self.device.topology);
        let swap_count = routed.swap_count;
        let initial_layout = routed.initial_layout.clone();
        let final_layout = routed.final_layout.clone();
        let mut instrs = routed.instructions;
        stages.push(snapshot("route", &instrs));

        // ---- Aggregation.
        let mut agg_stats = AggregationStats::default();
        let mut priced: Option<Vec<f64>> = None;
        if strategy.uses_aggregation() {
            let (aggregated, stats) =
                aggregate::run_with_pool(&instrs, self.model, &options.aggregation, &pricing_pool);
            instrs = aggregated;
            aggregate::finalize_origins(&mut instrs);
            agg_stats = stats;
            stages.push(snapshot("aggregation", &instrs));
            // Re-run CLS on the aggregated instructions for the final schedule,
            // as the paper does before emitting pulses (§3.4.2).
            if strategy.uses_cls() {
                let lat = pricing_pool
                    .parallel_map(&instrs, |i| self.model.aggregate_latency(&i.constituents));
                let result = cls::schedule(&instrs, &lat);
                instrs = cls::apply_order(&instrs, &result.order);
                // apply_order only permutes instructions; permute their prices
                // alongside instead of re-querying the model below.
                priced = Some(result.order.iter().map(|&i| lat[i]).collect());
                stages.push(snapshot("final-cls", &instrs));
            }
        }

        // ---- Final pricing and schedule. Pulse-per-instruction pricing fans
        // out over the pool (unless final-cls already priced everything); the
        // gate-based pre-pricing path is cheap arithmetic and stays serial.
        let latencies = match priced {
            Some(lat) => lat,
            None if strategy.pulse_per_instruction() => pricing_pool
                .parallel_map(&instrs, |inst| {
                    self.model.aggregate_latency(&inst.constituents)
                }),
            None => instrs.iter().map(&pre_price).collect(),
        };
        let schedule = asap_schedule(&instrs, &latencies);
        let total_latency_ns = schedule.makespan;

        CompilationResult {
            strategy,
            instructions: instrs,
            latencies,
            total_latency_ns,
            schedule,
            swap_count,
            aggregation: agg_stats,
            stages,
            initial_layout,
            final_layout,
        }
    }

    /// Compiles the circuit under every strategy and returns the results keyed
    /// by strategy, plus the speedup of each strategy relative to the ISA
    /// baseline (the normalized latencies of Fig. 9).
    ///
    /// The five strategies are independent, so they compile concurrently on
    /// the compiler's thread pool; the results are returned in
    /// [`Strategy::all`] order either way, and the latencies are identical to
    /// compiling each strategy serially (the models are deterministic and the
    /// shared latency cache is compute-once per key).
    pub fn compare_strategies(
        &self,
        circuit: &Circuit,
        aggregation: AggregationOptions,
    ) -> StrategyComparison {
        let strategies = Strategy::all();
        // Split the thread budget between the outer strategy fan-out and the
        // pricing loops inside each compile, so the nesting never spawns more
        // than ~pool-size threads in total.
        let inner = Compiler {
            device: self.device,
            model: self.model,
            pool: ThreadPool::new((self.pool.threads() / strategies.len()).max(1)),
        };
        let results = self.pool.parallel_map(&strategies, |&strategy| {
            let options = CompilerOptions {
                strategy,
                aggregation,
            };
            inner.compile(circuit, &options)
        });
        StrategyComparison { results }
    }
}

/// Results of compiling one circuit under every strategy.
#[derive(Debug)]
pub struct StrategyComparison {
    /// One result per strategy, in [`Strategy::all`] order.
    pub results: Vec<CompilationResult>,
}

impl StrategyComparison {
    /// The result for a given strategy.
    pub fn get(&self, strategy: Strategy) -> &CompilationResult {
        self.results
            .iter()
            .find(|r| r.strategy == strategy)
            .expect("all strategies compiled")
    }

    /// Latency of `strategy` normalized to the ISA baseline (Fig. 9's y-axis).
    pub fn normalized_latency(&self, strategy: Strategy) -> f64 {
        let base = self.get(Strategy::IsaBaseline).total_latency_ns;
        if base <= 0.0 {
            return 1.0;
        }
        self.get(strategy).total_latency_ns / base
    }

    /// Speedup of `strategy` over the ISA baseline.
    pub fn speedup(&self, strategy: Strategy) -> f64 {
        let norm = self.normalized_latency(strategy);
        if norm <= 0.0 {
            1.0
        } else {
            1.0 / norm
        }
    }
}

/// Compiles with the default calibrated latency model — the common entry point
/// for examples and benchmarks. The device is borrowed end-to-end; nothing is
/// cloned per call.
pub fn compile_with_default_model(
    circuit: &Circuit,
    device: &Device,
    options: &CompilerOptions,
) -> CompilationResult {
    let model = CalibratedLatencyModel::new(device.limits);
    Compiler::new(device, &model).compile(circuit, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_hw::Topology;
    use qcc_ir::Gate;

    /// The worked QAOA MAXCUT-on-a-triangle example of §3.1 / Fig. 4, on a
    /// 3-qubit line (one SWAP required), with the paper's angles.
    fn qaoa_triangle() -> Circuit {
        let gamma = 5.67;
        let beta = 1.26;
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::H, &[q]);
        }
        for &(a, b) in &[(0usize, 1usize), (1, 2), (0, 2)] {
            c.push(Gate::Cnot, &[a, b]);
            c.push(Gate::Rz(gamma), &[b]);
            c.push(Gate::Cnot, &[a, b]);
        }
        for q in 0..3 {
            c.push(Gate::Rx(beta), &[q]);
        }
        c
    }

    fn line_device() -> Device {
        Device::transmon(Topology::Linear(3))
    }

    #[test]
    fn all_strategies_compile_the_qaoa_example() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let comparison =
            compiler.compare_strategies(&qaoa_triangle(), AggregationOptions::default());
        for strategy in Strategy::all() {
            let r = comparison.get(strategy);
            assert!(r.total_latency_ns > 0.0, "{strategy:?}");
            assert!(!r.instructions.is_empty());
            // Gate count conservation: every input gate appears exactly once
            // (plus routing SWAPs, minus hand-opt cancellations which this
            // circuit does not trigger except through Rz merges).
            let gates: usize = r.instructions.iter().map(|i| i.gate_count()).sum();
            assert!(gates >= qaoa_triangle().len(), "{strategy:?}: {gates}");
        }
    }

    #[test]
    fn aggregated_compilation_beats_the_baseline_on_qaoa() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let comparison =
            compiler.compare_strategies(&qaoa_triangle(), AggregationOptions::default());
        let full = comparison.speedup(Strategy::ClsAggregation);
        let cls = comparison.speedup(Strategy::Cls);
        let agg = comparison.speedup(Strategy::AggregationOnly);
        // The paper's worked example achieves ≈2.97× with aggregation; our cost
        // model should land in the same territory (comfortably above 1.5×) and
        // the full flow should dominate its components.
        assert!(full > 1.5, "full speedup {full}");
        assert!(
            full + 1e-9 >= cls.min(agg),
            "full {full} vs cls {cls} / agg {agg}"
        );
        assert!(cls >= 0.99, "CLS never slows the circuit down: {cls}");
    }

    #[test]
    fn strategy_table_flags() {
        assert!(!Strategy::IsaBaseline.uses_cls());
        assert!(Strategy::Cls.uses_detection());
        assert!(Strategy::ClsHandOptimized.uses_detection());
        assert!(!Strategy::IsaBaseline.uses_detection());
        assert!(Strategy::ClsAggregation.pulse_per_instruction());
        assert!(!Strategy::Cls.pulse_per_instruction());
        assert_eq!(Strategy::all().len(), 5);
    }

    #[test]
    fn compilation_reports_stages_and_layouts() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let r = compiler.compile(
            &qaoa_triangle(),
            &CompilerOptions::strategy(Strategy::ClsAggregation),
        );
        let stage_names: Vec<&str> = r.stages.iter().map(|s| s.stage.as_str()).collect();
        assert!(stage_names.contains(&"flatten"));
        assert!(stage_names.contains(&"commutativity-detection"));
        assert!(stage_names.contains(&"route"));
        assert!(stage_names.contains(&"aggregation"));
        // With aggregation enabled the commutativity-aware reordering runs on
        // the aggregated instructions ("final-cls"); without it, as "cls".
        assert!(stage_names.contains(&"final-cls"));
        let cls_only =
            compiler.compile(&qaoa_triangle(), &CompilerOptions::strategy(Strategy::Cls));
        assert!(cls_only.stages.iter().any(|s| s.stage == "cls"));
        assert_eq!(r.initial_layout.len(), 3);
        assert_eq!(r.final_layout.len(), 3);
        assert!(r.swap_count >= 1, "the triangle on a line needs a SWAP");
        assert!(r.aggregated_instruction_count() > 0);
        assert!(r.critical_path_latency_band().is_some());
    }

    #[test]
    fn schedule_is_consistent_with_reported_latency() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        for strategy in Strategy::all() {
            let r = compiler.compile(&qaoa_triangle(), &CompilerOptions::strategy(strategy));
            let recomputed = asap_schedule(&r.instructions, &r.latencies).makespan;
            assert!((recomputed - r.total_latency_ns).abs() < 1e-9);
            // Every latency is positive except possibly explicit identities.
            assert!(r.latencies.iter().all(|&l| l >= 0.0));
        }
    }

    #[test]
    fn width_limit_one_effectively_disables_multi_qubit_merges() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let narrow = compiler.compile(&qaoa_triangle(), &CompilerOptions::with_width(2));
        let wide = compiler.compile(&qaoa_triangle(), &CompilerOptions::with_width(10));
        assert!(wide.total_latency_ns <= narrow.total_latency_ns + 1e-9);
        assert!(narrow.instructions.iter().all(|i| i.width() <= 2));
    }
}
