//! The compilation driver and the strategy matrix of the evaluation (Fig. 9).
//!
//! Compilation is organized as an explicit pipeline of [`passes`](crate::passes):
//! a [`Strategy`] is a *preset recipe* ([`Strategy::pipeline`]) over the
//! built-in passes, and [`Compiler::compile`] is a thin driver that runs the
//! recipe. Custom pass orders are assembled with
//! [`PipelineBuilder`] and run through [`Compiler::run_pipeline`].
//!
//! Every preset shares the same front door (flattening) and the same back door
//! (ASAP scheduling of priced instructions on the device); they differ in
//! which of the paper's passes run in between:
//!
//! | strategy | commutativity detection | CLS | routing | aggregation | pricing |
//! |---|---|---|---|---|---|
//! | `IsaBaseline` | – | – | ✓ | – | per-gate ISA pulses |
//! | `Cls` | ✓ | ✓ | ✓ | – | per-gate ISA pulses |
//! | `AggregationOnly` | ✓ | – | ✓ | ✓ | per-instruction optimized pulses |
//! | `ClsAggregation` | ✓ | ✓ | ✓ | ✓ | per-instruction optimized pulses |
//! | `ClsHandOptimized` | – | ✓ | ✓ | – | hand-tuned gate pulses (\[39,48\]) |

use crate::aggregate::{AggregationOptions, AggregationStats};
use crate::instr::AggregateInstruction;
use crate::mapping;
use crate::passes::{
    Aggregate, AsapSchedule, Cls, CompileError, DetectDiagonalBlocks, Flatten, GatePricing,
    HandOptimize, PassContext, PassReport, PassState, Pipeline, PipelineBuilder, Price, Route,
};
use crate::schedule::Schedule;
use qcc_hw::{Backend, Device, LatencyModel};
use qcc_ir::{Circuit, Instruction};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use threadpool::ThreadPool;

/// Compilation strategy, matching the bars of Fig. 9.
///
/// A strategy is a *recipe*: [`Strategy::pipeline`] materializes it as a
/// [`Pipeline`] of the public [`passes`](crate::passes), which
/// [`Compiler::compile`] then drives. Parse one from a string
/// (`"cls+aggregation"`) with [`FromStr`]; [`Display`](fmt::Display) prints
/// the same short report names, so the two round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Standard gate-based (ISA) compilation — the baseline with latency 1.0.
    IsaBaseline,
    /// Commutativity-aware logical scheduling only (§3.3.2).
    Cls,
    /// Instruction aggregation without CLS (§4.3).
    AggregationOnly,
    /// The full proposed flow: CLS + aggregation.
    ClsAggregation,
    /// CLS plus mechanically-applied hand optimizations for iSWAP
    /// architectures.
    ClsHandOptimized,
}

impl Strategy {
    /// All strategies in presentation order.
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::IsaBaseline,
            Strategy::Cls,
            Strategy::AggregationOnly,
            Strategy::ClsAggregation,
            Strategy::ClsHandOptimized,
        ]
    }

    /// Short display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::IsaBaseline => "ISA",
            Strategy::Cls => "CLS",
            Strategy::AggregationOnly => "Aggregation",
            Strategy::ClsAggregation => "CLS+Aggregation",
            Strategy::ClsHandOptimized => "CLS+HandOpt",
        }
    }

    fn uses_detection(&self) -> bool {
        // Every strategy that schedules with commutativity awareness needs the
        // detection pass (Fig. 5, right); only the plain ISA baseline skips it.
        !matches!(self, Strategy::IsaBaseline)
    }

    fn uses_cls(&self) -> bool {
        matches!(
            self,
            Strategy::Cls | Strategy::ClsAggregation | Strategy::ClsHandOptimized
        )
    }

    fn uses_aggregation(&self) -> bool {
        matches!(self, Strategy::AggregationOnly | Strategy::ClsAggregation)
    }

    fn uses_handopt(&self) -> bool {
        matches!(self, Strategy::ClsHandOptimized)
    }

    fn gate_pricing(&self) -> GatePricing {
        if self.uses_handopt() {
            GatePricing::HandOptimized
        } else {
            GatePricing::Isa
        }
    }

    /// Whether instructions are priced as single optimized pulses (aggregated
    /// compilation) rather than sequences of per-gate pulses.
    pub fn pulse_per_instruction(&self) -> bool {
        self.uses_aggregation()
    }

    /// Builder holding the preset's passes up to and including routing —
    /// everything before aggregation/pricing first touches the latency model.
    /// [`pipeline`](Self::pipeline) continues from this builder, so the
    /// warm-up prefix can never drift from the real recipe.
    fn routing_prefix_builder(&self) -> PipelineBuilder {
        let mut b = PipelineBuilder::new().add(Flatten);
        if self.uses_detection() {
            b = b.add(DetectDiagonalBlocks);
        }
        if self.uses_handopt() {
            b = b.add(HandOptimize);
        }
        if self.uses_cls() && !self.uses_aggregation() {
            b = b.add(Cls::new(self.gate_pricing()));
        }
        b.add(Route)
    }

    /// The preset's routing prefix as a runnable pipeline. Used by the batch
    /// warm-up ([`Compiler::compile_batch`]) to reproduce the exact routed
    /// instruction streams the per-circuit compiles will price.
    fn routing_prefix(&self) -> Pipeline {
        self.routing_prefix_builder().build()
    }

    /// Materializes this strategy as a runnable [`Pipeline`] — the preset
    /// recipe [`Compiler::compile`] drives.
    ///
    /// The logical-level [`Cls`] pass is skipped when aggregation follows: the
    /// aggregation search works on program order, and the commutativity-aware
    /// reordering is applied to the *aggregated* instructions afterwards
    /// ([`FinalCls`](crate::passes::FinalCls)), which preserves both benefits
    /// (the paper likewise reschedules the aggregated instructions with CLS
    /// before emitting pulses, §3.4.2).
    pub fn pipeline(&self) -> Pipeline {
        let mut b = self.routing_prefix_builder();
        if self.uses_aggregation() {
            b = b.add(Aggregate);
            if self.uses_cls() {
                b = b.add(crate::passes::FinalCls);
            }
        }
        let price = if self.pulse_per_instruction() {
            Price::per_instruction()
        } else {
            Price::per_gate(self.gate_pricing())
        };
        b.add(price).add(AsapSchedule).build()
    }

    /// The preset recipe with the aggregation slot replaced by a
    /// [`PartitionPass`](crate::partition::PartitionPass): routing prefix,
    /// then region-parallel partitioned aggregation, then the same
    /// [`FinalCls`](crate::passes::FinalCls)/pricing/scheduling tail as
    /// [`pipeline`](Self::pipeline). Driven by
    /// [`Compiler::compile_partitioned`]; see [`crate::partition`] for the
    /// equivalence guarantees.
    pub fn partitioned_pipeline(&self, partition: &crate::partition::PartitionOptions) -> Pipeline {
        let mut b = self.routing_prefix_builder();
        b = b.add(crate::partition::PartitionPass::new(partition.clone()));
        if self.uses_aggregation() && self.uses_cls() {
            b = b.add(crate::passes::FinalCls);
        }
        let price = if self.pulse_per_instruction() {
            Price::per_instruction()
        } else {
            Price::per_gate(self.gate_pricing())
        };
        b.add(price).add(AsapSchedule).build()
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`Strategy`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrategyError {
    input: String,
}

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown strategy '{}' (expected one of: isa, cls, aggregation, \
             cls+aggregation, cls+handopt)",
            self.input
        )
    }
}

impl std::error::Error for ParseStrategyError {}

impl FromStr for Strategy {
    type Err = ParseStrategyError;

    /// Parses the short report names case-insensitively, accepting a few
    /// common aliases: `"isa"`, `"cls"`, `"aggregation"`/`"agg"`,
    /// `"cls+aggregation"`/`"cls+agg"`/`"full"`, `"cls+handopt"`/`"handopt"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "isa" | "isa-baseline" | "isabaseline" | "baseline" => Ok(Strategy::IsaBaseline),
            "cls" => Ok(Strategy::Cls),
            "aggregation" | "agg" | "aggregation-only" | "aggregationonly" => {
                Ok(Strategy::AggregationOnly)
            }
            "cls+aggregation" | "cls+agg" | "clsaggregation" | "full" => {
                Ok(Strategy::ClsAggregation)
            }
            "cls+handopt" | "cls+hand-optimized" | "clshandoptimized" | "handopt" => {
                Ok(Strategy::ClsHandOptimized)
            }
            _ => Err(ParseStrategyError {
                input: s.to_string(),
            }),
        }
    }
}

/// Options of a compilation run.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// Which preset recipe to run (also tags the [`CompilationResult`]).
    pub strategy: Strategy,
    /// Aggregation options (width limit etc.).
    pub aggregation: AggregationOptions,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::ClsAggregation,
            aggregation: AggregationOptions::default(),
        }
    }
}

impl CompilerOptions {
    /// Options for a given strategy with default aggregation settings.
    pub fn strategy(strategy: Strategy) -> Self {
        Self {
            strategy,
            ..Self::default()
        }
    }

    /// Options for the full flow with a specific instruction-width limit.
    pub fn with_width(width: usize) -> Self {
        Self {
            strategy: Strategy::ClsAggregation,
            aggregation: AggregationOptions::with_width(width),
        }
    }
}

/// Result of compiling one circuit with one pipeline.
#[derive(Debug, Clone)]
pub struct CompilationResult {
    /// The strategy that produced this result (for custom pipelines, the
    /// strategy tag of the options used).
    pub strategy: Strategy,
    /// Final instruction stream on physical qubits.
    pub instructions: Vec<AggregateInstruction>,
    /// Per-instruction latencies in ns (aligned with `instructions`).
    pub latencies: Vec<f64>,
    /// The final ASAP schedule.
    pub schedule: Schedule,
    /// Total pulse latency of the program in ns (the paper's metric).
    pub total_latency_ns: f64,
    /// Number of routing SWAPs inserted.
    pub swap_count: usize,
    /// Aggregation statistics (zeroed when the pipeline does not aggregate).
    pub aggregation: AggregationStats,
    /// One typed report per executed pass, in execution order: instruction and
    /// gate counts after the pass (the material of Fig. 6) plus wall-clock
    /// timing.
    pub reports: Vec<PassReport>,
    /// Partition telemetry (`None` unless the compile was partitioned via
    /// [`Compiler::compile_partitioned`] or a custom pipeline containing a
    /// [`PartitionPass`](crate::partition::PartitionPass)).
    pub partition: Option<crate::partition::PartitionSummary>,
    /// The initial qubit layout used (identity when no routing pass ran).
    pub initial_layout: mapping::Layout,
    /// The final qubit layout (after routing SWAPs; identity when no routing
    /// pass ran).
    pub final_layout: mapping::Layout,
}

impl CompilationResult {
    /// The report of the named pass, if it ran.
    pub fn report(&self, pass: &str) -> Option<&PassReport> {
        self.reports.iter().find(|r| r.pass == pass)
    }

    /// Total wall-clock time spent across all passes.
    pub fn total_pass_time(&self) -> std::time::Duration {
        self.reports.iter().map(|r| r.wall_time).sum()
    }

    /// Histogram of instruction widths in the final program.
    pub fn width_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for inst in &self.instructions {
            *h.entry(inst.width()).or_insert(0) += 1;
        }
        h
    }

    /// Number of aggregated (multi-gate) instructions.
    pub fn aggregated_instruction_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate_count() > 1)
            .count()
    }

    /// Latency of the largest and of the smallest instruction on the critical
    /// path, as plotted in Fig. 10's shaded band. Returns `None` for an empty
    /// schedule.
    pub fn critical_path_latency_band(&self) -> Option<(f64, f64)> {
        let slacks =
            crate::schedule::alap_slacks(&self.instructions, &self.latencies, &self.schedule);
        let on_path = self.schedule.critical_path(&slacks);
        let latencies: Vec<f64> = on_path.iter().map(|&i| self.latencies[i]).collect();
        if latencies.is_empty() {
            return None;
        }
        let min = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = latencies.iter().cloned().fold(0.0f64, f64::max);
        Some((min, max))
    }
}

/// The compiler: a device, a latency model, and a thread pool for the
/// embarrassingly-parallel pricing loops.
///
/// Both the device and the model are borrowed — compiling never clones the
/// device, so one `Device` can back any number of compilers (and one compiler
/// any number of concurrent `compile` calls: `Compiler` is `Sync`, and the
/// latency models are internally synchronized). For an owning front door that
/// also constructs the model, see [`CompileService`](crate::CompileService).
pub struct Compiler<'a> {
    device: &'a Device,
    model: &'a dyn LatencyModel,
    pool: ThreadPool,
    fingerprint: Vec<u8>,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler for a device using the given latency model.
    ///
    /// Pricing parallelism defaults to the machine's available parallelism,
    /// overridable with the `QCC_THREADS` environment variable; use
    /// [`with_threads`](Self::with_threads) for an explicit count.
    pub fn new(device: &'a Device, model: &'a dyn LatencyModel) -> Self {
        // Backend-less compilers still get an identity: the device encoding
        // plus the model name, so two compilers that could disagree on a
        // latency never share cache keys downstream.
        let mut fingerprint = Vec::with_capacity(64);
        device.encode_into(&mut fingerprint);
        fingerprint.extend_from_slice(model.name().as_bytes());
        Self {
            device,
            model,
            pool: ThreadPool::with_default_parallelism(),
            fingerprint,
        }
    }

    /// Creates a compiler targeting one named [`Backend`] of a fleet: its
    /// device, its latency model, and its injective fingerprint (which every
    /// [`PassContext`] of this compiler carries, keeping shared caches
    /// collision-free across backends).
    pub fn for_backend(backend: &'a Backend) -> Self {
        Self {
            device: backend.device(),
            model: backend.model(),
            pool: ThreadPool::with_default_parallelism(),
            fingerprint: backend.fingerprint().to_vec(),
        }
    }

    /// Sets the number of threads used for parallel pricing (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = ThreadPool::new(threads);
        self
    }

    /// Overrides the compiler's identity bytes — used by owning front doors
    /// (e.g. a backend-built `CompileService`) whose borrowing compilers must
    /// carry the owner's backend fingerprint, not a re-derived one.
    pub(crate) fn with_fingerprint(mut self, fingerprint: Vec<u8>) -> Self {
        self.fingerprint = fingerprint;
        self
    }

    /// The device the compiler targets.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Identity bytes of the compilation target (the backend fingerprint, or
    /// a device-plus-model-derived stand-in for backend-less compilers).
    pub fn fingerprint(&self) -> &[u8] {
        &self.fingerprint
    }

    /// Compiles `circuit` with the given options by driving the strategy's
    /// preset pipeline ([`Strategy::pipeline`]).
    ///
    /// # Panics
    ///
    /// Panics if compilation fails — in practice, if the circuit needs more
    /// qubits than the device provides. Use [`try_compile`](Self::try_compile)
    /// to handle the error instead.
    pub fn compile(&self, circuit: &Circuit, options: &CompilerOptions) -> CompilationResult {
        self.try_compile(circuit, options)
            .unwrap_or_else(|e| panic!("compilation failed: {e}"))
    }

    /// Compiles `circuit` with the given options, returning an error instead
    /// of panicking when the device is too small (or a custom option set
    /// assembles an incomplete pipeline).
    pub fn try_compile(
        &self,
        circuit: &Circuit,
        options: &CompilerOptions,
    ) -> Result<CompilationResult, CompileError> {
        self.run_pipeline(&options.strategy.pipeline(), circuit, options)
    }

    /// Compiles `circuit` partitioned into `partition.regions` weakly coupled
    /// regions compiled in parallel and stitched at the cut set
    /// ([`Strategy::partitioned_pipeline`]; see [`crate::partition`] for the
    /// mechanism and equivalence guarantees). With `regions = 1` — or under a
    /// non-aggregating strategy at any `k` — the result is bit-identical to
    /// [`try_compile`](Self::try_compile); the attached
    /// [`PartitionSummary`](crate::partition::PartitionSummary) reports the
    /// regions, cut weight, per-region wall clocks, and stitch overhead.
    pub fn compile_partitioned(
        &self,
        circuit: &Circuit,
        options: &CompilerOptions,
        partition: &crate::partition::PartitionOptions,
    ) -> Result<CompilationResult, CompileError> {
        self.run_pipeline(
            &options.strategy.partitioned_pipeline(partition),
            circuit,
            options,
        )
    }

    /// Drives an explicit [`Pipeline`] — preset or custom-built via
    /// [`PipelineBuilder`] — over `circuit` and packages the final state as a
    /// [`CompilationResult`].
    ///
    /// The pipeline must end with the state priced and scheduled (a
    /// [`Price`]/[`AsapSchedule`] tail, or [`FinalCls`](crate::passes::FinalCls)
    /// followed by [`AsapSchedule`]); otherwise
    /// [`CompileError::IncompletePipeline`] is returned. Pipelines without a
    /// [`Route`] pass leave the instructions on logical qubits and report
    /// identity layouts.
    pub fn run_pipeline(
        &self,
        pipeline: &Pipeline,
        circuit: &Circuit,
        options: &CompilerOptions,
    ) -> Result<CompilationResult, CompileError> {
        let ctx = PassContext::new(circuit, self.device, self.model, options, self.pool)
            .with_backend_fingerprint(&self.fingerprint);
        let state = pipeline.run(&ctx)?;
        finish(state, options.strategy, circuit.n_qubits())
    }

    /// Compiles a batch of circuits under one option set by streaming them
    /// through the strategy's pipeline in **staged** mode
    /// ([`Pipeline::run_staged`]): the passes become concurrent stages with
    /// bounded hand-off channels, so circuit *i+1* is flattened while circuit
    /// *i* aggregates — steady-state throughput instead of per-circuit
    /// barriers.
    ///
    /// Results are returned in input order and are **bit-identical** to
    /// compiling each circuit serially: every circuit's passes run in recipe
    /// order over its own state, the models are deterministic, and the shared
    /// latency cache is compute-once per key, so a batch warms the cache
    /// exactly as the same circuits compiled one by one would.
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
        options: &CompilerOptions,
    ) -> Vec<Result<CompilationResult, CompileError>> {
        if circuits.is_empty() {
            return Vec::new();
        }
        self.warm_latency_cache(circuits, options);
        options
            .strategy
            .pipeline()
            .run_staged(
                circuits,
                self.device,
                self.model,
                &self.fingerprint,
                options,
                self.pool.threads(),
                crate::staged::DEFAULT_STAGE_CAPACITY,
            )
            .into_iter()
            .zip(circuits)
            .map(|(state, circuit)| {
                state.and_then(|s| finish(s, options.strategy, circuit.n_qubits()))
            })
            .collect()
    }

    /// Batch warm-up: pre-prices the routed instruction streams of every
    /// circuit through one [`LatencyModel::aggregate_latency_batch`] call on
    /// the **full** pool before the per-circuit fan-out begins.
    ///
    /// The batch fan-out splits the thread budget, often down to one thread
    /// per circuit, which would leave each compile's initial latency
    /// vectoring — the bulk of the distinct GRAPE keys — running serially.
    /// Warming the shared compute-once cache up front lets the whole pool
    /// chew on the union of unique keys across the batch instead. The keys
    /// are exactly the ones each compile prices first (the routing prefix is
    /// deterministic), so results and total solve counts are unchanged;
    /// solves just happen earlier and on more threads. Skipped when it
    /// cannot pay: uninstrumented cheap models, single-threaded pools, and
    /// per-gate-priced strategies.
    pub(crate) fn warm_latency_cache(&self, circuits: &[Circuit], options: &CompilerOptions) {
        if !self.model.parallel_pricing()
            || self.pool.threads() <= 1
            || !options.strategy.pulse_per_instruction()
        {
            return;
        }
        let prefix = options.strategy.routing_prefix();
        // The prefix is pure per circuit, so the prefix runs themselves fan
        // out over the pool. Circuits the prefix rejects (e.g. oversized for
        // the device) fail identically in their real compile; skip them here.
        let streams: Vec<Vec<AggregateInstruction>> = self
            .pool
            .parallel_map(circuits, |circuit| {
                let ctx = PassContext::new(
                    circuit,
                    self.device,
                    self.model,
                    options,
                    ThreadPool::serial(),
                )
                .with_backend_fingerprint(&self.fingerprint);
                prefix.run(&ctx).map(|state| state.instructions).ok()
            })
            .into_iter()
            .flatten()
            .collect();
        let queries: Vec<&[Instruction]> = streams
            .iter()
            .flat_map(|s| s.iter().map(|i| i.constituents.as_slice()))
            .collect();
        if !queries.is_empty() {
            self.model.aggregate_latency_batch(&queries, &self.pool);
        }
    }

    /// Compiles the circuit under every strategy and returns the results keyed
    /// by strategy, plus the speedup of each strategy relative to the ISA
    /// baseline (the normalized latencies of Fig. 9).
    ///
    /// The five strategies are independent, so they compile concurrently on
    /// the compiler's thread pool; the results are returned in
    /// [`Strategy::all`] order either way, and the latencies are identical to
    /// compiling each strategy serially (the models are deterministic and the
    /// shared latency cache is compute-once per key).
    pub fn compare_strategies(
        &self,
        circuit: &Circuit,
        aggregation: AggregationOptions,
    ) -> StrategyComparison {
        let strategies = Strategy::all();
        // Split the thread budget between the outer strategy fan-out and the
        // pricing loops inside each compile, so the nesting never spawns more
        // than ~pool-size threads in total.
        let inner = Compiler {
            device: self.device,
            model: self.model,
            pool: ThreadPool::new((self.pool.threads() / strategies.len()).max(1)),
            fingerprint: self.fingerprint.clone(),
        };
        let results = self.pool.parallel_map(&strategies, |&strategy| {
            let options = CompilerOptions {
                strategy,
                aggregation,
            };
            inner.compile(circuit, &options)
        });
        StrategyComparison { results }
    }
}

/// Packages a finished [`PassState`] as a [`CompilationResult`].
pub(crate) fn finish(
    state: PassState,
    strategy: Strategy,
    n_qubits: usize,
) -> Result<CompilationResult, CompileError> {
    let latencies = state
        .latencies
        .ok_or(CompileError::IncompletePipeline { missing: "price" })?;
    let schedule = state.schedule.ok_or(CompileError::IncompletePipeline {
        missing: "schedule",
    })?;
    let total_latency_ns = schedule.makespan;
    Ok(CompilationResult {
        strategy,
        instructions: state.instructions,
        latencies,
        total_latency_ns,
        schedule,
        swap_count: state.swap_count,
        aggregation: state.aggregation,
        partition: state.partition,
        reports: state.reports,
        initial_layout: state
            .initial_layout
            .unwrap_or_else(|| mapping::Layout::identity(n_qubits)),
        final_layout: state
            .final_layout
            .unwrap_or_else(|| mapping::Layout::identity(n_qubits)),
    })
}

/// Results of compiling one circuit under every strategy.
#[derive(Debug)]
pub struct StrategyComparison {
    /// One result per strategy, in [`Strategy::all`] order.
    pub results: Vec<CompilationResult>,
}

impl StrategyComparison {
    /// The result for a given strategy.
    pub fn get(&self, strategy: Strategy) -> &CompilationResult {
        self.results
            .iter()
            .find(|r| r.strategy == strategy)
            .expect("all strategies compiled")
    }

    /// Latency of `strategy` normalized to the ISA baseline (Fig. 9's y-axis).
    pub fn normalized_latency(&self, strategy: Strategy) -> f64 {
        let base = self.get(Strategy::IsaBaseline).total_latency_ns;
        if base <= 0.0 {
            return 1.0;
        }
        self.get(strategy).total_latency_ns / base
    }

    /// Speedup of `strategy` over the ISA baseline.
    pub fn speedup(&self, strategy: Strategy) -> f64 {
        let norm = self.normalized_latency(strategy);
        if norm <= 0.0 {
            1.0
        } else {
            1.0 / norm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::asap_schedule;
    use qcc_hw::{CalibratedLatencyModel, Topology};
    use qcc_ir::Gate;

    /// The worked QAOA MAXCUT-on-a-triangle example of §3.1 / Fig. 4, on a
    /// 3-qubit line (one SWAP required), with the paper's angles.
    fn qaoa_triangle() -> Circuit {
        let gamma = 5.67;
        let beta = 1.26;
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::H, &[q]);
        }
        for &(a, b) in &[(0usize, 1usize), (1, 2), (0, 2)] {
            c.push(Gate::Cnot, &[a, b]);
            c.push(Gate::Rz(gamma), &[b]);
            c.push(Gate::Cnot, &[a, b]);
        }
        for q in 0..3 {
            c.push(Gate::Rx(beta), &[q]);
        }
        c
    }

    fn line_device() -> Device {
        Device::transmon(Topology::Linear(3))
    }

    #[test]
    fn all_strategies_compile_the_qaoa_example() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let comparison =
            compiler.compare_strategies(&qaoa_triangle(), AggregationOptions::default());
        for strategy in Strategy::all() {
            let r = comparison.get(strategy);
            assert!(r.total_latency_ns > 0.0, "{strategy:?}");
            assert!(!r.instructions.is_empty());
            // Gate count conservation: every input gate appears exactly once
            // (plus routing SWAPs, minus hand-opt cancellations which this
            // circuit does not trigger except through Rz merges).
            let gates: usize = r.instructions.iter().map(|i| i.gate_count()).sum();
            assert!(gates >= qaoa_triangle().len(), "{strategy:?}: {gates}");
        }
    }

    #[test]
    fn aggregated_compilation_beats_the_baseline_on_qaoa() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let comparison =
            compiler.compare_strategies(&qaoa_triangle(), AggregationOptions::default());
        let full = comparison.speedup(Strategy::ClsAggregation);
        let cls = comparison.speedup(Strategy::Cls);
        let agg = comparison.speedup(Strategy::AggregationOnly);
        // The paper's worked example achieves ≈2.97× with aggregation; our cost
        // model should land in the same territory (comfortably above 1.5×) and
        // the full flow should dominate its components.
        assert!(full > 1.5, "full speedup {full}");
        assert!(
            full + 1e-9 >= cls.min(agg),
            "full {full} vs cls {cls} / agg {agg}"
        );
        assert!(cls >= 0.99, "CLS never slows the circuit down: {cls}");
    }

    #[test]
    fn strategy_table_flags() {
        assert!(!Strategy::IsaBaseline.uses_cls());
        assert!(Strategy::Cls.uses_detection());
        assert!(Strategy::ClsHandOptimized.uses_detection());
        assert!(!Strategy::IsaBaseline.uses_detection());
        assert!(Strategy::ClsAggregation.pulse_per_instruction());
        assert!(!Strategy::Cls.pulse_per_instruction());
        assert_eq!(Strategy::all().len(), 5);
    }

    #[test]
    fn preset_pass_sequences_are_pinned() {
        // Golden recipes: drift in a preset's pass order is an API change and
        // must show up here, not as an unexplained latency diff.
        let expected: [(Strategy, &[&str]); 5] = [
            (
                Strategy::IsaBaseline,
                &["flatten", "route", "price", "schedule"],
            ),
            (
                Strategy::Cls,
                &[
                    "flatten",
                    "commutativity-detection",
                    "cls",
                    "route",
                    "price",
                    "schedule",
                ],
            ),
            (
                Strategy::AggregationOnly,
                &[
                    "flatten",
                    "commutativity-detection",
                    "route",
                    "aggregation",
                    "price",
                    "schedule",
                ],
            ),
            (
                Strategy::ClsAggregation,
                &[
                    "flatten",
                    "commutativity-detection",
                    "route",
                    "aggregation",
                    "final-cls",
                    "price",
                    "schedule",
                ],
            ),
            (
                Strategy::ClsHandOptimized,
                &[
                    "flatten",
                    "commutativity-detection",
                    "hand-optimization",
                    "cls",
                    "route",
                    "price",
                    "schedule",
                ],
            ),
        ];
        for (strategy, names) in expected {
            assert_eq!(
                strategy.pipeline().pass_names(),
                names,
                "{strategy:?} recipe drifted"
            );
        }
    }

    #[test]
    fn strategy_display_and_fromstr_round_trip() {
        for strategy in Strategy::all() {
            let rendered = strategy.to_string();
            assert_eq!(rendered, strategy.name());
            assert_eq!(
                rendered.parse::<Strategy>().unwrap(),
                strategy,
                "{rendered}"
            );
        }
        assert_eq!(
            "cls+aggregation".parse::<Strategy>(),
            Ok(Strategy::ClsAggregation)
        );
        assert_eq!(" ISA ".parse::<Strategy>(), Ok(Strategy::IsaBaseline));
        assert_eq!("agg".parse::<Strategy>(), Ok(Strategy::AggregationOnly));
        assert_eq!(
            "handopt".parse::<Strategy>(),
            Ok(Strategy::ClsHandOptimized)
        );
        let err = "warp-drive".parse::<Strategy>().unwrap_err();
        assert!(err.to_string().contains("warp-drive"));
    }

    #[test]
    fn compilation_reports_every_pass_with_timing() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let r = compiler.compile(
            &qaoa_triangle(),
            &CompilerOptions::strategy(Strategy::ClsAggregation),
        );
        // One report per pass of the preset, in execution order.
        let names: Vec<&str> = r.reports.iter().map(|s| s.pass).collect();
        assert_eq!(
            names,
            Strategy::ClsAggregation.pipeline().pass_names(),
            "reports must mirror the recipe"
        );
        assert!(r.report("flatten").is_some());
        assert!(r.report("aggregation").is_some());
        assert!(r.report("nonexistent").is_none());
        assert!(r.total_pass_time() > std::time::Duration::ZERO);
        // With aggregation enabled the commutativity-aware reordering runs on
        // the aggregated instructions ("final-cls"); without it, as "cls".
        let cls_only =
            compiler.compile(&qaoa_triangle(), &CompilerOptions::strategy(Strategy::Cls));
        assert!(cls_only.report("cls").is_some());
        assert!(cls_only.report("final-cls").is_none());
        assert_eq!(r.initial_layout.len(), 3);
        assert_eq!(r.final_layout.len(), 3);
        assert!(r.swap_count >= 1, "the triangle on a line needs a SWAP");
        assert!(r.aggregated_instruction_count() > 0);
        assert!(r.critical_path_latency_band().is_some());
    }

    #[test]
    fn schedule_is_consistent_with_reported_latency() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        for strategy in Strategy::all() {
            let r = compiler.compile(&qaoa_triangle(), &CompilerOptions::strategy(strategy));
            let recomputed = asap_schedule(&r.instructions, &r.latencies).makespan;
            assert!((recomputed - r.total_latency_ns).abs() < 1e-9);
            // Every latency is positive except possibly explicit identities.
            assert!(r.latencies.iter().all(|&l| l >= 0.0));
        }
    }

    #[test]
    fn width_limit_one_effectively_disables_multi_qubit_merges() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let narrow = compiler.compile(&qaoa_triangle(), &CompilerOptions::with_width(2));
        let wide = compiler.compile(&qaoa_triangle(), &CompilerOptions::with_width(10));
        assert!(wide.total_latency_ns <= narrow.total_latency_ns + 1e-9);
        assert!(narrow.instructions.iter().all(|i| i.width() <= 2));
    }

    #[test]
    fn try_compile_reports_undersized_devices_instead_of_panicking() {
        let model = CalibratedLatencyModel::asplos19();
        let device = Device::transmon(Topology::Linear(2));
        let compiler = Compiler::new(&device, &model);
        let err = compiler
            .try_compile(
                &qaoa_triangle(),
                &CompilerOptions::strategy(Strategy::IsaBaseline),
            )
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::DeviceTooSmall {
                needed: 3,
                available: 2
            }
        );
    }

    #[test]
    fn incomplete_custom_pipelines_are_reported() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let options = CompilerOptions::default();

        // Scheduling before pricing: the schedule pass itself objects.
        let unpriced_schedule = PipelineBuilder::new()
            .add(Flatten)
            .add(AsapSchedule)
            .build();
        assert_eq!(
            compiler
                .run_pipeline(&unpriced_schedule, &qaoa_triangle(), &options)
                .unwrap_err(),
            CompileError::MissingLatencies { pass: "schedule" }
        );

        // No schedule pass at all: the driver notices at packaging time.
        let unscheduled = PipelineBuilder::new()
            .add(Flatten)
            .add(Price::per_gate(GatePricing::Isa))
            .build();
        assert_eq!(
            compiler
                .run_pipeline(&unscheduled, &qaoa_triangle(), &options)
                .unwrap_err(),
            CompileError::IncompletePipeline {
                missing: "schedule"
            }
        );
    }

    #[test]
    fn mutating_passes_invalidate_stale_prices() {
        let model = CalibratedLatencyModel::asplos19();
        let device = line_device();
        let compiler = Compiler::new(&device, &model);
        let options = CompilerOptions::default();

        // Pricing before a mutating pass must never let the stale vector reach
        // the scheduler (Route inserts SWAPs, Cls reorders): the schedule pass
        // reports the missing prices instead of panicking or silently pairing
        // instructions with another instruction's latency.
        for mutated in [
            PipelineBuilder::new()
                .add(Flatten)
                .add(Price::per_gate(GatePricing::Isa))
                .add(Route)
                .add(AsapSchedule)
                .build(),
            PipelineBuilder::new()
                .add(Flatten)
                .add(DetectDiagonalBlocks)
                .add(Price::per_gate(GatePricing::Isa))
                .add(Cls::default())
                .add(AsapSchedule)
                .build(),
        ] {
            assert_eq!(
                compiler
                    .run_pipeline(&mutated, &qaoa_triangle(), &options)
                    .unwrap_err(),
                CompileError::MissingLatencies { pass: "schedule" },
                "{mutated:?}"
            );
        }

        // Re-pricing after the mutation recovers, and the fresh vector covers
        // the rewritten stream (including the inserted SWAPs).
        let repriced = PipelineBuilder::new()
            .add(Flatten)
            .add(Price::per_gate(GatePricing::Isa))
            .add(Route)
            .add(Price::per_gate(GatePricing::Isa))
            .add(AsapSchedule)
            .build();
        let r = compiler
            .run_pipeline(&repriced, &qaoa_triangle(), &options)
            .unwrap();
        assert_eq!(r.latencies.len(), r.instructions.len());
        let reference = compiler.compile(
            &qaoa_triangle(),
            &CompilerOptions::strategy(Strategy::IsaBaseline),
        );
        assert_eq!(
            r.total_latency_ns.to_bits(),
            reference.total_latency_ns.to_bits(),
            "redundant early pricing must not change the result"
        );
    }
}
