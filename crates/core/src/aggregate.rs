//! Instruction aggregation (§4.1, §4.3).
//!
//! After mapping and routing, the compiler grows multi-qubit aggregated
//! instructions by repeatedly merging *adjacent* instructions (parent/child on
//! every qubit path they share, with no interposed instruction touching either
//! side's qubits) when the action is **monotonic** — it does not lengthen the
//! circuit's critical path — and the latency model predicts a pulse-time
//! saving. The loop iterates with the latency model (the optimal-control unit
//! or its calibrated stand-in) until no more profitable monotonic actions
//! exist, the fixed-point structure the paper describes.
//!
//! The merge loop commits actions strictly in scan order — each action depends
//! on the schedule produced by the previous one — but the expensive part of a
//! step is *pricing* a candidate with the latency model, and candidate pricing
//! is side-effect free. [`run_with_pool`] therefore evaluates **speculatively
//! in parallel**: it collects the lookahead window of legal merge candidates
//! the serial scan would examine next, prices them in one batched model call
//! ([`LatencyModel::aggregate_latency_batch`]) across the pool, and then
//! replays the serial accept/reject decisions in scan order, committing
//! exactly the candidate the serial loop would have committed. The output is
//! provably bit-identical to the serial search; only wall-clock changes.
//! Speculation beyond the committed candidate can price merges the serial
//! loop never reaches — those solves land in the model's compute-once cache,
//! where later rounds usually reuse them.

use crate::instr::{AggregateInstruction, InstructionOrigin};
use crate::schedule::{alap_slacks, asap_schedule, Schedule};
use qcc_hw::LatencyModel;
use qcc_ir::Instruction;
use serde::{Deserialize, Serialize};
use threadpool::ThreadPool;

/// Speculative candidates collected per pool thread and priced in one batched
/// model call. One per thread keeps every worker busy during a round while
/// bounding wasted solves (candidates past the committed merge) to at most
/// `threads - 1` per commit — and those land in the model's cache, where
/// later rounds usually reuse them.
const SPECULATION_PER_THREAD: usize = 1;

/// Options of the aggregation pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationOptions {
    /// Maximum instruction width in qubits (the paper uses up to 10, bounded by
    /// the scalability of the optimal-control unit).
    pub max_width: usize,
    /// Maximum number of constituent gates per aggregated instruction.
    pub max_gates: usize,
    /// Safety cap on the number of merge actions (defaults to "unlimited":
    /// aggregation naturally stops when no monotonic action remains).
    pub max_merges: usize,
    /// Require every merge to strictly reduce the predicted pulse time of the
    /// pair (in addition to being monotonic).
    pub require_local_gain: bool,
    /// How far ahead (in list positions) to look for a merge partner. Partners
    /// are the *first* later instruction sharing a qubit, which in routed
    /// programs is almost always nearby; the window bounds the scan cost on
    /// very large circuits.
    pub search_window: usize,
}

impl Default for AggregationOptions {
    fn default() -> Self {
        Self {
            max_width: 10,
            max_gates: 96,
            max_merges: usize::MAX,
            require_local_gain: true,
            search_window: 64,
        }
    }
}

impl AggregationOptions {
    /// Options with a specific width limit (used for the Fig. 10 sweep).
    pub fn with_width(max_width: usize) -> Self {
        Self {
            max_width,
            ..Self::default()
        }
    }
}

/// Statistics reported by the aggregation pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AggregationStats {
    /// Number of merge actions performed.
    pub merges: usize,
    /// Number of scan passes executed.
    pub passes: usize,
    /// Makespan before aggregation (ns).
    pub makespan_before: f64,
    /// Makespan after aggregation (ns).
    pub makespan_after: f64,
}

/// Runs the aggregation loop on a routed instruction sequence.
///
/// Merging instruction `j` into instruction `i < j` is allowed when
/// (action space, §4.1):
/// * they share at least one qubit,
/// * no instruction between them touches any qubit of either (`i` is the
///   parent of `j` on every shared path, and moving `j`'s gates up to `i`
///   only crosses trivially-commuting instructions),
/// * the union width and gate count respect the configured limits,
///
/// and it is performed when it is *monotonic* (§4.3): the rescheduled circuit
/// is no longer than before, verified exactly by recomputing the makespan.
pub fn run(
    instrs: &[AggregateInstruction],
    model: &dyn LatencyModel,
    options: &AggregationOptions,
) -> (Vec<AggregateInstruction>, AggregationStats) {
    run_with_pool(instrs, model, options, &ThreadPool::serial())
}

/// [`run`] with an explicit thread pool.
///
/// The initial latency vectoring (one independent model query per routed
/// instruction) and the candidate pricing inside the merge loop both go
/// through [`LatencyModel::aggregate_latency_batch`] on the pool. With more
/// than one thread and a model that declares pricing expensive
/// ([`parallel_pricing`](LatencyModel::parallel_pricing)), the merge loop
/// runs the speculative-parallel search (see the module docs): candidates
/// are priced concurrently, commits replay the serial decision order, and
/// the result is bit-identical to the serial search. With a pool of one
/// thread (e.g. `QCC_THREADS=1`) or a cheap analytic model, the original
/// serial loop runs inline — no candidate collection, no batching, no
/// spawns.
pub fn run_with_pool(
    instrs: &[AggregateInstruction],
    model: &dyn LatencyModel,
    options: &AggregationOptions,
    pool: &ThreadPool,
) -> (Vec<AggregateInstruction>, AggregationStats) {
    let current: Vec<AggregateInstruction> = instrs.to_vec();
    // Latencies are maintained incrementally: only the instruction produced by
    // a merge is re-priced, so the model is queried O(instructions + merges)
    // times rather than O(instructions · merges).
    let latencies: Vec<f64> = {
        let queries: Vec<&[Instruction]> =
            current.iter().map(|i| i.constituents.as_slice()).collect();
        model.aggregate_latency_batch(&queries, pool)
    };
    let schedule = asap_schedule(&current, &latencies);
    let slacks = alap_slacks(&current, &latencies, &schedule);
    let mut stats = AggregationStats {
        makespan_before: schedule.makespan,
        ..Default::default()
    };
    let mut state = SearchState {
        current,
        latencies,
        schedule,
        slacks,
    };

    // Speculation only pays when a pricing query is expensive enough to fan
    // out: with one thread, or a model whose queries are cheap arithmetic
    // (`parallel_pricing() == false`, where the batch prices serially
    // anyway), the discarded lookahead candidates would be pure overhead —
    // run the original serial loop inline instead.
    if pool.threads() <= 1 || !model.parallel_pricing() {
        merge_loop_serial(&mut state, model, options, &mut stats);
    } else {
        merge_loop_speculative(&mut state, model, options, pool, &mut stats);
    }

    stats.makespan_after = state.schedule.makespan;
    (state.current, stats)
}

/// Mutable state of the merge search: the instruction stream, its prices, and
/// the schedule artifacts the accept/reject checks consult. Frozen between
/// commits — which is what makes speculative pricing safe.
struct SearchState {
    current: Vec<AggregateInstruction>,
    latencies: Vec<f64>,
    schedule: Schedule,
    slacks: Vec<f64>,
}

/// The serial scan's merge candidate at position `i`, if any: the first later
/// instruction within the search window sharing a qubit, provided the merge
/// passes every model-free legality check (no interposed dependence, width
/// and gate-count limits). Pure — prices nothing, mutates nothing.
fn legal_candidate(
    current: &[AggregateInstruction],
    i: usize,
    options: &AggregationOptions,
) -> Option<(usize, AggregateInstruction)> {
    let n = current.len();
    // Partner: the first later instruction sharing a qubit with i, searched
    // within the window.
    let mut partner = None;
    for j in (i + 1)..n.min(i + 1 + options.search_window) {
        if !current[i].shared_qubits(&current[j]).is_empty() {
            partner = Some(j);
            break;
        }
    }
    let j = partner?;

    // No instruction between i and j may touch any qubit of j (they already
    // touch none of i's qubits, or one of them would have been the partner).
    let b_qubits = &current[j].qubits;
    if current[(i + 1)..j]
        .iter()
        .any(|k| k.qubits.iter().any(|q| b_qubits.contains(q)))
    {
        return None;
    }

    // Width / size limits.
    let mut union = current[i].qubits.clone();
    for q in b_qubits {
        if !union.contains(q) {
            union.push(*q);
        }
    }
    if union.len() > options.max_width
        || current[i].gate_count() + current[j].gate_count() > options.max_gates
    {
        return None;
    }

    Some((j, current[i].merge(&current[j])))
}

/// Replays the serial accept/reject decision for one priced candidate:
/// local-gain threshold, conservative slack filter, then the exact
/// reschedule-and-revert monotonicity check. Returns `true` when the merge
/// was committed (state mutated), `false` when rejected (state untouched).
fn try_commit(
    state: &mut SearchState,
    i: usize,
    j: usize,
    merged: AggregateInstruction,
    lat_merged: f64,
    options: &AggregationOptions,
) -> bool {
    let SearchState {
        current,
        latencies,
        schedule,
        slacks,
    } = state;
    let local_gain = latencies[i] + latencies[j] - lat_merged;
    if options.require_local_gain && local_gain <= 1e-9 {
        return false;
    }

    // Fast conservative filter before paying for an exact reschedule: the
    // merged instruction runs from i's start for lat_merged; every qubit it
    // occupies longer than before must have that much slack in its next user.
    let finish_merged = schedule.entries[i].start + lat_merged;
    if finish_merged > schedule.makespan + 1e-9 {
        return false;
    }
    for &q in &merged.qubits {
        let prev_release = if current[j].acts_on(q) {
            schedule.entries[j].finish()
        } else {
            schedule.entries[i].finish()
        };
        let delay = finish_merged - prev_release;
        if delay <= 1e-9 {
            continue;
        }
        let next_user = current
            .iter()
            .enumerate()
            .skip(j + 1)
            .find(|(_, inst)| inst.acts_on(q));
        if let Some((k, _)) = next_user {
            if delay > slacks[k] + 1e-9 {
                return false;
            }
        }
    }

    // Exact monotonicity check: apply the merge in place, recompute the
    // makespan, and revert when it grew.
    let saved_i = std::mem::replace(&mut current[i], merged);
    let saved_j = current.remove(j);
    let saved_lat_i = latencies[i];
    let saved_lat_j = latencies.remove(j);
    latencies[i] = lat_merged;
    let new_schedule = asap_schedule(current, latencies);
    if new_schedule.makespan > schedule.makespan + 1e-9 {
        latencies[i] = saved_lat_i;
        latencies.insert(j, saved_lat_j);
        current[i] = saved_i;
        current.insert(j, saved_j);
        return false;
    }

    *schedule = new_schedule;
    *slacks = alap_slacks(current, latencies, schedule);
    true
}

/// The original sequential merge loop: scan, price one candidate at a time,
/// commit or advance. Runs when the pool has a single thread, so the
/// `QCC_THREADS=1` path has zero speculation or batching overhead and prices
/// candidates in exactly the historical order.
fn merge_loop_serial(
    state: &mut SearchState,
    model: &dyn LatencyModel,
    options: &AggregationOptions,
    stats: &mut AggregationStats,
) {
    loop {
        stats.passes += 1;
        let mut performed = false;

        let mut i = 0usize;
        while i < state.current.len() {
            let Some((j, merged)) = legal_candidate(&state.current, i, options) else {
                i += 1;
                continue;
            };
            let lat_merged = model.aggregate_latency(&merged.constituents);
            if try_commit(state, i, j, merged, lat_merged, options) {
                stats.merges += 1;
                performed = true;
                if stats.merges >= options.max_merges {
                    break;
                }
                // Stay at position i: the merged instruction may merge again
                // with its next partner.
            } else {
                i += 1;
            }
        }

        if !performed || stats.merges >= options.max_merges {
            break;
        }
    }
}

/// The speculative-parallel merge loop. Each round collects the window of
/// legal candidates the serial scan would price next — all against the same
/// frozen state, since nothing mutates between commits — prices them in one
/// batched model call across the pool, and replays the serial accept/reject
/// decisions in scan order. The first accepted candidate is committed and the
/// rest of the window is discarded (their prices stay in the model's cache);
/// the scan resumes at the committed position, exactly as the serial loop
/// does. Commits therefore happen in the identical order with identical
/// prices, making the output bit-identical to [`merge_loop_serial`].
fn merge_loop_speculative(
    state: &mut SearchState,
    model: &dyn LatencyModel,
    options: &AggregationOptions,
    pool: &ThreadPool,
    stats: &mut AggregationStats,
) {
    let window = pool.threads().saturating_mul(SPECULATION_PER_THREAD).max(1);
    loop {
        stats.passes += 1;
        let mut performed = false;

        let mut i = 0usize;
        while i < state.current.len() {
            // Collect the next `window` candidates of the frozen state,
            // remembering where the scan stopped.
            let mut candidates: Vec<(usize, usize, AggregateInstruction)> =
                Vec::with_capacity(window);
            let mut pos = i;
            while pos < state.current.len() && candidates.len() < window {
                if let Some((j, merged)) = legal_candidate(&state.current, pos, options) {
                    candidates.push((pos, j, merged));
                }
                pos += 1;
            }
            if candidates.is_empty() {
                // Scan exhausted with nothing to price; the pass is over.
                break;
            }

            let prices: Vec<f64> = {
                let queries: Vec<&[Instruction]> = candidates
                    .iter()
                    .map(|(_, _, merged)| merged.constituents.as_slice())
                    .collect();
                model.aggregate_latency_batch(&queries, pool)
            };

            let mut committed = None;
            for ((ci, cj, merged), &lat_merged) in candidates.iter().zip(&prices) {
                if try_commit(state, *ci, *cj, merged.clone(), lat_merged, options) {
                    committed = Some(*ci);
                    break;
                }
            }
            match committed {
                Some(ci) => {
                    stats.merges += 1;
                    performed = true;
                    if stats.merges >= options.max_merges {
                        break;
                    }
                    // Stay at the committed position — the merged instruction
                    // may merge again — and re-speculate against the new state.
                    i = ci;
                }
                // Every candidate rejected with the state unchanged: the
                // serial scan would now be past the last collected position.
                None => i = pos,
            }
        }

        if !performed || stats.merges >= options.max_merges {
            break;
        }
    }
}

/// Marks every multi-gate instruction produced by the pass as `Aggregated`
/// (single-gate instructions keep their origin). Mostly useful for reporting.
pub fn finalize_origins(instrs: &mut [AggregateInstruction]) {
    for inst in instrs.iter_mut() {
        if inst.gate_count() > 1 && inst.origin == InstructionOrigin::Single {
            inst.origin = InstructionOrigin::Aggregated;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use qcc_hw::CalibratedLatencyModel;
    use qcc_ir::{Circuit, Gate, Instruction};

    fn single(g: Gate, qs: &[usize]) -> AggregateInstruction {
        AggregateInstruction::from_gate(Instruction::new(g, qs.to_vec()))
    }

    #[test]
    fn serial_chain_is_aggregated() {
        // A strictly serial chain on 2 qubits should collapse into one
        // instruction (within the width limit).
        let instrs = vec![
            single(Gate::H, &[0]),
            single(Gate::Cnot, &[0, 1]),
            single(Gate::Rz(0.8), &[1]),
            single(Gate::Cnot, &[0, 1]),
            single(Gate::H, &[0]),
        ];
        let model = CalibratedLatencyModel::asplos19();
        let (out, stats) = run(&instrs, &model, &AggregationOptions::default());
        assert!(out.len() < instrs.len());
        assert!(stats.merges >= 2);
        assert!(stats.makespan_after < stats.makespan_before);
        // Semantics preserved.
        let before = frontend::to_circuit(&instrs, 2).unitary();
        let after = frontend::to_circuit(&out, 2).unitary();
        assert!(after.approx_eq_up_to_phase(&before, 1e-9));
    }

    #[test]
    fn width_limit_is_respected() {
        let instrs: Vec<AggregateInstruction> =
            (0..5).map(|i| single(Gate::Cnot, &[i, i + 1])).collect();
        let model = CalibratedLatencyModel::asplos19();
        let options = AggregationOptions::with_width(3);
        let (out, _) = run(&instrs, &model, &options);
        assert!(out.iter().all(|i| i.width() <= 3), "{out:?}");
    }

    #[test]
    fn aggregation_never_increases_makespan() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(Gate::H, &[q]);
        }
        for i in 0..3 {
            c.push(Gate::Cnot, &[i, i + 1]);
            c.push(Gate::Rz(0.5), &[i + 1]);
            c.push(Gate::Cnot, &[i, i + 1]);
        }
        let instrs = frontend::run(&c);
        let model = CalibratedLatencyModel::asplos19();
        let (_, stats) = run(&instrs, &model, &AggregationOptions::default());
        assert!(stats.makespan_after <= stats.makespan_before + 1e-9);
        assert!(stats.makespan_after < stats.makespan_before);
    }

    #[test]
    fn merging_preserves_semantics_with_interleaved_instructions() {
        // An unrelated gate sits between two mergeable instructions; merging
        // hops over it, which is only legal because it shares no qubits.
        let instrs = vec![
            single(Gate::Cnot, &[0, 1]),
            single(Gate::Rx(0.9), &[3]),
            single(Gate::Rz(0.4), &[1]),
            single(Gate::Cnot, &[0, 1]),
        ];
        let model = CalibratedLatencyModel::asplos19();
        let (out, stats) = run(&instrs, &model, &AggregationOptions::default());
        assert!(stats.merges >= 1);
        let before = frontend::to_circuit(&instrs, 4).unitary();
        let after = frontend::to_circuit(&out, 4).unitary();
        assert!(after.approx_eq_up_to_phase(&before, 1e-9));
    }

    #[test]
    fn merge_never_hops_over_a_dependence() {
        // Rz on qubit 2 sits between CNOT(0,1) and CNOT(1,2): the direct merge
        // of the two CNOTs is forbidden (it would move CNOT(1,2) before the
        // Rz). The pass may instead absorb the Rz into the second CNOT first,
        // which keeps the original gate order — either way the unitary must be
        // exactly preserved, including the non-commuting Rz/CNOT pair.
        let instrs = vec![
            single(Gate::Cnot, &[0, 1]),
            single(Gate::Rz(0.7), &[2]),
            single(Gate::Cnot, &[1, 2]),
        ];
        let model = CalibratedLatencyModel::asplos19();
        let (out, _) = run(&instrs, &model, &AggregationOptions::default());
        let before = frontend::to_circuit(&instrs, 3).unitary();
        let after = frontend::to_circuit(&out, 3).unitary();
        assert!(after.approx_eq_up_to_phase(&before, 1e-9));
        // The flattened gate order must keep the Rz before the second CNOT.
        let flat: Vec<&Instruction> = out.iter().flat_map(|i| i.constituents.iter()).collect();
        let rz_pos = flat.iter().position(|g| g.gate == Gate::Rz(0.7)).unwrap();
        let second_cnot_pos = flat
            .iter()
            .rposition(|g| g.gate == Gate::Cnot && g.qubits == vec![1, 2])
            .unwrap();
        assert!(rz_pos < second_cnot_pos);
    }

    #[test]
    fn parallel_structure_is_not_serialized() {
        // Two independent 2-qubit chains: merging across them is impossible
        // (no shared qubits), and aggregation must keep them parallel.
        let instrs = vec![
            single(Gate::Cnot, &[0, 1]),
            single(Gate::Cnot, &[2, 3]),
            single(Gate::Rz(0.4), &[1]),
            single(Gate::Rz(0.4), &[3]),
        ];
        let model = CalibratedLatencyModel::asplos19();
        let (out, stats) = run(&instrs, &model, &AggregationOptions::default());
        for inst in &out {
            assert!(
                !(inst.acts_on(0) && inst.acts_on(2)),
                "chains were merged: {inst}"
            );
        }
        assert!(stats.makespan_after <= stats.makespan_before + 1e-9);
    }

    #[test]
    fn no_gain_no_merge_when_required() {
        let instrs = vec![single(Gate::Rz(0.0), &[0]), single(Gate::Rz(0.0), &[0])];
        let model = CalibratedLatencyModel::asplos19();
        let (out, stats) = run(&instrs, &model, &AggregationOptions::default());
        assert_eq!(stats.merges, 0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn gate_count_is_always_preserved() {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.push(Gate::H, &[q]);
        }
        for i in 0..4 {
            c.push(Gate::Cnot, &[i, i + 1]);
            c.push(Gate::Rz(0.2 * i as f64 + 0.1), &[i + 1]);
            c.push(Gate::Cnot, &[i, i + 1]);
        }
        for q in 0..5 {
            c.push(Gate::Rx(1.0), &[q]);
        }
        let instrs = frontend::run(&c);
        let gates_before: usize = instrs.iter().map(|i| i.gate_count()).sum();
        let model = CalibratedLatencyModel::asplos19();
        let (out, _) = run(&instrs, &model, &AggregationOptions::default());
        let gates_after: usize = out.iter().map(|i| i.gate_count()).sum();
        assert_eq!(gates_before, gates_after);
    }

    #[test]
    fn max_merges_caps_the_loop() {
        let instrs: Vec<AggregateInstruction> =
            (0..6).map(|_| single(Gate::Cnot, &[0, 1])).collect();
        let model = CalibratedLatencyModel::asplos19();
        let options = AggregationOptions {
            max_merges: 2,
            ..AggregationOptions::default()
        };
        let (_, stats) = run(&instrs, &model, &options);
        assert_eq!(stats.merges, 2);
    }
}
