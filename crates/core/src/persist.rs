//! Serialization for the persistent cache tier.
//!
//! The container format — versioned header, length-prefixed checksummed
//! records, atomic write-temp-then-rename — lives in [`qcc_hw::persist`] and
//! is re-exported here; this module adds the [`CompilationResult`] codec the
//! [`CompileService`](crate::CompileService) result cache spills through, and
//! the strict `QCC_CACHE_DIR` environment parsing used by examples and
//! benches.
//!
//! # Snapshot lifecycle
//!
//! A service snapshots into a *directory*, one file per cache:
//! `grape-latency-cache-<hex16>.qccsnap` for the latency model's solve cache
//! (when the model has one) and `compile-results-<hex16>.qccsnap` for the
//! compile-result cache. The hex token is the FNV-1a 64 hash of each cache's
//! own fingerprint namespace — backend identity plus, for the result cache,
//! the model's solver fingerprint — so any number of fleet lanes can share
//! one directory without aliasing. Loads are strict underneath
//! ([`PersistError`] naming any mismatch) with degrade-to-cold wrappers on
//! top: a missing, corrupt, truncated, foreign-version, or
//! differently-calibrated snapshot simply leaves the cache empty. See the
//! [`qcc_hw::persist`] module docs for the byte-level format and the version
//! policy.
//!
//! The codec is layered on the same injective little-endian `encode_into`
//! encodings the cache keys use: integers little-endian, floats as raw
//! `f64::to_bits` patterns (bit-exact round-trips, NaN included),
//! instructions via [`Instruction::encode_into`]. Decoding is total: any
//! malformed stream returns a [`DecodeError`], never panics, and
//! [`decode_result`] rejects trailing bytes so a record either round-trips
//! bit-identically or fails loudly.

use crate::aggregate::AggregationStats;
use crate::instr::{AggregateInstruction, InstructionOrigin};
use crate::mapping::Layout;
use crate::passes::{intern_pass_name, PassReport};
use crate::pipeline::{CompilationResult, Strategy};
use crate::schedule::{Schedule, ScheduledInstruction};
use qcc_hw::PricingStats;
use qcc_ir::{ByteCursor, DecodeError, Instruction};
use std::path::PathBuf;
use std::time::Duration;

pub use qcc_hw::persist::{
    fnv64, hex16, load_records, parse, write_atomic, PersistentCache, SnapshotWriter,
    FORMAT_VERSION, MAGIC, SNAPSHOT_EXTENSION,
};
pub use qcc_hw::PersistError;

/// Snapshot kind tag of the compile-result cache (see [`qcc_hw::persist`]).
pub const COMPILE_SNAPSHOT_KIND: &str = "compile-result-cache";

fn strategy_tag(s: Strategy) -> u8 {
    match s {
        Strategy::IsaBaseline => 0,
        Strategy::Cls => 1,
        Strategy::AggregationOnly => 2,
        Strategy::ClsAggregation => 3,
        Strategy::ClsHandOptimized => 4,
    }
}

fn strategy_from_tag(tag: u8, offset: usize) -> Result<Strategy, DecodeError> {
    Ok(match tag {
        0 => Strategy::IsaBaseline,
        1 => Strategy::Cls,
        2 => Strategy::AggregationOnly,
        3 => Strategy::ClsAggregation,
        4 => Strategy::ClsHandOptimized,
        _ => {
            return Err(DecodeError {
                what: "strategy tag",
                offset,
            })
        }
    })
}

fn origin_tag(o: InstructionOrigin) -> u8 {
    match o {
        InstructionOrigin::Single => 0,
        InstructionOrigin::RoutingSwap => 1,
        InstructionOrigin::DiagonalBlock => 2,
        InstructionOrigin::Aggregated => 3,
        InstructionOrigin::HandOptimized => 4,
    }
}

fn origin_from_tag(tag: u8, offset: usize) -> Result<InstructionOrigin, DecodeError> {
    Ok(match tag {
        0 => InstructionOrigin::Single,
        1 => InstructionOrigin::RoutingSwap,
        2 => InstructionOrigin::DiagonalBlock,
        3 => InstructionOrigin::Aggregated,
        4 => InstructionOrigin::HandOptimized,
        _ => {
            return Err(DecodeError {
                what: "instruction origin tag",
                offset,
            })
        }
    })
}

fn push_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn encode_aggregate(inst: &AggregateInstruction, out: &mut Vec<u8>) {
    push_usize(out, inst.constituents.len());
    for c in &inst.constituents {
        c.encode_into(out);
    }
    push_usize(out, inst.qubits.len());
    for &q in &inst.qubits {
        push_usize(out, q);
    }
    out.push(origin_tag(inst.origin));
}

fn decode_aggregate(cur: &mut ByteCursor<'_>) -> Result<AggregateInstruction, DecodeError> {
    let n_constituents = cur.len("aggregate constituent count")?;
    let mut constituents = Vec::with_capacity(n_constituents.min(1024));
    for _ in 0..n_constituents {
        constituents.push(Instruction::decode_from(cur)?);
    }
    let n_qubits = cur.len("aggregate qubit count")?;
    let mut qubits = Vec::with_capacity(n_qubits.min(1024));
    for _ in 0..n_qubits {
        qubits.push(cur.len("aggregate qubit index")?);
    }
    let tag_offset = cur.offset();
    let origin = origin_from_tag(cur.u8("instruction origin tag")?, tag_offset)?;
    Ok(AggregateInstruction {
        constituents,
        qubits,
        origin,
    })
}

fn encode_layout(layout: &Layout, out: &mut Vec<u8>) {
    push_usize(out, layout.physical.len());
    for &p in &layout.physical {
        push_usize(out, p);
    }
}

fn decode_layout(cur: &mut ByteCursor<'_>) -> Result<Layout, DecodeError> {
    let n = cur.len("layout length")?;
    let mut physical = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        physical.push(cur.len("layout physical index")?);
    }
    Ok(Layout { physical })
}

/// Appends the bespoke binary encoding of a [`CompilationResult`] to `out`.
///
/// Every field round-trips bit-identically through [`decode_result`]: floats
/// as raw bit patterns, pass wall-clock times at full nanosecond precision,
/// pricing deltas intact. The encoding is self-delimiting, so results can be
/// concatenated (the snapshot container stores one per record anyway).
pub fn encode_result(result: &CompilationResult, out: &mut Vec<u8>) {
    out.push(strategy_tag(result.strategy));
    push_usize(out, result.instructions.len());
    for inst in &result.instructions {
        encode_aggregate(inst, out);
    }
    push_usize(out, result.latencies.len());
    for &l in &result.latencies {
        push_f64(out, l);
    }
    push_usize(out, result.schedule.entries.len());
    for e in &result.schedule.entries {
        push_usize(out, e.index);
        push_f64(out, e.start);
        push_f64(out, e.duration);
    }
    push_f64(out, result.schedule.makespan);
    push_f64(out, result.total_latency_ns);
    push_usize(out, result.swap_count);
    push_usize(out, result.aggregation.merges);
    push_usize(out, result.aggregation.passes);
    push_f64(out, result.aggregation.makespan_before);
    push_f64(out, result.aggregation.makespan_after);
    push_usize(out, result.reports.len());
    for r in &result.reports {
        push_usize(out, r.pass.len());
        out.extend_from_slice(r.pass.as_bytes());
        push_usize(out, r.instructions);
        push_usize(out, r.gates);
        // Pass wall times fit u64 nanoseconds for ~584 years.
        out.extend_from_slice(&(r.wall_time.as_nanos() as u64).to_le_bytes());
        match &r.pricing {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                push_usize(out, p.queries);
                push_usize(out, p.solves);
            }
        }
    }
    encode_layout(&result.initial_layout, out);
    encode_layout(&result.final_layout, out);
    match &result.partition {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            push_usize(out, p.requested_regions);
            push_usize(out, p.regions.len());
            for region in &p.regions {
                push_usize(out, region.qubits.len());
                for &q in &region.qubits {
                    push_usize(out, q);
                }
                push_usize(out, region.instructions);
                push_usize(out, region.gates);
                out.extend_from_slice(&(region.wall_time.as_nanos() as u64).to_le_bytes());
            }
            push_f64(out, p.cut_weight);
            push_usize(out, p.cut_instructions);
            out.extend_from_slice(&(p.stitch_wall_time.as_nanos() as u64).to_le_bytes());
        }
    }
}

/// Decodes one [`CompilationResult`] written by [`encode_result`], consuming
/// exactly its bytes from `cur`. Any truncation, foreign tag, or unknown pass
/// name is a [`DecodeError`] — the decoder never panics and never returns a
/// partially-read result.
pub fn decode_result(cur: &mut ByteCursor<'_>) -> Result<CompilationResult, DecodeError> {
    let tag_offset = cur.offset();
    let strategy = strategy_from_tag(cur.u8("strategy tag")?, tag_offset)?;
    let n_instructions = cur.len("instruction count")?;
    let mut instructions = Vec::with_capacity(n_instructions.min(4096));
    for _ in 0..n_instructions {
        instructions.push(decode_aggregate(cur)?);
    }
    let n_latencies = cur.len("latency count")?;
    let mut latencies = Vec::with_capacity(n_latencies.min(4096));
    for _ in 0..n_latencies {
        latencies.push(cur.f64("latency value")?);
    }
    let n_entries = cur.len("schedule entry count")?;
    let mut entries = Vec::with_capacity(n_entries.min(4096));
    for _ in 0..n_entries {
        entries.push(ScheduledInstruction {
            index: cur.len("schedule entry index")?,
            start: cur.f64("schedule entry start")?,
            duration: cur.f64("schedule entry duration")?,
        });
    }
    let makespan = cur.f64("schedule makespan")?;
    let total_latency_ns = cur.f64("total latency")?;
    let swap_count = cur.len("swap count")?;
    let aggregation = AggregationStats {
        merges: cur.len("aggregation merges")?,
        passes: cur.len("aggregation passes")?,
        makespan_before: cur.f64("aggregation makespan before")?,
        makespan_after: cur.f64("aggregation makespan after")?,
    };
    let n_reports = cur.len("report count")?;
    let mut reports = Vec::with_capacity(n_reports.min(64));
    for _ in 0..n_reports {
        let name_len = cur.len("pass name length")?;
        let name_offset = cur.offset();
        let name_bytes = cur.bytes(name_len, "pass name")?;
        let name = std::str::from_utf8(name_bytes).map_err(|_| DecodeError {
            what: "pass name (invalid utf-8)",
            offset: name_offset,
        })?;
        let pass = intern_pass_name(name).ok_or(DecodeError {
            what: "pass name (unknown pass)",
            offset: name_offset,
        })?;
        let instructions = cur.len("pass instruction count")?;
        let gates = cur.len("pass gate count")?;
        let wall_time = Duration::from_nanos(cur.u64("pass wall time")?);
        let pricing_offset = cur.offset();
        let pricing = match cur.u8("pricing flag")? {
            0 => None,
            1 => Some(PricingStats {
                queries: cur.len("pricing queries")?,
                solves: cur.len("pricing solves")?,
            }),
            _ => {
                return Err(DecodeError {
                    what: "pricing flag",
                    offset: pricing_offset,
                })
            }
        };
        reports.push(PassReport {
            pass,
            instructions,
            gates,
            wall_time,
            pricing,
        });
    }
    let initial_layout = decode_layout(cur)?;
    let final_layout = decode_layout(cur)?;
    let partition_offset = cur.offset();
    let partition = match cur.u8("partition flag")? {
        0 => None,
        1 => {
            let requested_regions = cur.len("partition requested regions")?;
            let n_regions = cur.len("partition region count")?;
            let mut regions = Vec::with_capacity(n_regions.min(1024));
            for _ in 0..n_regions {
                let n_qubits = cur.len("region qubit count")?;
                let mut qubits = Vec::with_capacity(n_qubits.min(1024));
                for _ in 0..n_qubits {
                    qubits.push(cur.len("region qubit index")?);
                }
                regions.push(crate::partition::RegionTelemetry {
                    qubits,
                    instructions: cur.len("region instruction count")?,
                    gates: cur.len("region gate count")?,
                    wall_time: Duration::from_nanos(cur.u64("region wall time")?),
                });
            }
            Some(crate::partition::PartitionSummary {
                requested_regions,
                regions,
                cut_weight: cur.f64("partition cut weight")?,
                cut_instructions: cur.len("partition cut instruction count")?,
                stitch_wall_time: Duration::from_nanos(cur.u64("partition stitch wall time")?),
            })
        }
        _ => {
            return Err(DecodeError {
                what: "partition flag",
                offset: partition_offset,
            })
        }
    };
    Ok(CompilationResult {
        strategy,
        instructions,
        latencies,
        schedule: Schedule { entries, makespan },
        total_latency_ns,
        swap_count,
        aggregation,
        reports,
        initial_layout,
        final_layout,
        partition,
    })
}

/// Parses a `QCC_CACHE_DIR`-style value into a snapshot directory. Strict:
/// `None`/unset means "persistence off" (`Ok(None)`), but a *set* value must
/// be non-empty, non-whitespace, and must not name an existing
/// non-directory, with errors naming the offending value.
pub fn cache_dir_from(value: Option<&str>) -> Result<Option<PathBuf>, String> {
    let Some(raw) = value else {
        return Ok(None);
    };
    if raw.trim().is_empty() {
        return Err(format!(
            "QCC_CACHE_DIR must name a directory, got empty value {raw:?}"
        ));
    }
    let path = PathBuf::from(raw);
    if path.exists() && !path.is_dir() {
        return Err(format!(
            "QCC_CACHE_DIR must name a directory, but {raw:?} is a file"
        ));
    }
    Ok(Some(path))
}

/// Reads `QCC_CACHE_DIR` through [`cache_dir_from`].
///
/// # Panics
///
/// Panics with the offending value when the variable is set but invalid —
/// a misconfigured cache dir should fail loudly at boot, not silently run
/// cold forever.
pub fn cache_dir_from_env() -> Option<PathBuf> {
    let value = std::env::var("QCC_CACHE_DIR").ok();
    cache_dir_from(value.as_deref()).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_dir_parsing_is_strict_and_names_the_value() {
        assert_eq!(cache_dir_from(None), Ok(None));
        assert_eq!(
            cache_dir_from(Some("/tmp/qcc-cache")),
            Ok(Some(PathBuf::from("/tmp/qcc-cache")))
        );
        let err = cache_dir_from(Some("")).unwrap_err();
        assert!(
            err.contains("QCC_CACHE_DIR") && err.contains("\"\""),
            "{err}"
        );
        let err = cache_dir_from(Some("   ")).unwrap_err();
        assert!(err.contains("\"   \""), "{err}");
        // An existing regular file is not a usable cache directory.
        let file = std::env::temp_dir().join(format!("qcc-cachedir-{}", std::process::id()));
        std::fs::write(&file, b"x").unwrap();
        let err = cache_dir_from(Some(file.to_str().unwrap())).unwrap_err();
        assert!(err.contains("is a file"), "{err}");
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn unknown_pass_names_are_rejected() {
        assert_eq!(crate::passes::intern_pass_name("route"), Some("route"));
        assert_eq!(crate::passes::intern_pass_name("not-a-pass"), None);
    }

    #[test]
    fn partition_telemetry_round_trips_through_the_codec() {
        use crate::partition::PartitionOptions;
        use crate::pipeline::{Compiler, CompilerOptions, Strategy};
        use qcc_hw::{CalibratedLatencyModel, Device};
        use qcc_ir::{Circuit, Gate};

        let mut circuit = Circuit::new(4);
        for q in 0..4 {
            circuit.push(Gate::H, &[q]);
        }
        for q in 0..3 {
            circuit.push(Gate::Cnot, &[q, q + 1]);
        }
        let device = Device::transmon_line(4);
        let model = CalibratedLatencyModel::new(device.limits);
        let compiler = Compiler::new(&device, &model);
        let options = CompilerOptions::strategy(Strategy::ClsAggregation);
        let result = compiler
            .compile_partitioned(&circuit, &options, &PartitionOptions::new(2))
            .expect("partitioned compile succeeds");
        let summary = result.partition.as_ref().expect("telemetry attached");
        assert_eq!(summary.requested_regions, 2);

        let mut bytes = Vec::new();
        encode_result(&result, &mut bytes);
        let mut cur = ByteCursor::new(&bytes);
        let decoded = decode_result(&mut cur).expect("decodes cleanly");
        assert_eq!(cur.remaining(), 0, "self-delimiting");
        assert_eq!(decoded.partition.as_ref(), Some(summary));
        // A plain result still decodes to `partition: None`.
        let mut plain = result.clone();
        plain.partition = None;
        let mut plain_bytes = Vec::new();
        encode_result(&plain, &mut plain_bytes);
        let decoded_plain =
            decode_result(&mut ByteCursor::new(&plain_bytes)).expect("decodes cleanly");
        assert!(decoded_plain.partition.is_none());
    }
}
