//! Qubit mapping and topological-constraint resolution (§3.4.1).
//!
//! The initial placement bisects the qubit-interaction graph recursively (the
//! in-tree substitute for METIS) so frequently-interacting program qubits land
//! on nearby physical qubits. Routing then walks the instruction sequence and
//! prepends SWAP chains whenever a two-qubit instruction straddles
//! non-neighbouring physical qubits, updating the layout as it goes.

use crate::instr::AggregateInstruction;
use qcc_graph::{partition, Graph};
use qcc_hw::Topology;
use serde::{Deserialize, Serialize};

/// A program-to-physical qubit assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// `physical[l]` is the physical qubit holding logical qubit `l`.
    pub physical: Vec<usize>,
}

impl Layout {
    /// The identity layout on `n` qubits.
    pub fn identity(n: usize) -> Self {
        Self {
            physical: (0..n).collect(),
        }
    }

    /// Number of logical qubits.
    pub fn len(&self) -> usize {
        self.physical.len()
    }

    /// `true` when the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.physical.is_empty()
    }

    /// Physical qubit of logical qubit `l`.
    pub fn physical_of(&self, l: usize) -> usize {
        self.physical[l]
    }

    /// Logical qubit held by physical qubit `p`, if any.
    pub fn logical_of(&self, p: usize) -> Option<usize> {
        self.physical.iter().position(|&x| x == p)
    }

    /// Swaps the logical qubits held by two physical qubits (used as routing
    /// SWAPs are inserted).
    pub fn swap_physical(&mut self, pa: usize, pb: usize) {
        let la = self.logical_of(pa);
        let lb = self.logical_of(pb);
        if let Some(la) = la {
            self.physical[la] = pb;
        }
        if let Some(lb) = lb {
            self.physical[lb] = pa;
        }
    }
}

/// Builds the qubit-interaction graph of an instruction sequence: vertices are
/// logical qubits, edge weights count multi-qubit instructions per pair.
pub fn interaction_graph(instrs: &[AggregateInstruction], n_qubits: usize) -> Graph {
    let mut g = Graph::new(n_qubits);
    for inst in instrs {
        if inst.qubits.len() >= 2 {
            for i in 0..inst.qubits.len() {
                for j in (i + 1)..inst.qubits.len() {
                    g.add_edge(inst.qubits[i], inst.qubits[j], 1.0);
                }
            }
        }
    }
    g
}

/// Computes an initial layout by recursive bisection of the interaction graph:
/// the bisection order of the logical qubits is laid onto the physical qubits
/// in their natural (line / row-major) order, so strongly-coupled qubits end up
/// adjacent (§3.4.1).
///
/// # Panics
///
/// Panics if the device has fewer physical qubits than the program needs.
pub fn initial_layout(
    instrs: &[AggregateInstruction],
    n_qubits: usize,
    topology: &Topology,
) -> Layout {
    assert!(
        topology.n_qubits() >= n_qubits,
        "device has {} qubits, program needs {}",
        topology.n_qubits(),
        n_qubits
    );
    let g = interaction_graph(instrs, n_qubits);
    let order = partition::recursive_bisection_order(&g);
    // order[k] is the logical qubit placed at physical position k.
    let mut layout = vec![0usize; n_qubits];
    for (position, &logical) in order.iter().enumerate() {
        layout[logical] = position;
    }
    Layout { physical: layout }
}

/// Result of routing an instruction sequence onto a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedProgram {
    /// Instructions on *physical* qubits, with routing SWAPs inserted.
    pub instructions: Vec<AggregateInstruction>,
    /// The initial layout used.
    pub initial_layout: Layout,
    /// The final layout after all routing SWAPs.
    pub final_layout: Layout,
    /// Number of SWAPs inserted.
    pub swap_count: usize,
}

/// Routes a logically-scheduled instruction sequence onto the topology:
/// instructions are rewritten in physical indices and SWAP chains are inserted
/// in front of any multi-qubit instruction whose qubits are not neighbours.
pub fn route(
    instrs: &[AggregateInstruction],
    topology: &Topology,
    layout: Layout,
) -> RoutedProgram {
    let initial_layout = layout.clone();
    let mut layout = layout;
    let mut out: Vec<AggregateInstruction> = Vec::with_capacity(instrs.len());
    let mut swap_count = 0usize;
    for inst in instrs {
        match inst.qubits.len() {
            0 | 1 => {
                out.push(inst.remap(&layout.physical));
            }
            2 => {
                let mut pa = layout.physical_of(inst.qubits[0]);
                let pb = layout.physical_of(inst.qubits[1]);
                if !topology.are_adjacent(pa, pb) && pa != pb {
                    let path = topology
                        .path(pa, pb)
                        .expect("both endpoints are on the device");
                    // Move the first qubit along the path until adjacent to pb.
                    for window in path.windows(2).take(path.len().saturating_sub(2)) {
                        let (from, to) = (window[0], window[1]);
                        out.push(AggregateInstruction::routing_swap(from, to));
                        layout.swap_physical(from, to);
                        swap_count += 1;
                        pa = to;
                    }
                    debug_assert!(topology.are_adjacent(pa, layout.physical_of(inst.qubits[1])));
                }
                out.push(inst.remap(&layout.physical));
            }
            _ => {
                // Wider instructions only appear after aggregation, which runs
                // post-routing; accept them unchanged (their qubits are already
                // physical and mutually routed).
                out.push(inst.clone());
            }
        }
    }
    RoutedProgram {
        instructions: out,
        initial_layout,
        final_layout: layout,
        swap_count,
    }
}

/// Convenience: initial layout + routing in one call.
pub fn map_and_route(
    instrs: &[AggregateInstruction],
    n_qubits: usize,
    topology: &Topology,
) -> RoutedProgram {
    let layout = initial_layout(instrs, n_qubits, topology);
    route(instrs, topology, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use crate::instr::InstructionOrigin;
    use qcc_ir::{Circuit, Gate, Instruction};
    use qcc_sim::StateVector;

    fn single(g: Gate, qs: &[usize]) -> AggregateInstruction {
        AggregateInstruction::from_gate(Instruction::new(g, qs.to_vec()))
    }

    #[test]
    fn layout_bookkeeping() {
        let mut l = Layout::identity(4);
        assert_eq!(l.physical_of(2), 2);
        l.swap_physical(1, 2);
        assert_eq!(l.physical_of(1), 2);
        assert_eq!(l.physical_of(2), 1);
        assert_eq!(l.logical_of(2), Some(1));
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let instrs = vec![single(Gate::Cnot, &[0, 1]), single(Gate::Cnot, &[1, 2])];
        let topo = Topology::Linear(3);
        let routed = route(&instrs, &topo, Layout::identity(3));
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.instructions.len(), 2);
    }

    #[test]
    fn distant_gate_gets_swap_chain() {
        let instrs = vec![single(Gate::Cnot, &[0, 3])];
        let topo = Topology::Linear(4);
        let routed = route(&instrs, &topo, Layout::identity(4));
        assert_eq!(routed.swap_count, 2);
        assert_eq!(routed.instructions.len(), 3);
        // All emitted two-qubit instructions act on adjacent physical qubits.
        for inst in &routed.instructions {
            if inst.qubits.len() == 2 {
                assert!(topo.are_adjacent(inst.qubits[0], inst.qubits[1]), "{inst}");
            }
        }
    }

    #[test]
    fn initial_layout_places_interacting_qubits_together() {
        // Logical qubits 0 and 5 interact heavily; they should end up adjacent.
        let instrs = vec![
            single(Gate::Cnot, &[0, 5]),
            single(Gate::Cnot, &[0, 5]),
            single(Gate::Cnot, &[0, 5]),
            single(Gate::Cnot, &[1, 2]),
        ];
        let topo = Topology::Linear(6);
        let layout = initial_layout(&instrs, 6, &topo);
        let d = topo.distance(layout.physical_of(0), layout.physical_of(5));
        assert_eq!(d, 1, "heavily interacting qubits should be adjacent");
    }

    #[test]
    fn routing_preserves_semantics_up_to_layout_permutation() {
        // Build a small circuit, route it on a line, and check the routed
        // program maps |0..0> to the permuted version of the original output.
        let mut c = Circuit::new(4);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cnot, &[0, 3]);
        c.push(Gate::Rz(0.7), &[3]);
        c.push(Gate::Cnot, &[1, 2]);
        c.push(Gate::Rx(0.4), &[2]);
        let instrs = frontend::lower(&c);
        let topo = Topology::Linear(4);
        let routed = map_and_route(&instrs, 4, &topo);

        // Original output state.
        let expected = StateVector::zero(4).evolved(&c);
        // Routed program acts on physical qubits starting from |0..0>; the
        // initial layout is a relabelling, so |0..0> is unchanged. The final
        // state is related to the original by the *final* layout permutation.
        let routed_circuit = frontend::to_circuit(&routed.instructions, 4);
        let routed_state = StateVector::zero(4).evolved(&routed_circuit);

        // Compare probabilities of every basis state after undoing the final
        // layout permutation: logical qubit l sits on physical
        // final_layout.physical_of(l).
        let probs_expected = expected.probabilities();
        let probs_routed = routed_state.probabilities();
        for (logical_index, &p_logical) in probs_expected.iter().enumerate() {
            // Build the physical index corresponding to this logical bit string.
            let mut phys_index = 0usize;
            for l in 0..4 {
                let bit = (logical_index >> (3 - l)) & 1;
                let p = routed.final_layout.physical_of(l);
                phys_index |= bit << (3 - p);
            }
            assert!(
                (p_logical - probs_routed[phys_index]).abs() < 1e-9,
                "probability mismatch at basis state {logical_index}"
            );
        }
    }

    #[test]
    fn diagonal_blocks_survive_routing() {
        let block = AggregateInstruction::from_gates(
            vec![
                Instruction::new(Gate::Cnot, vec![0, 2]),
                Instruction::new(Gate::Rz(0.9), vec![2]),
                Instruction::new(Gate::Cnot, vec![0, 2]),
            ],
            InstructionOrigin::DiagonalBlock,
        );
        let topo = Topology::Linear(3);
        let routed = route(&[block], &topo, Layout::identity(3));
        assert_eq!(routed.swap_count, 1);
        let rewritten = routed
            .instructions
            .iter()
            .find(|i| i.origin == InstructionOrigin::DiagonalBlock)
            .expect("block survives");
        // After one SWAP the block acts on adjacent physical qubits.
        assert!(topo.are_adjacent(rewritten.qubits[0], rewritten.qubits[1]));
    }

    #[test]
    fn grid_routing_keeps_all_two_qubit_gates_adjacent() {
        let mut c = Circuit::new(6);
        for i in 0..6 {
            c.push(Gate::H, &[i]);
        }
        c.push(Gate::Cnot, &[0, 5]);
        c.push(Gate::Cnot, &[2, 4]);
        c.push(Gate::Cnot, &[1, 3]);
        let instrs = frontend::lower(&c);
        let topo = Topology::Grid { rows: 2, cols: 3 };
        let routed = map_and_route(&instrs, 6, &topo);
        for inst in &routed.instructions {
            if inst.qubits.len() == 2 {
                assert!(topo.are_adjacent(inst.qubits[0], inst.qubits[1]));
            }
        }
    }
}
