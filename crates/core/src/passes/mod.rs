//! The composable pass-pipeline API.
//!
//! A compilation is an ordered sequence of [`Pass`]es driven over a shared
//! [`PassState`] (the instruction stream plus everything derived from it) with
//! a read-only [`PassContext`] (device, latency model, options, thread pool).
//! The built-in passes mirror the stages of the paper's Fig. 5 flow:
//!
//! | pass | name | effect on the state |
//! |---|---|---|
//! | [`Flatten`] | `flatten` | lowers the circuit to 1-/2-qubit instructions |
//! | [`DetectDiagonalBlocks`] | `commutativity-detection` | contracts CNOT–Rz–CNOT structures (§3.3.1) |
//! | [`HandOptimize`] | `hand-optimization` | applies the mechanical iSWAP rewrites |
//! | [`Cls`] | `cls` | commutativity-aware logical scheduling (§3.3.2) |
//! | [`Route`] | `route` | maps to physical qubits and inserts SWAPs (§3.4.1) |
//! | [`Aggregate`] | `aggregation` | merges instructions monotonically (§4.3) |
//! | [`FinalCls`] | `final-cls` | reschedules the aggregated instructions (§3.4.2) |
//! | [`Price`] | `price` | fills in per-instruction latencies |
//! | [`AsapSchedule`] | `schedule` | builds the final ASAP schedule |
//!
//! [`Strategy`](crate::pipeline::Strategy) presets are recipes over these
//! passes (see [`Strategy::pipeline`](crate::pipeline::Strategy::pipeline));
//! custom orders are assembled with [`PipelineBuilder`] and run through
//! [`Compiler::run_pipeline`](crate::pipeline::Compiler::run_pipeline).
//!
//! # Example: a custom pipeline the `Strategy` presets cannot express
//!
//! Aggregation *without* routing — score the pure aggregation benefit on
//! logical qubits, before any SWAP insertion (no preset flag combination
//! produces this):
//!
//! ```
//! use qcc_core::passes::{
//!     Aggregate, AsapSchedule, DetectDiagonalBlocks, Flatten, PipelineBuilder, Price,
//! };
//! use qcc_core::pipeline::{Compiler, CompilerOptions};
//! use qcc_hw::{CalibratedLatencyModel, Device};
//! use qcc_ir::{Circuit, Gate};
//!
//! let mut circuit = Circuit::new(3);
//! for &(a, b) in &[(0usize, 1usize), (1, 2), (0, 2)] {
//!     circuit.push(Gate::Cnot, &[a, b]);
//!     circuit.push(Gate::Rz(0.9), &[b]);
//!     circuit.push(Gate::Cnot, &[a, b]);
//! }
//!
//! let pipeline = PipelineBuilder::new()
//!     .add(Flatten)
//!     .add(DetectDiagonalBlocks)
//!     .add(Aggregate)
//!     .add(Price::per_instruction())
//!     .add(AsapSchedule)
//!     .build();
//! assert_eq!(
//!     pipeline.pass_names(),
//!     ["flatten", "commutativity-detection", "aggregation", "price", "schedule"]
//! );
//!
//! let device = Device::transmon_line(3);
//! let model = CalibratedLatencyModel::new(device.limits);
//! let compiler = Compiler::new(&device, &model);
//! let result = compiler
//!     .run_pipeline(&pipeline, &circuit, &CompilerOptions::default())
//!     .unwrap();
//! // No routing ran: nothing inserted SWAPs and the layout is the identity.
//! assert_eq!(result.swap_count, 0);
//! assert!(result.total_latency_ns > 0.0);
//! ```

mod aggregate;
mod cls;
mod detect;
mod flatten;
mod handopt;
mod price;
mod route;
mod schedule;

pub use aggregate::Aggregate;
pub use cls::{Cls, FinalCls};
pub use detect::DetectDiagonalBlocks;
pub use flatten::Flatten;
pub use handopt::HandOptimize;
pub use price::Price;
pub use route::Route;
pub use schedule::AsapSchedule;

use crate::aggregate::AggregationStats;
use crate::instr::AggregateInstruction;
use crate::mapping::Layout;
use crate::pipeline::CompilerOptions;
use crate::schedule::Schedule;
use qcc_hw::{Device, LatencyModel, PricingStats};
use qcc_ir::Circuit;
use std::fmt;
use std::time::{Duration, Instant};

/// Error produced by a pass or by the pipeline driver.
///
/// The built-in `Strategy` recipes never fail on a device large enough for the
/// circuit; errors surface for undersized devices and for custom pipelines
/// assembled in an order that leaves the state incomplete (e.g. scheduling
/// before pricing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The device has fewer physical qubits than the circuit needs.
    DeviceTooSmall {
        /// Qubits the circuit requires.
        needed: usize,
        /// Qubits the device provides.
        available: usize,
    },
    /// A pass required per-instruction latencies that no earlier pass
    /// produced. Add a [`Price`] (or [`FinalCls`]) pass before it.
    MissingLatencies {
        /// Name of the pass that needed the latencies.
        pass: &'static str,
    },
    /// The pipeline finished without producing a required artifact (the named
    /// pass never ran).
    IncompletePipeline {
        /// Name of the missing stage (`"price"` or `"schedule"`).
        missing: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DeviceTooSmall { needed, available } => {
                write!(f, "device has {available} qubits, program needs {needed}")
            }
            CompileError::MissingLatencies { pass } => {
                write!(
                    f,
                    "pass '{pass}' needs per-instruction latencies; run a pricing pass first"
                )
            }
            CompileError::IncompletePipeline { missing } => {
                write!(f, "pipeline finished without a '{missing}' stage")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// How gates are priced when instructions are *not* compiled into single
/// optimized pulses: the cost of an instruction is the sum of its constituent
/// gate pulses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatePricing {
    /// Standard per-gate ISA pulse costs.
    Isa,
    /// Hand-tuned gate pulses for iSWAP architectures ([39, 48]).
    HandOptimized,
}

/// Read-only context shared by every pass of one compilation: the input
/// circuit, the target device, the latency model, the options, and the thread
/// pool for the embarrassingly-parallel pricing loops.
pub struct PassContext<'a> {
    /// The circuit being compiled.
    pub circuit: &'a Circuit,
    /// The target device.
    pub device: &'a Device,
    /// The latency oracle pricing instructions.
    pub model: &'a dyn LatencyModel,
    /// Compilation options (strategy tag, aggregation limits).
    pub options: &'a CompilerOptions,
    /// The full thread pool of the owning compiler.
    pub pool: threadpool::ThreadPool,
    pricing_pool: threadpool::ThreadPool,
    backend_fingerprint: &'a [u8],
}

impl<'a> PassContext<'a> {
    /// Builds the context for one compilation.
    pub fn new(
        circuit: &'a Circuit,
        device: &'a Device,
        model: &'a dyn LatencyModel,
        options: &'a CompilerOptions,
        pool: threadpool::ThreadPool,
    ) -> Self {
        // Fan per-instruction pricing out over the pool only when the model
        // says a single query is expensive (GRAPE solves); for cheap analytic
        // models the scoped thread spawns would cost more than the loop.
        let pricing_pool = if model.parallel_pricing() {
            pool
        } else {
            threadpool::ThreadPool::serial()
        };
        Self {
            circuit,
            device,
            model,
            options,
            pool,
            pricing_pool,
            backend_fingerprint: &[],
        }
    }

    /// Attaches the identity bytes of the backend this compilation targets
    /// (see [`qcc_hw::Backend::fingerprint`]). Passes and caches that outlive
    /// one compilation key on these bytes so a fleet of backends can share
    /// one process without cross-backend collisions. Compilations driven
    /// through a backend-less [`Compiler::new`](crate::pipeline::Compiler::new)
    /// carry an empty fingerprint.
    pub fn with_backend_fingerprint(mut self, fingerprint: &'a [u8]) -> Self {
        self.backend_fingerprint = fingerprint;
        self
    }

    /// The identity bytes of the backend being compiled for (empty when the
    /// compilation was not dispatched against a named backend).
    pub fn backend_fingerprint(&self) -> &[u8] {
        self.backend_fingerprint
    }

    /// The pool pricing passes should fan out over: the compiler's pool when
    /// the model declares pricing expensive, a serial pool otherwise.
    pub fn pricing_pool(&self) -> &threadpool::ThreadPool {
        &self.pricing_pool
    }

    /// Gate-based price of one instruction (the cost of its constituents as
    /// individual pulses) under the given pricing mode.
    pub fn gate_latency(&self, inst: &AggregateInstruction, pricing: GatePricing) -> f64 {
        match pricing {
            GatePricing::HandOptimized => {
                crate::handopt::hand_latency(inst, self.model, &self.device.limits)
            }
            GatePricing::Isa => inst
                .constituents
                .iter()
                .map(|g| self.model.isa_gate_latency(g))
                .sum(),
        }
    }
}

/// Mutable state threaded through the passes of one compilation.
#[derive(Debug, Default)]
pub struct PassState {
    /// The instruction stream (logical qubits until [`Route`] runs, physical
    /// after).
    pub instructions: Vec<AggregateInstruction>,
    /// Per-instruction latencies in ns, aligned with `instructions`; set by a
    /// pricing pass ([`Price`] or [`FinalCls`]).
    pub latencies: Option<Vec<f64>>,
    /// The final ASAP schedule; set by [`AsapSchedule`].
    pub schedule: Option<Schedule>,
    /// Routing SWAPs inserted so far.
    pub swap_count: usize,
    /// Initial qubit layout; set by [`Route`].
    pub initial_layout: Option<Layout>,
    /// Final qubit layout after routing SWAPs; set by [`Route`].
    pub final_layout: Option<Layout>,
    /// Aggregation statistics; set by [`Aggregate`].
    pub aggregation: AggregationStats,
    /// Partition telemetry; set by [`crate::partition::PartitionPass`].
    pub partition: Option<crate::partition::PartitionSummary>,
    /// One report per executed pass, in execution order.
    pub reports: Vec<PassReport>,
}

impl PassState {
    /// Total constituent gates currently in the stream.
    pub fn gate_count(&self) -> usize {
        self.instructions.iter().map(|i| i.gate_count()).sum()
    }

    /// Drops artifacts derived from the instruction stream (latencies,
    /// schedule). Every pass that mutates `instructions` without updating
    /// those artifacts itself must call this, so stale prices from an earlier
    /// pricing pass can never be applied to a reordered or rewritten stream —
    /// a later [`Price`]/[`AsapSchedule`] then recomputes them.
    pub fn invalidate_derived(&mut self) {
        self.latencies = None;
        self.schedule = None;
    }

    /// The latencies, or an error naming the pass that needed them.
    pub fn require_latencies(&self, pass: &'static str) -> Result<&[f64], CompileError> {
        self.latencies
            .as_deref()
            .ok_or(CompileError::MissingLatencies { pass })
    }
}

/// Resolves a pass name read from a serialized [`PassReport`] back to the
/// `&'static str` the in-tree pass of that name uses, or `None` for a name no
/// pass in this build claims (a snapshot from a diverged build — the decoder
/// rejects it rather than inventing an interned string).
pub fn intern_pass_name(name: &str) -> Option<&'static str> {
    const KNOWN: [&str; 10] = [
        "flatten",
        "commutativity-detection",
        "hand-optimization",
        "cls",
        "route",
        "aggregation",
        "final-cls",
        "price",
        "schedule",
        "partition",
    ];
    KNOWN.iter().find(|&&k| k == name).copied()
}

/// Report of one executed pass: the shape of the instruction stream after it
/// ran, and how long it took (the material of Fig. 6, plus serving telemetry).
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// Pass name ([`Pass::name`]).
    pub pass: &'static str,
    /// Number of instructions after the pass.
    pub instructions: usize,
    /// Number of constituent gates after the pass.
    pub gates: usize,
    /// Wall-clock time the pass took.
    pub wall_time: Duration,
    /// Latency-model pricing activity attributable to this pass — queries
    /// answered and actual solves (cache misses) performed while it ran —
    /// when the model instruments its cache
    /// ([`LatencyModel::pricing_stats`]); `None` for uninstrumented models
    /// like the analytic calibrated one. This is where GRAPE solve time
    /// lands in the timing breakdown.
    pub pricing: Option<PricingStats>,
}

/// One stage of the compilation pipeline.
///
/// A pass reads the [`PassContext`], transforms the [`PassState`], and either
/// succeeds or aborts the compilation with a [`CompileError`]. Passes must be
/// deterministic: given the same state and context they must produce the same
/// result regardless of thread count (the pool only distributes *independent*
/// pricing queries).
pub trait Pass: Send + Sync {
    /// Stable name of the pass, used in [`PassReport`]s and error messages.
    fn name(&self) -> &'static str;

    /// Runs the pass over the state.
    fn run(&self, state: &mut PassState, ctx: &PassContext) -> Result<(), CompileError>;
}

/// An immutable, runnable sequence of passes.
///
/// Built from a [`PipelineBuilder`] or a
/// [`Strategy`](crate::pipeline::Strategy) preset; run via
/// [`Compiler::run_pipeline`](crate::pipeline::Compiler::run_pipeline) (or
/// directly with [`Pipeline::run`] when you want the raw [`PassState`]).
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// Starts building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    /// The names of the passes, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline contains no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Drives every pass over a fresh state, recording a [`PassReport`] (with
    /// wall-clock timing) per pass.
    pub fn run(&self, ctx: &PassContext) -> Result<PassState, CompileError> {
        let mut state = PassState::default();
        for index in 0..self.passes.len() {
            self.run_pass(index, &mut state, ctx)?;
        }
        Ok(state)
    }

    /// Runs the single pass at `index` over `state`, recording its
    /// [`PassReport`] exactly as [`run`](Self::run) does.
    ///
    /// This is the unit of work of the staged execution mode
    /// ([`run_staged`](Self::run_staged) and the
    /// [`service::queue`](crate::service::queue) workers): driving the passes
    /// one index at a time through this method is semantically identical to
    /// one `run` call, so staged output is bit-identical to serial output by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn run_pass(
        &self,
        index: usize,
        state: &mut PassState,
        ctx: &PassContext,
    ) -> Result<(), CompileError> {
        let pass = &self.passes[index];
        let before = ctx.model.pricing_stats();
        let started = Instant::now();
        pass.run(state, ctx)?;
        let wall_time = started.elapsed();
        // Counter deltas around the pass attribute solve activity to it.
        // (Under concurrent compiles against one shared model the deltas
        // include the other compiles' activity — they are serving
        // telemetry, not an exact per-pass ledger.)
        let pricing = ctx
            .model
            .pricing_stats()
            .map(|after| after.delta_since(&before.unwrap_or_default()));
        state.reports.push(PassReport {
            pass: pass.name(),
            instructions: state.instructions.len(),
            gates: state.gate_count(),
            wall_time,
            pricing,
        });
        Ok(())
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Pipeline").field(&self.pass_names()).finish()
    }
}

/// Builder assembling a [`Pipeline`] pass by pass.
#[derive(Default)]
pub struct PipelineBuilder {
    passes: Vec<Box<dyn Pass>>,
}

impl PipelineBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pass.
    #[allow(clippy::should_implement_trait)] // builder-style append, not ops::Add
    pub fn add(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends an already-boxed pass (useful when assembling dynamically).
    pub fn add_boxed(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Finishes the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline {
            passes: self.passes,
        }
    }
}

impl fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&'static str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_tuple("PipelineBuilder").field(&names).finish()
    }
}
