//! The `cls` and `final-cls` passes: commutativity-aware logical scheduling.

use super::{CompileError, GatePricing, Pass, PassContext, PassState};
use crate::cls;
use qcc_ir::Instruction;

/// Commutativity-aware logical scheduling (Algorithm 1, §3.3.2) on the
/// gate-level stream, prioritized by gate-based prices.
///
/// When aggregation follows, use [`FinalCls`](super::FinalCls) *after* the
/// [`Aggregate`](super::Aggregate) pass instead: the aggregation search works
/// on program order, and rescheduling the aggregated instructions afterwards
/// preserves both benefits (§3.4.2).
#[derive(Debug, Clone, Copy)]
pub struct Cls {
    pricing: GatePricing,
}

impl Cls {
    /// CLS prioritized by the given gate-pricing mode.
    pub fn new(pricing: GatePricing) -> Self {
        Self { pricing }
    }
}

impl Default for Cls {
    fn default() -> Self {
        Self::new(GatePricing::Isa)
    }
}

impl Pass for Cls {
    fn name(&self) -> &'static str {
        "cls"
    }

    fn run(&self, state: &mut PassState, ctx: &PassContext) -> Result<(), CompileError> {
        let lat: Vec<f64> = state
            .instructions
            .iter()
            .map(|i| ctx.gate_latency(i, self.pricing))
            .collect();
        let result = cls::schedule(&state.instructions, &lat);
        state.instructions = cls::apply_order(&state.instructions, &result.order);
        state.invalidate_derived();
        Ok(())
    }
}

/// Re-runs CLS on the *aggregated* instructions before emitting pulses, as the
/// paper does (§3.4.2), pricing each instruction as a single optimized pulse.
///
/// Pricing goes through one batched model call
/// ([`LatencyModel::aggregate_latency_batch`](qcc_hw::LatencyModel::aggregate_latency_batch))
/// on the context's pricing pool; the computed prices are permuted alongside
/// the reordering and stored in [`PassState::latencies`], so a later
/// [`Price`](super::Price) pass is a no-op instead of re-querying the model.
#[derive(Debug, Clone, Copy, Default)]
pub struct FinalCls;

impl Pass for FinalCls {
    fn name(&self) -> &'static str {
        "final-cls"
    }

    fn run(&self, state: &mut PassState, ctx: &PassContext) -> Result<(), CompileError> {
        let queries: Vec<&[Instruction]> = state
            .instructions
            .iter()
            .map(|i| i.constituents.as_slice())
            .collect();
        let lat = ctx
            .model
            .aggregate_latency_batch(&queries, ctx.pricing_pool());
        let result = cls::schedule(&state.instructions, &lat);
        state.instructions = cls::apply_order(&state.instructions, &result.order);
        // apply_order only permutes instructions; permute their prices
        // alongside instead of re-querying the model later.
        state.latencies = Some(result.order.iter().map(|&i| lat[i]).collect());
        Ok(())
    }
}
