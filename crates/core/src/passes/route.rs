//! The `route` pass: qubit mapping and SWAP insertion.

use super::{CompileError, Pass, PassContext, PassState};
use crate::mapping;

/// Places logical qubits by recursive interaction-graph bisection and inserts
/// SWAP chains in front of non-adjacent multi-qubit instructions (§3.4.1).
/// Rewrites the stream onto *physical* qubits and records the initial/final
/// layouts and the SWAP count.
#[derive(Debug, Clone, Copy, Default)]
pub struct Route;

impl Pass for Route {
    fn name(&self) -> &'static str {
        "route"
    }

    fn run(&self, state: &mut PassState, ctx: &PassContext) -> Result<(), CompileError> {
        let needed = ctx.circuit.n_qubits();
        let available = ctx.device.topology.n_qubits();
        if available < needed {
            return Err(CompileError::DeviceTooSmall { needed, available });
        }
        let routed = mapping::map_and_route(&state.instructions, needed, &ctx.device.topology);
        state.swap_count += routed.swap_count;
        state.initial_layout = Some(routed.initial_layout);
        state.final_layout = Some(routed.final_layout);
        state.instructions = routed.instructions;
        state.invalidate_derived();
        Ok(())
    }
}
