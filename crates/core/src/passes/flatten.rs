//! The `flatten` pass: lowering the circuit to the virtual ISA.

use super::{CompileError, Pass, PassContext, PassState};
use crate::frontend;

/// Lowers the input circuit to a stream of 1-/2-qubit instructions (the
/// virtual ISA of §3.2). Always the first pass of a pipeline: it replaces
/// whatever instruction stream the state held.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Pass for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn run(&self, state: &mut PassState, ctx: &PassContext) -> Result<(), CompileError> {
        state.instructions = frontend::lower(ctx.circuit);
        state.invalidate_derived();
        Ok(())
    }
}
