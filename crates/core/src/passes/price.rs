//! The `price` pass: per-instruction latency assignment.

use super::{CompileError, GatePricing, Pass, PassContext, PassState};
use qcc_ir::Instruction;

/// How the [`Price`] pass costs each instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PricingMode {
    /// Sum of the constituent gate pulses (gate-based compilation).
    PerGate(GatePricing),
    /// One optimized pulse per instruction (aggregated compilation).
    PerInstruction,
}

/// Fills in [`PassState::latencies`] for the current instruction stream.
///
/// If an earlier pass already priced the stream (e.g.
/// [`FinalCls`](super::FinalCls)), this pass keeps those prices untouched —
/// appending it to any pipeline is therefore always safe. Per-instruction
/// pricing goes through one batched model call
/// ([`LatencyModel::aggregate_latency_batch`](qcc_hw::LatencyModel::aggregate_latency_batch))
/// on the context's pricing pool, so cached models dedup repeated
/// instructions and fan only the unique solves out; the per-gate modes are
/// cheap arithmetic and stay serial.
#[derive(Debug, Clone, Copy)]
pub struct Price {
    mode: PricingMode,
}

impl Price {
    /// Prices each instruction as the sum of its constituent gate pulses.
    pub fn per_gate(pricing: GatePricing) -> Self {
        Self {
            mode: PricingMode::PerGate(pricing),
        }
    }

    /// Prices each instruction as a single optimized pulse
    /// ([`LatencyModel::aggregate_latency`](qcc_hw::LatencyModel::aggregate_latency)).
    pub fn per_instruction() -> Self {
        Self {
            mode: PricingMode::PerInstruction,
        }
    }
}

impl Pass for Price {
    fn name(&self) -> &'static str {
        "price"
    }

    fn run(&self, state: &mut PassState, ctx: &PassContext) -> Result<(), CompileError> {
        if state.latencies.is_some() {
            return Ok(());
        }
        let latencies = match self.mode {
            PricingMode::PerInstruction => {
                let queries: Vec<&[Instruction]> = state
                    .instructions
                    .iter()
                    .map(|inst| inst.constituents.as_slice())
                    .collect();
                ctx.model
                    .aggregate_latency_batch(&queries, ctx.pricing_pool())
            }
            PricingMode::PerGate(pricing) => state
                .instructions
                .iter()
                .map(|i| ctx.gate_latency(i, pricing))
                .collect(),
        };
        state.latencies = Some(latencies);
        Ok(())
    }
}
