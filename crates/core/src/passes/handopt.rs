//! The `hand-optimization` pass.

use super::{CompileError, Pass, PassContext, PassState};
use crate::handopt;

/// Mechanically applies the hand-tuned iSWAP-architecture rewrites
/// (references [39, 48] of the paper) to the instruction stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct HandOptimize;

impl Pass for HandOptimize {
    fn name(&self) -> &'static str {
        "hand-optimization"
    }

    fn run(&self, state: &mut PassState, _ctx: &PassContext) -> Result<(), CompileError> {
        state.instructions = handopt::rewrite(&state.instructions);
        state.invalidate_derived();
        Ok(())
    }
}
