//! The `aggregation` pass.

use super::{CompileError, Pass, PassContext, PassState};
use crate::aggregate;

/// Monotonic-action instruction aggregation iterating with the latency model
/// (§4.1, §4.3), using the width limit and thresholds from
/// [`CompilerOptions::aggregation`](crate::pipeline::CompilerOptions).
/// The initial latency vectoring fans out over the context's pricing pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aggregate;

impl Pass for Aggregate {
    fn name(&self) -> &'static str {
        "aggregation"
    }

    fn run(&self, state: &mut PassState, ctx: &PassContext) -> Result<(), CompileError> {
        let (aggregated, stats) = aggregate::run_with_pool(
            &state.instructions,
            ctx.model,
            &ctx.options.aggregation,
            ctx.pricing_pool(),
        );
        state.instructions = aggregated;
        aggregate::finalize_origins(&mut state.instructions);
        state.aggregation = stats;
        // Any previously computed prices described the pre-merge stream.
        state.invalidate_derived();
        Ok(())
    }
}
