//! The `schedule` pass: final ASAP scheduling.

use super::{CompileError, Pass, PassContext, PassState};
use crate::schedule::asap_schedule;

/// Builds the final ASAP schedule of the priced instructions on the device.
/// Requires a pricing pass ([`Price`](super::Price) or
/// [`FinalCls`](super::FinalCls)) to have run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsapSchedule;

impl Pass for AsapSchedule {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, state: &mut PassState, _ctx: &PassContext) -> Result<(), CompileError> {
        let latencies = state.require_latencies("schedule")?;
        state.schedule = Some(asap_schedule(&state.instructions, latencies));
        Ok(())
    }
}
