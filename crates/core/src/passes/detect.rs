//! The `commutativity-detection` pass.

use super::{CompileError, Pass, PassContext, PassState};
use crate::frontend;

/// Detects commuting diagonal blocks (CNOT–Rz–CNOT structures, §3.3.1/§4.2)
/// and contracts each into a single instruction, exposing the reordering
/// freedom CLS and aggregation exploit.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectDiagonalBlocks;

impl Pass for DetectDiagonalBlocks {
    fn name(&self) -> &'static str {
        "commutativity-detection"
    }

    fn run(&self, state: &mut PassState, _ctx: &PassContext) -> Result<(), CompileError> {
        state.instructions = frontend::detect_diagonal_blocks(&state.instructions);
        state.invalidate_derived();
        Ok(())
    }
}
