//! The fleet front door: cost-model dispatch and dynamic relocation across a
//! heterogeneous set of [`Backend`]s.
//!
//! One process, many devices: a [`Fleet`] owns one serving lane per backend
//! (a [`CompileService`] built with [`CompileService::for_backend`], so every
//! cache key carries that backend's fingerprint) and routes each submitted
//! request with a **cost-model pass** — a cheap
//! flatten→route→price→schedule pipeline (the ISA-baseline pricing leg of
//! [`Compiler::compare_strategies`](crate::pipeline::Compiler::compare_strategies))
//! run against every candidate backend. The request goes to the lane with the
//! lowest *score*:
//!
//! ```text
//! score(lane) = (estimated_latency_ns + queued_backlog_ns) / capacity_weight
//! ```
//!
//! so a fast-but-busy backend loses to a slower idle one, and a
//! double-capacity backend absorbs twice the backlog before the router treats
//! it as equally loaded. Ties break to the earliest-constructed backend.
//!
//! Placement is **dynamic** (after SHIFT's communication-aware compute
//! relocation, arXiv:2606.28754): whenever backlog estimates shift — a new
//! submission, or a capacity derate via
//! [`set_capacity_weight`](Fleet::set_capacity_weight) — the fleet rebalances,
//! migrating still-queued (never in-flight, never pinned) tickets from the
//! most-pressured lane to the least, but only while the pressure gap exceeds
//! a **hysteresis threshold**, so balanced fleets don't churn. A relocated
//! ticket compiles exactly once, on its final lane.
//!
//! Everything that decides placement — estimates, backlog arithmetic,
//! tie-breaks — is pure and runs on the submitting thread, so routing is
//! **deterministic for a fixed submission trace at any thread count**;
//! threads only parallelize [`Fleet::run`], whose per-lane serving sessions
//! are pinned bit-identical to direct single-backend compiles.
//!
//! ```
//! use qcc_core::{CompilerOptions, Fleet, Strategy};
//! use qcc_hw::{Backend, ControlLimits, Device, Topology};
//! use qcc_ir::{Circuit, Gate};
//!
//! let limits = ControlLimits::asplos19();
//! let backends = vec![
//!     Backend::calibrated("line", Device::transmon_line(4)),
//!     Backend::calibrated(
//!         "grid-fast",
//!         Device::transmon_with(Topology::near_square_grid(4), limits.scaled_drives(1.5)),
//!     ),
//! ];
//! let mut fleet = Fleet::new(&backends);
//! let mut circuit = Circuit::new(3);
//! circuit.push(Gate::H, &[0]);
//! circuit.push(Gate::Cnot, &[0, 1]);
//! circuit.push(Gate::Cnot, &[1, 2]);
//! let ticket = fleet.submit(&circuit, &CompilerOptions::strategy(Strategy::Cls));
//! // The chain circuit maps SWAP-free onto the line, which beats the
//! // faster-calibrated grid that would have to route qubit 1↔2.
//! assert_eq!(fleet.routing_log().last().unwrap().backend, "line");
//! let result = fleet.wait(ticket).unwrap();
//! assert!(result.total_latency_ns > 0.0);
//! ```

use crate::passes::{
    AsapSchedule, CompileError, Flatten, GatePricing, Pipeline, PipelineBuilder, Price, Route,
};
use crate::pipeline::{CompilationResult, Compiler, CompilerOptions, Strategy};
use crate::service::queue::{Priority, ServeConfig, ServiceError, SubmitOptions};
use crate::service::{CompileCacheStats, CompileService};
use qcc_hw::Backend;
use qcc_ir::Circuit;
use std::collections::HashMap;
use threadpool::ThreadPool;

/// Default relocation hysteresis in ns: a queued ticket only migrates when
/// the donor lane's pressure exceeds the recipient's post-move pressure by
/// more than this, so near-balanced fleets don't churn tickets back and
/// forth over noise-sized differences.
pub const DEFAULT_RELOCATION_HYSTERESIS_NS: f64 = 250.0;

/// Claim check for a request submitted to a [`Fleet`], redeemed with
/// [`Fleet::wait`] (or [`Fleet::take`] after a [`Fleet::run`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FleetTicket(u64);

/// Per-request fleet submission options: priority class and optional
/// placement pinning.
#[derive(Debug, Clone, Default)]
pub struct FleetSubmitOptions {
    priority: Priority,
    pin: Option<String>,
}

impl FleetSubmitOptions {
    /// Sets the priority class the request carries into its lane's serving
    /// session (default: [`Priority::Interactive`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Pins the request to the named backend, bypassing cost-model routing.
    /// Pinned tickets are exempt from relocation.
    pub fn pin(mut self, label: impl Into<String>) -> Self {
        self.pin = Some(label.into());
        self
    }
}

/// A wide circuit fanned out across the fleet as independently routable
/// region sub-circuits ([`Fleet::submit_partitioned`]): one ticket per
/// non-empty region, plus the explicit cross-region cut set the caller owns.
#[derive(Debug)]
pub struct PartitionedSubmission {
    /// One claim ticket per submitted region, aligned with `regions`.
    pub tickets: Vec<FleetTicket>,
    /// The submitted regions: original qubit sets and the compacted
    /// sub-circuits the tickets compile.
    pub regions: Vec<crate::partition::LogicalRegion>,
    /// Every gate straddling two regions, on the original qubit indices —
    /// not submitted anywhere; scheduling the seams is the caller's call.
    pub cut: Circuit,
    /// Total interaction-graph weight crossing region boundaries.
    pub cut_weight: f64,
}

/// One candidate backend's quote inside a [`RoutingDecision`]: what the cost
/// model estimated, what was already queued, and the resulting score.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateQuote {
    /// The candidate backend's label.
    pub backend: String,
    /// Cost-model latency estimate for this request on this backend, ns
    /// (infinite when the backend cannot run the circuit at all).
    pub estimate_ns: f64,
    /// Backlog already queued on the lane at decision time, ns.
    pub backlog_ns: f64,
    /// `(estimate_ns + backlog_ns) / capacity_weight` — the routed-to lane
    /// minimizes this.
    pub score: f64,
}

/// Record of one routing decision: where a ticket went and what every
/// candidate quoted at that moment.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingDecision {
    /// The routed request.
    pub ticket: FleetTicket,
    /// Label of the chosen backend.
    pub backend: String,
    /// Whether the placement was pinned by the submitter (no cost-model
    /// comparison ran).
    pub pinned: bool,
    /// The chosen lane's queued backlog at decision time, ns.
    pub backlog_ns: f64,
    /// One quote per candidate backend, in fleet construction order (empty
    /// for pinned placements).
    pub candidates: Vec<CandidateQuote>,
}

/// Record of one SHIFT-style relocation of a still-queued ticket.
#[derive(Debug, Clone, PartialEq)]
pub struct Relocation {
    /// The migrated request.
    pub ticket: FleetTicket,
    /// Label of the lane the ticket left.
    pub from: String,
    /// Label of the lane the ticket joined.
    pub to: String,
    /// Pressure reduction that justified the move, ns (always above the
    /// hysteresis threshold).
    pub gain_ns: f64,
}

/// Per-backend serving counters, in the style of [`CompileCacheStats`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetBackendStats {
    /// The backend's label.
    pub backend: String,
    /// Requests routed (or pinned, or relocated) to this backend and kept at
    /// [`Fleet::run`] time.
    pub submitted: usize,
    /// Requests this backend finished (successes and compile errors alike).
    pub completed: usize,
    /// Queued tickets that migrated *onto* this backend.
    pub relocated_in: usize,
    /// Queued tickets that migrated *off* this backend.
    pub relocated_out: usize,
    /// Tickets currently queued (not yet run).
    pub queued: usize,
    /// Estimated queued work, ns.
    pub backlog_ns: f64,
}

/// A request queued on a lane, waiting for the next [`Fleet::run`].
struct Pending {
    ticket: u64,
    circuit: Circuit,
    options: CompilerOptions,
    priority: Priority,
    pinned: bool,
    /// Cost-model estimate per lane, in lane order (what the backlog
    /// accounting and relocation scoring reuse without re-estimating).
    estimates: Vec<f64>,
}

/// One backend's serving lane: the backend, its dedicated service, and the
/// queue of not-yet-run requests.
struct Lane<'b> {
    backend: &'b Backend,
    service: CompileService<'b>,
    queue: Vec<Pending>,
    backlog_ns: f64,
    weight: f64,
    submitted: usize,
    completed: usize,
    relocated_in: usize,
    relocated_out: usize,
}

impl Lane<'_> {
    fn pressure(&self) -> f64 {
        self.backlog_ns / self.weight
    }

    /// What this lane's pressure would become if `estimate_ns` more work
    /// joined its queue.
    fn pressure_with(&self, estimate_ns: f64) -> f64 {
        (self.backlog_ns + finite_or_zero(estimate_ns)) / self.weight
    }
}

/// Infinite estimates (backend cannot run the circuit) contribute nothing to
/// backlog: the request will fail fast with `DeviceTooSmall`, not occupy the
/// lane.
fn finite_or_zero(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// The fleet dispatcher; see the [module docs](self) for the routing and
/// relocation policy.
///
/// Submission and placement take `&mut self`: dispatch is a serialized
/// decision stream by design, which is what makes routing reproducible.
/// Execution ([`run`](Self::run)) fans the lanes out over the fleet's thread
/// pool.
pub struct Fleet<'b> {
    lanes: Vec<Lane<'b>>,
    pool: ThreadPool,
    hysteresis_ns: f64,
    next_ticket: u64,
    cost_pipeline: Pipeline,
    cost_options: CompilerOptions,
    /// Memoized cost-model estimates: (lane index, circuit encoding) → ns.
    estimate_memo: HashMap<(usize, Vec<u8>), f64>,
    /// Final placement of every ticket ever submitted: ticket → lane index
    /// (kept current across relocations).
    placements: HashMap<u64, usize>,
    results: HashMap<u64, Result<CompilationResult, CompileError>>,
    routing_log: Vec<RoutingDecision>,
    relocations: Vec<Relocation>,
}

impl<'b> Fleet<'b> {
    /// Builds a fleet over the given backends, one serving lane each.
    ///
    /// # Panics
    ///
    /// Panics when `backends` is empty or two backends share a label (labels
    /// are the fleet's addressing scheme).
    pub fn new(backends: &'b [Backend]) -> Self {
        assert!(!backends.is_empty(), "a fleet needs at least one backend");
        for (i, b) in backends.iter().enumerate() {
            if let Some(dup) = backends[i + 1..].iter().find(|o| o.label() == b.label()) {
                panic!("duplicate backend label '{}' in fleet", dup.label());
            }
        }
        let pool = ThreadPool::with_default_parallelism();
        let lane_threads = (pool.threads() / backends.len()).max(1);
        let lanes = backends
            .iter()
            .map(|backend| Lane {
                backend,
                service: CompileService::for_backend(backend).with_threads(lane_threads),
                queue: Vec::new(),
                backlog_ns: 0.0,
                weight: backend.capacity_weight(),
                submitted: 0,
                completed: 0,
                relocated_in: 0,
                relocated_out: 0,
            })
            .collect();
        Self {
            lanes,
            pool,
            hysteresis_ns: DEFAULT_RELOCATION_HYSTERESIS_NS,
            next_ticket: 0,
            // The cheap cost-model pass: the ISA-baseline pricing leg of
            // `compare_strategies`, whose routed-SWAP + per-gate-pulse
            // makespan tracks how well a topology/calibration suits the
            // circuit without paying for aggregation or GRAPE solves.
            cost_pipeline: PipelineBuilder::new()
                .add(Flatten)
                .add(Route)
                .add(Price::per_gate(GatePricing::Isa))
                .add(AsapSchedule)
                .build(),
            cost_options: CompilerOptions::strategy(Strategy::IsaBaseline),
            estimate_memo: HashMap::new(),
            placements: HashMap::new(),
            results: HashMap::new(),
            routing_log: Vec::new(),
            relocations: Vec::new(),
        }
    }

    /// Sets the total thread budget for [`run`](Self::run): lanes fan out
    /// over these threads, each lane's serving session receiving an equal
    /// share (at least one). Placement decisions are unaffected — routing is
    /// deterministic at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = ThreadPool::new(threads);
        let lane_threads = (threads / self.lanes.len()).max(1);
        for lane in &mut self.lanes {
            lane.service = CompileService::for_backend(lane.backend).with_threads(lane_threads);
        }
        self
    }

    /// Sets the relocation hysteresis (default
    /// [`DEFAULT_RELOCATION_HYSTERESIS_NS`]); `f64::INFINITY` disables
    /// relocation entirely.
    ///
    /// # Panics
    ///
    /// Panics when `hysteresis_ns` is negative or NaN.
    pub fn with_hysteresis_ns(mut self, hysteresis_ns: f64) -> Self {
        assert!(
            hysteresis_ns >= 0.0,
            "relocation hysteresis must be non-negative, got {hysteresis_ns}"
        );
        self.hysteresis_ns = hysteresis_ns;
        self
    }

    /// Backend labels in lane order (the candidate order of every
    /// [`RoutingDecision`]).
    pub fn labels(&self) -> Vec<&str> {
        self.lanes.iter().map(|l| l.backend.label()).collect()
    }

    /// Warm-starts every lane's caches from snapshots in `dir` at boot,
    /// degrading per-lane failures to a cold start for that lane (see
    /// [`CompileService::warm_start_or_cold`]). Lanes never alias: each
    /// lane's snapshot files are named and namespaced by its backend
    /// fingerprint, so one shared directory serves the whole fleet. Returns
    /// the total number of records loaded across lanes.
    pub fn warm_start_or_cold(&self, dir: &std::path::Path) -> usize {
        self.lanes
            .iter()
            .map(|lane| lane.service.warm_start_or_cold(dir))
            .sum()
    }

    /// Snapshots every lane's caches into `dir` (one pair of files per lane,
    /// atomic; see [`CompileService::snapshot_to`]). Returns the total number
    /// of records written.
    pub fn snapshot_to(&self, dir: &std::path::Path) -> Result<usize, qcc_hw::PersistError> {
        let mut written = 0;
        for lane in &self.lanes {
            written += lane.service.snapshot_to(dir)?;
        }
        Ok(written)
    }

    /// Submits a request with default options (interactive priority, routed
    /// by the cost model) and returns its claim ticket.
    pub fn submit(&mut self, circuit: &Circuit, options: &CompilerOptions) -> FleetTicket {
        self.submit_with(circuit, options, FleetSubmitOptions::default())
    }

    /// Submits a request with explicit [`FleetSubmitOptions`]; records a
    /// [`RoutingDecision`] and rebalances the queues afterwards.
    ///
    /// # Panics
    ///
    /// Panics when the options pin a label no backend of this fleet carries.
    pub fn submit_with(
        &mut self,
        circuit: &Circuit,
        options: &CompilerOptions,
        submit: FleetSubmitOptions,
    ) -> FleetTicket {
        let estimates = self.estimate_all(circuit);
        let (lane_idx, pinned) = match &submit.pin {
            Some(label) => (
                self.lane_index(label)
                    .unwrap_or_else(|| panic!("no backend labelled '{label}' in this fleet")),
                true,
            ),
            None => (self.route(&estimates), false),
        };
        let ticket = FleetTicket(self.next_ticket);
        self.next_ticket += 1;
        let candidates = if pinned {
            Vec::new()
        } else {
            self.lanes
                .iter()
                .zip(&estimates)
                .map(|(lane, &estimate_ns)| CandidateQuote {
                    backend: lane.backend.label().to_string(),
                    estimate_ns,
                    backlog_ns: lane.backlog_ns,
                    score: lane.pressure_with(estimate_ns),
                })
                .collect()
        };
        let lane = &mut self.lanes[lane_idx];
        self.routing_log.push(RoutingDecision {
            ticket,
            backend: lane.backend.label().to_string(),
            pinned,
            backlog_ns: lane.backlog_ns,
            candidates,
        });
        lane.backlog_ns += finite_or_zero(estimates[lane_idx]);
        lane.submitted += 1;
        self.placements.insert(ticket.0, lane_idx);
        let lane = &mut self.lanes[lane_idx];
        lane.queue.push(Pending {
            ticket: ticket.0,
            circuit: circuit.clone(),
            options: options.clone(),
            priority: submit.priority,
            pinned,
            estimates,
        });
        self.rebalance();
        ticket
    }

    /// Cuts a wide circuit into `partition.regions` weakly coupled regions
    /// ([`crate::partition::partition_circuit`]) and submits each non-empty
    /// region's compacted sub-circuit as its own cost-routed request — one
    /// wide circuit fans out across the fleet's backends, each region placed
    /// wherever the cost model quotes cheapest (regions inherit `submit`'s
    /// priority/pin).
    ///
    /// This is the estimation/fan-out mode: the returned
    /// [`PartitionedSubmission`] pairs every ticket with its region's original
    /// qubits and hands back the cross-region `cut` circuit explicitly —
    /// nothing is silently dropped, and no claim is made that the per-region
    /// results compose into one schedule (the caller owns pricing the seams;
    /// for a single-device compile with stitched-schedule equivalence
    /// guarantees use [`Compiler::compile_partitioned`] instead).
    pub fn submit_partitioned(
        &mut self,
        circuit: &Circuit,
        options: &CompilerOptions,
        partition: &crate::partition::PartitionOptions,
        submit: FleetSubmitOptions,
    ) -> PartitionedSubmission {
        let plan = crate::partition::partition_circuit(circuit, partition.regions);
        let mut tickets = Vec::new();
        let mut regions = Vec::new();
        for region in plan.regions {
            if region.circuit.is_empty() {
                continue;
            }
            tickets.push(self.submit_with(&region.circuit, options, submit.clone()));
            regions.push(region);
        }
        PartitionedSubmission {
            tickets,
            regions,
            cut: plan.cut,
            cut_weight: plan.cut_weight,
        }
    }

    /// Re-weights one backend at runtime — the SHIFT-style "availability
    /// shifted" signal. Halving a weight doubles the lane's pressure, so
    /// queued unpinned work starts migrating off it immediately (the call
    /// rebalances before returning).
    ///
    /// # Panics
    ///
    /// Panics on an unknown label or a non-positive/non-finite weight.
    pub fn set_capacity_weight(&mut self, label: &str, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "backend capacity weight must be positive and finite, got {weight}"
        );
        let idx = self
            .lane_index(label)
            .unwrap_or_else(|| panic!("no backend labelled '{label}' in this fleet"));
        self.lanes[idx].weight = weight;
        self.rebalance();
    }

    /// Runs every queued request through its lane's serving session (lanes in
    /// parallel over the fleet's thread pool) and stores the results for
    /// [`wait`](Self::wait)/[`take`](Self::take). Idempotent when nothing is
    /// queued.
    pub fn run(&mut self) {
        let work: Vec<(usize, Vec<Pending>)> = self
            .lanes
            .iter_mut()
            .enumerate()
            .map(|(i, lane)| (i, std::mem::take(&mut lane.queue)))
            .collect();
        let lanes = &self.lanes;
        let outputs: Vec<Vec<(u64, Result<CompilationResult, CompileError>)>> =
            self.pool.parallel_map(&work, |(i, pending)| {
                if pending.is_empty() {
                    return Vec::new();
                }
                let lane = &lanes[*i];
                lane.service.serve(
                    ServeConfig {
                        queue_capacity: pending.len(),
                        ..ServeConfig::default()
                    },
                    |handle| {
                        let tickets: Vec<_> = pending
                            .iter()
                            .map(|p| {
                                handle
                                    .submit(
                                        &p.circuit,
                                        &p.options,
                                        SubmitOptions::default().priority(p.priority),
                                    )
                                    .expect("lane queue sized to its work")
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .zip(pending)
                            .map(|(t, p)| {
                                let result = handle.wait(t).map_err(|e| match e {
                                    ServiceError::Compile(c) => c,
                                    // No deadlines; queue sized to the work.
                                    other => unreachable!("fleet serve cannot {other}"),
                                });
                                (p.ticket, result)
                            })
                            .collect()
                    },
                )
            });
        for ((i, pending), lane_results) in work.iter().zip(outputs) {
            self.lanes[*i].completed += lane_results.len();
            debug_assert_eq!(pending.len(), lane_results.len());
            self.results.extend(lane_results);
        }
        for lane in &mut self.lanes {
            lane.backlog_ns = 0.0;
        }
    }

    /// Blocks until the ticket's result is available (running the queues if
    /// needed) and claims it. Each ticket is redeemed exactly once.
    ///
    /// # Panics
    ///
    /// Panics on a ticket this fleet never issued or already redeemed.
    pub fn wait(&mut self, ticket: FleetTicket) -> Result<CompilationResult, CompileError> {
        if !self.results.contains_key(&ticket.0) {
            self.run();
        }
        self.results
            .remove(&ticket.0)
            .expect("unknown or already-claimed fleet ticket")
    }

    /// Claims a result without triggering execution; `None` while the ticket
    /// is still queued (call [`run`](Self::run) first) or after it was
    /// claimed.
    pub fn take(&mut self, ticket: FleetTicket) -> Option<Result<CompilationResult, CompileError>> {
        self.results.remove(&ticket.0)
    }

    /// Every routing decision made so far, in submission order.
    ///
    /// A decision records the *initial* placement; a later relocation can
    /// move the ticket, so consult [`placement`](Self::placement) for where a
    /// ticket actually compiles (or compiled).
    pub fn routing_log(&self) -> &[RoutingDecision] {
        &self.routing_log
    }

    /// The backend the ticket is currently queued on — or, once run, the
    /// backend that compiled it. Reflects relocations, unlike the initial
    /// [`routing_log`](Self::routing_log) entry. `None` for tickets this
    /// fleet never issued.
    pub fn placement(&self, ticket: FleetTicket) -> Option<&str> {
        self.placements
            .get(&ticket.0)
            .map(|&i| self.lanes[i].backend.label())
    }

    /// Every relocation performed so far, in the order they fired.
    pub fn relocations(&self) -> &[Relocation] {
        &self.relocations
    }

    /// Per-backend serving counters, in lane order.
    pub fn stats(&self) -> Vec<FleetBackendStats> {
        self.lanes
            .iter()
            .map(|lane| FleetBackendStats {
                backend: lane.backend.label().to_string(),
                submitted: lane.submitted,
                completed: lane.completed,
                relocated_in: lane.relocated_in,
                relocated_out: lane.relocated_out,
                queued: lane.queue.len(),
                backlog_ns: lane.backlog_ns,
            })
            .collect()
    }

    /// The named backend's serving counters.
    pub fn backend_stats(&self, label: &str) -> Option<FleetBackendStats> {
        let idx = self.lane_index(label)?;
        Some(self.stats().swap_remove(idx))
    }

    /// The named backend's compile-cache and request counters (the per-lane
    /// [`CompileService`] telemetry).
    pub fn cache_stats(&self, label: &str) -> Option<CompileCacheStats> {
        let idx = self.lane_index(label)?;
        Some(self.lanes[idx].service.compile_cache_stats())
    }

    fn lane_index(&self, label: &str) -> Option<usize> {
        self.lanes.iter().position(|l| l.backend.label() == label)
    }

    /// Cost-model estimate of `circuit` on every lane, memoized by the
    /// circuit's byte encoding (the cost pipeline is pure, so one estimate
    /// per (backend, circuit) ever runs).
    fn estimate_all(&mut self, circuit: &Circuit) -> Vec<f64> {
        let mut encoding = Vec::with_capacity(circuit.len() * 20 + 8);
        encoding.extend_from_slice(&(circuit.n_qubits() as u64).to_le_bytes());
        for inst in circuit.instructions() {
            inst.encode_into(&mut encoding);
        }
        (0..self.lanes.len())
            .map(|i| {
                if let Some(&cached) = self.estimate_memo.get(&(i, encoding.clone())) {
                    return cached;
                }
                let lane = &self.lanes[i];
                // Serial on purpose: estimates must not depend on the thread
                // budget, and the ISA pricing pass is cheap.
                let estimate = Compiler::for_backend(lane.backend)
                    .with_threads(1)
                    .run_pipeline(&self.cost_pipeline, circuit, &self.cost_options)
                    .map(|r| r.total_latency_ns)
                    .unwrap_or(f64::INFINITY);
                self.estimate_memo.insert((i, encoding.clone()), estimate);
                estimate
            })
            .collect()
    }

    /// The argmin-score lane for a request with the given per-lane estimates.
    /// Lanes that cannot run the circuit (infinite estimate) are excluded;
    /// when none can, the widest device takes it so the `DeviceTooSmall`
    /// error surfaces from the most plausible backend.
    fn route(&self, estimates: &[f64]) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for (i, (lane, &est)) in self.lanes.iter().zip(estimates).enumerate() {
            if !est.is_finite() {
                continue;
            }
            let score = lane.pressure_with(est);
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((i, score));
            }
        }
        best.map(|(i, _)| i).unwrap_or_else(|| {
            let mut widest = 0;
            for (i, lane) in self.lanes.iter().enumerate() {
                if lane.backend.device().n_qubits() > self.lanes[widest].backend.device().n_qubits()
                {
                    widest = i;
                }
            }
            widest
        })
    }

    /// SHIFT-style rebalance: repeatedly move the most-pressured lane's most
    /// recently queued unpinned ticket to the lane where it would sit under
    /// the least pressure, as long as the move wins more than the hysteresis
    /// threshold. The iteration cap guarantees termination regardless of the
    /// estimate landscape.
    fn rebalance(&mut self) {
        if self.lanes.len() < 2 || !self.hysteresis_ns.is_finite() {
            return;
        }
        let total_queued: usize = self.lanes.iter().map(|l| l.queue.len()).sum();
        for _ in 0..total_queued.saturating_mul(4) {
            // Donor: highest pressure among lanes with movable (unpinned)
            // queued work; first lane wins ties for determinism.
            let Some(donor) = self
                .lanes
                .iter()
                .enumerate()
                .filter(|(_, l)| l.queue.iter().any(|p| !p.pinned))
                .max_by(|(ai, a), (bi, b)| {
                    a.pressure()
                        .partial_cmp(&b.pressure())
                        .expect("pressures are finite")
                        .then(bi.cmp(ai))
                })
                .map(|(i, _)| i)
            else {
                return;
            };
            // Candidate: the donor's most recently queued unpinned ticket —
            // the marginal admission, whose move disturbs the donor's
            // schedule the least. Tickets with no viable recipient at all
            // (infinite estimates everywhere else) are skipped; but once a
            // movable candidate *has* a recipient and the move still doesn't
            // clear the hysteresis, the fleet counts as balanced — reaching
            // deeper into the queue for a ticket that happens to clear the
            // bar would be exactly the churn the hysteresis exists to stop.
            let donor_pressure = self.lanes[donor].pressure();
            let mut chosen: Option<(usize, usize, f64)> = None;
            for cand_pos in (0..self.lanes[donor].queue.len()).rev() {
                if self.lanes[donor].queue[cand_pos].pinned {
                    continue;
                }
                let estimates = &self.lanes[donor].queue[cand_pos].estimates;
                // Recipient: the lane where this ticket lands under the least
                // pressure; first lane wins ties.
                let recipient = self
                    .lanes
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != donor)
                    .filter(|&(i, _)| estimates[i].is_finite())
                    .min_by(|(ai, a), (bi, b)| {
                        a.pressure_with(estimates[*ai])
                            .partial_cmp(&b.pressure_with(estimates[*bi]))
                            .expect("pressures are finite")
                            .then(ai.cmp(bi))
                    })
                    .map(|(i, _)| i);
                let Some(recipient) = recipient else { continue };
                let gain_ns =
                    donor_pressure - self.lanes[recipient].pressure_with(estimates[recipient]);
                if gain_ns > self.hysteresis_ns {
                    chosen = Some((cand_pos, recipient, gain_ns));
                }
                break;
            }
            // The most-pressured lane has no winning move: the fleet is
            // balanced (within the hysteresis band).
            let Some((cand_pos, recipient, gain_ns)) = chosen else {
                return;
            };
            let pending = self.lanes[donor].queue.remove(cand_pos);
            self.lanes[donor].backlog_ns =
                (self.lanes[donor].backlog_ns - finite_or_zero(pending.estimates[donor])).max(0.0);
            self.lanes[donor].relocated_out += 1;
            self.lanes[donor].submitted -= 1;
            self.relocations.push(Relocation {
                ticket: FleetTicket(pending.ticket),
                from: self.lanes[donor].backend.label().to_string(),
                to: self.lanes[recipient].backend.label().to_string(),
                gain_ns,
            });
            self.lanes[recipient].backlog_ns += finite_or_zero(pending.estimates[recipient]);
            self.lanes[recipient].relocated_in += 1;
            self.lanes[recipient].submitted += 1;
            self.placements.insert(pending.ticket, recipient);
            self.lanes[recipient].queue.push(pending);
        }
    }
}
