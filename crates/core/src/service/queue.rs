//! The asynchronous serving queue: staged pass execution behind a bounded,
//! priority-aware admission queue.
//!
//! [`CompileService::serve`] opens a *serving session*: a set of stage
//! workers (scoped threads — no global registry, no `'static` executor) that
//! stream accepted requests through their strategy's pass pipeline while the
//! caller keeps submitting. The session hands the caller a [`ServeHandle`]
//! with an async-style API:
//!
//! * [`ServeHandle::submit`] enqueues one compile request and returns a
//!   [`Ticket`] immediately — or [`ServiceError::QueueFull`] when the bounded
//!   admission queue is at capacity (**backpressure**: the queue never grows
//!   without bound, callers shed or retry).
//! * [`ServeHandle::poll`] checks a ticket without blocking;
//!   [`ServeHandle::wait`] blocks until the result is ready. Each ticket's
//!   result is claimed exactly once.
//! * [`SubmitOptions`] selects a [`Priority`] class (`Interactive` requests
//!   are always admitted before `Batch` ones; FIFO within a class), an
//!   optional **deadline** (checked between passes — an expired request is
//!   cancelled mid-pipeline and completes with
//!   [`ServiceError::DeadlineExpired`] instead of hogging the stages), and an
//!   optional progress channel that streams one [`PassProgress`] per executed
//!   pass.
//!
//! # Execution model
//!
//! Every accepted request carries its own pipeline (its strategy's recipe)
//! and a cursor. Workers always prefer the **deepest** in-flight stage over
//! admitting new work — draining the pipe before refilling it, which bounds
//! in-flight memory and finishes near-done requests first — and each stage's
//! input queue is bounded: when a hand-off queue is full, the worker keeps
//! the job and runs the next pass itself instead of blocking (stage
//! coupling), so backpressure can never deadlock the worker set. Passes are
//! executed through the same [`Pipeline::run_pass`] as the serial driver,
//! which makes staged output **bit-identical** to [`Compiler::try_compile`]
//! for every strategy — pinned by `tests/staged_service.rs`.
//!
//! Results served from the service's compile cache complete at submit time
//! without occupying queue capacity. Session telemetry (submitted, completed,
//! rejected, deadline-expired counts) accumulates on the owning service and
//! is reported by [`CompileService::compile_cache_stats`].
//!
//! [`Compiler::try_compile`]: crate::pipeline::Compiler::try_compile
//!
//! # Example
//!
//! ```
//! use qcc_core::service::queue::{Priority, ServeConfig, SubmitOptions};
//! use qcc_core::{CompileService, CompilerOptions, Strategy};
//! use qcc_hw::Device;
//! use qcc_ir::{Circuit, Gate};
//!
//! let device = Device::transmon_line(2);
//! let service = CompileService::new(&device);
//! let mut circuit = Circuit::new(2);
//! circuit.push(Gate::H, &[0]);
//! circuit.push(Gate::Cnot, &[0, 1]);
//!
//! let result = service.serve(ServeConfig::default(), |handle| {
//!     let ticket = handle
//!         .submit(
//!             &circuit,
//!             &CompilerOptions::strategy(Strategy::Cls),
//!             SubmitOptions::default().priority(Priority::Interactive),
//!         )
//!         .expect("queue has room");
//!     handle.wait(ticket)
//! });
//! assert!(result.unwrap().total_latency_ns > 0.0);
//! ```

use crate::passes::{CompileError, PassContext, PassState, Pipeline};
use crate::pipeline::{finish, CompilationResult, CompilerOptions};
use crate::service::CompileService;
use qcc_ir::Circuit;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use threadpool::{mpmc, ThreadPool};

/// Priority class of a request: which admission queue it waits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic: always admitted before any queued batch
    /// request (FIFO among interactive requests).
    #[default]
    Interactive,
    /// Throughput traffic: admitted only when no interactive request waits.
    Batch,
}

/// Per-request submission options: priority class, optional deadline, and an
/// optional per-pass progress stream. Construct with
/// [`default()`](Default::default) and the builder methods.
#[derive(Default, Clone)]
pub struct SubmitOptions {
    priority: Priority,
    deadline: Option<Duration>,
    progress: Option<mpmc::Sender<PassProgress>>,
    /// The batch front door resolves cache hits itself before submitting;
    /// this skips the redundant second lookup (and its stat double-count).
    pub(crate) bypass_cache: bool,
}

impl SubmitOptions {
    /// Sets the priority class (default: [`Priority::Interactive`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Gives the request a deadline relative to submission. The deadline is
    /// checked before every pass: once it lapses, remaining passes are
    /// cancelled and the request completes with
    /// [`ServiceError::DeadlineExpired`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Streams one [`PassProgress`] per executed pass into `sender`.
    /// Progress is lossy by design: a full channel drops the event rather
    /// than stalling the stage worker.
    pub fn progress(mut self, sender: mpmc::Sender<PassProgress>) -> Self {
        self.progress = Some(sender);
        self
    }

    /// Options used by [`CompileService::compile_batch`]: batch priority,
    /// submit-side cache lookup skipped (the batch front door resolved hits
    /// itself).
    pub(crate) fn batch_bypass() -> Self {
        Self {
            priority: Priority::Batch,
            bypass_cache: true,
            ..Self::default()
        }
    }
}

impl fmt::Debug for SubmitOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubmitOptions")
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// One streamed progress event: the request's ticket plus the report of the
/// pass that just finished (the final event of a request carries its last
/// pass, e.g. `"schedule"`).
#[derive(Debug, Clone)]
pub struct PassProgress {
    /// The request this event belongs to.
    pub ticket: Ticket,
    /// Report of the pass that just ran.
    pub report: crate::passes::PassReport,
}

/// Claim check for a submitted request, redeemed with [`ServeHandle::poll`]
/// or [`ServeHandle::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Error surface of the serving queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded admission queue is at capacity; the request was rejected
    /// (backpressure). Retry later or shed the request.
    QueueFull,
    /// The request's deadline lapsed before its pipeline finished; remaining
    /// passes were cancelled.
    DeadlineExpired,
    /// The compilation itself failed.
    Compile(CompileError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "admission queue full, request rejected"),
            ServiceError::DeadlineExpired => {
                write!(f, "deadline expired before compilation finished")
            }
            ServiceError::Compile(e) => write!(f, "compilation failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CompileError> for ServiceError {
    fn from(e: CompileError) -> Self {
        ServiceError::Compile(e)
    }
}

/// Configuration of one serving session ([`CompileService::serve`]).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Capacity of the bounded admission queue (both priority classes
    /// combined). A submit beyond this returns [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Capacity of each stage's bounded hand-off queue. When a stage's queue
    /// is full, the upstream worker runs the next pass itself instead of
    /// queueing (backpressure without blocking).
    pub stage_capacity: usize,
    /// Number of stage worker threads; `0` means the service's thread-pool
    /// size.
    pub workers: usize,
    /// Starts the session with admission paused ([`ServeHandle::resume`]
    /// opens it) — accepted requests queue but none enters the pipeline.
    /// Deterministic-by-construction setup for tests and for pre-loading a
    /// batch before processing starts.
    pub start_paused: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            stage_capacity: crate::staged::DEFAULT_STAGE_CAPACITY,
            workers: 0,
            start_paused: false,
        }
    }
}

/// One in-flight request: its own pipeline (the strategy's recipe), the
/// typed state threaded through the stages, and a cursor marking the next
/// pass to run.
struct Job {
    ticket: u64,
    circuit: Circuit,
    options: CompilerOptions,
    pipeline: Pipeline,
    state: PassState,
    cursor: usize,
    deadline: Option<Instant>,
    progress: Option<mpmc::Sender<PassProgress>>,
    cache_key: Option<Vec<u8>>,
}

/// Engine state behind one mutex: the two admission queues, the per-stage
/// hand-off queues, and the completed-result map.
struct EngineState {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    /// `stages[i]` holds jobs whose next pass is index `i` of their own
    /// pipeline; grown on demand to the longest submitted recipe.
    stages: Vec<VecDeque<Job>>,
    completed: HashMap<u64, Result<CompilationResult, ServiceError>>,
    completion_order: Vec<Ticket>,
    /// Requests accepted but not yet completed (queued, staged, or running).
    outstanding: usize,
    next_ticket: u64,
    paused: bool,
    closed: bool,
}

struct Engine {
    state: Mutex<EngineState>,
    /// Signals workers: work available, or shutdown.
    work: Condvar,
    /// Signals waiters: a result completed.
    done: Condvar,
    queue_capacity: usize,
    stage_capacity: usize,
}

impl Engine {
    fn new(config: &ServeConfig) -> Self {
        Self {
            state: Mutex::new(EngineState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                stages: Vec::new(),
                completed: HashMap::new(),
                completion_order: Vec::new(),
                outstanding: 0,
                next_ticket: 0,
                paused: config.start_paused,
                closed: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            stage_capacity: config.stage_capacity.max(1),
        }
    }

    fn complete(
        &self,
        st: &mut EngineState,
        ticket: u64,
        result: Result<CompilationResult, ServiceError>,
    ) {
        st.completed.insert(ticket, result);
        st.completion_order.push(Ticket(ticket));
        st.outstanding -= 1;
        self.done.notify_all();
        // outstanding hitting zero is what lets drained workers exit.
        self.work.notify_all();
    }
}

/// Pops the job closest to completion: deepest non-empty stage first, then —
/// unless paused — the admission queues (interactive before batch).
fn take_next(st: &mut EngineState) -> Option<Job> {
    for stage in st.stages.iter_mut().rev() {
        if let Some(job) = stage.pop_front() {
            return Some(job);
        }
    }
    if st.paused {
        return None;
    }
    st.interactive.pop_front().or_else(|| st.batch.pop_front())
}

/// Caller-side handle of one serving session; see the [module docs](self)
/// for the API walk-through.
pub struct ServeHandle<'a, 'd> {
    service: &'a CompileService<'d>,
    engine: &'a Engine,
}

impl<'a, 'd> ServeHandle<'a, 'd> {
    /// Submits one compile request, returning its [`Ticket`] — or
    /// [`ServiceError::QueueFull`] when the admission queue is at capacity.
    ///
    /// A request answered by the service's compile cache completes
    /// immediately (bit-identical by determinism) without consuming queue
    /// capacity.
    pub fn submit(
        &self,
        circuit: &Circuit,
        options: &CompilerOptions,
        submit: SubmitOptions,
    ) -> Result<Ticket, ServiceError> {
        let cache_key = if self.service.cache.enabled() {
            Some(self.service.request_key(circuit, options))
        } else {
            None
        };
        let mut st = self.engine.state.lock().expect("serve engine poisoned");
        if !submit.bypass_cache {
            if let Some(key) = &cache_key {
                if let Some(hit) = self.service.cache.get(key) {
                    let ticket = st.next_ticket;
                    st.next_ticket += 1;
                    self.service
                        .counters
                        .submitted
                        .fetch_add(1, Ordering::Relaxed);
                    self.service
                        .counters
                        .completed
                        .fetch_add(1, Ordering::Relaxed);
                    st.completed.insert(ticket, Ok((*hit).clone()));
                    st.completion_order.push(Ticket(ticket));
                    self.engine.done.notify_all();
                    return Ok(Ticket(ticket));
                }
            }
        }
        if st.interactive.len() + st.batch.len() >= self.engine.queue_capacity {
            self.service
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::QueueFull);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        self.service
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let pipeline = options.strategy.pipeline();
        if st.stages.len() < pipeline.len() {
            st.stages.resize_with(pipeline.len(), VecDeque::new);
        }
        let job = Job {
            ticket,
            circuit: circuit.clone(),
            options: options.clone(),
            pipeline,
            state: PassState::default(),
            cursor: 0,
            deadline: submit.deadline.map(|d| Instant::now() + d),
            progress: submit.progress,
            cache_key,
        };
        match submit.priority {
            Priority::Interactive => st.interactive.push_back(job),
            Priority::Batch => st.batch.push_back(job),
        }
        st.outstanding += 1;
        self.engine.work.notify_one();
        Ok(Ticket(ticket))
    }

    /// Claims a finished result without blocking; `None` while the request
    /// is still queued or in flight. A result is claimed exactly once —
    /// after a `Some`, further polls of the same ticket return `None`.
    pub fn poll(&self, ticket: Ticket) -> Option<Result<CompilationResult, ServiceError>> {
        self.engine
            .state
            .lock()
            .expect("serve engine poisoned")
            .completed
            .remove(&ticket.0)
    }

    /// Blocks until the request finishes and claims its result.
    ///
    /// Waiting on a ticket whose result was already claimed (or that this
    /// session never issued) would block forever; tickets are meant to be
    /// redeemed exactly once.
    pub fn wait(&self, ticket: Ticket) -> Result<CompilationResult, ServiceError> {
        let mut st = self.engine.state.lock().expect("serve engine poisoned");
        loop {
            if let Some(result) = st.completed.remove(&ticket.0) {
                return result;
            }
            st = self.engine.done.wait(st).expect("serve engine poisoned");
        }
    }

    /// Pauses admission: accepted requests keep queueing, in-flight requests
    /// keep draining, but nothing new enters the pipeline until
    /// [`resume`](Self::resume).
    pub fn pause(&self) {
        self.engine
            .state
            .lock()
            .expect("serve engine poisoned")
            .paused = true;
    }

    /// Reopens admission after [`pause`](Self::pause) (or a
    /// [`ServeConfig::start_paused`] start).
    pub fn resume(&self) {
        self.engine
            .state
            .lock()
            .expect("serve engine poisoned")
            .paused = false;
        self.engine.work.notify_all();
    }

    /// Number of requests currently queued or in flight.
    pub fn outstanding(&self) -> usize {
        self.engine
            .state
            .lock()
            .expect("serve engine poisoned")
            .outstanding
    }

    /// Tickets in the order their results completed — the observable record
    /// of priority scheduling (and a debugging aid).
    pub fn completion_order(&self) -> Vec<Ticket> {
        self.engine
            .state
            .lock()
            .expect("serve engine poisoned")
            .completion_order
            .clone()
    }
}

/// Runs one serving session: spawns the stage workers, hands the caller a
/// [`ServeHandle`], and — after the closure returns — drains every accepted
/// request before returning (admission is re-opened for the drain if the
/// session was left paused).
pub(crate) fn serve<'d, R>(
    service: &CompileService<'d>,
    config: ServeConfig,
    f: impl FnOnce(&ServeHandle<'_, 'd>) -> R,
) -> R {
    let workers = if config.workers == 0 {
        service.pool.threads()
    } else {
        config.workers
    };
    let engine = Engine::new(&config);
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| worker_loop(service, &engine));
        }
        let handle = ServeHandle {
            service,
            engine: &engine,
        };
        let out = f(&handle);
        {
            let mut st = engine.state.lock().expect("serve engine poisoned");
            st.closed = true;
            // Accepted work is always honored: un-pause for the final drain.
            st.paused = false;
        }
        engine.work.notify_all();
        out
    })
}

/// Stage worker: repeatedly claims the deepest available job and advances it.
fn worker_loop(service: &CompileService<'_>, engine: &Engine) {
    loop {
        let job = {
            let mut st = engine.state.lock().expect("serve engine poisoned");
            loop {
                if let Some(job) = take_next(&mut st) {
                    break job;
                }
                if st.closed && st.outstanding == 0 {
                    return;
                }
                st = engine.work.wait(st).expect("serve engine poisoned");
            }
        };
        advance(service, engine, job);
    }
}

/// Advances one job: runs passes from its cursor until it completes, fails,
/// expires, or hands off to a stage queue with room.
fn advance(service: &CompileService<'_>, engine: &Engine, mut job: Job) {
    loop {
        // Deadline gate between passes: cancel instead of burning stages.
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                service
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                let mut st = engine.state.lock().expect("serve engine poisoned");
                engine.complete(&mut st, job.ticket, Err(ServiceError::DeadlineExpired));
                return;
            }
        }
        if job.cursor == job.pipeline.len() {
            let result = finish(job.state, job.options.strategy, job.circuit.n_qubits());
            if let (Some(key), Ok(r)) = (&job.cache_key, &result) {
                service
                    .cache
                    .insert(key.clone(), std::sync::Arc::new(r.clone()));
            }
            service.counters.completed.fetch_add(1, Ordering::Relaxed);
            let mut st = engine.state.lock().expect("serve engine poisoned");
            engine.complete(&mut st, job.ticket, result.map_err(ServiceError::from));
            return;
        }
        // Stage workers provide the parallelism; each pass runs with a
        // serial pricing pool (results are bit-identical either way).
        let ctx = PassContext::new(
            &job.circuit,
            service.device,
            service.model.as_ref(),
            &job.options,
            ThreadPool::serial(),
        )
        .with_backend_fingerprint(&service.fingerprint);
        if let Err(e) = job.pipeline.run_pass(job.cursor, &mut job.state, &ctx) {
            service.counters.completed.fetch_add(1, Ordering::Relaxed);
            let mut st = engine.state.lock().expect("serve engine poisoned");
            engine.complete(&mut st, job.ticket, Err(ServiceError::Compile(e)));
            return;
        }
        if let Some(progress) = &job.progress {
            let report = job.state.reports.last().expect("run_pass pushed a report");
            // Lossy on purpose: a slow consumer must not stall the stage.
            let _ = progress.try_send(PassProgress {
                ticket: Ticket(job.ticket),
                report: report.clone(),
            });
        }
        job.cursor += 1;
        if job.cursor < job.pipeline.len() {
            let mut st = engine.state.lock().expect("serve engine poisoned");
            if st.stages[job.cursor].len() < engine.stage_capacity {
                st.stages[job.cursor].push_back(job);
                engine.work.notify_one();
                return;
            }
            // Downstream stage full: keep the job and run the next pass
            // inline — backpressure without blocking (and without deadlock).
        }
    }
}
