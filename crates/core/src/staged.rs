//! Staged (hyper-pipelined) execution of a pass [`Pipeline`] over a batch of
//! circuits.
//!
//! [`Pipeline::run`] drives one circuit through every pass back-to-back; a
//! batch compiled that way — even fanned out circuit-per-thread — still
//! barriers per circuit. The staged mode instead turns the *passes* into
//! concurrent stages, following the System Hyper Pipelining idea: each stage
//! worker owns a contiguous range of passes and a bounded input channel
//! ([`threadpool::mpmc`]), and circuits stream through the chain, so circuit
//! B runs `flatten` while circuit A is in `aggregation`. The bounded channels
//! give backpressure for free: a slow stage fills its input queue and the
//! stage ahead of it blocks instead of buffering unboundedly.
//!
//! Output is **bit-identical** to the serial path by construction: every
//! circuit's passes run in recipe order over its own [`PassState`] via the
//! same [`Pipeline::run_pass`] the serial driver uses; the stages only
//! overlap *different* circuits. Shared latency-model caches are
//! compute-once per key, so cross-circuit sharing stays exactly-once no
//! matter how the stages interleave.
//!
//! This is the engine behind
//! [`Compiler::compile_batch`](crate::pipeline::Compiler::compile_batch); the
//! streaming serving front door with admission control lives in
//! [`crate::service::queue`].

use crate::passes::{CompileError, PassContext, PassState, Pipeline};
use crate::pipeline::CompilerOptions;
use qcc_hw::{Device, LatencyModel};
use qcc_ir::Circuit;
use std::sync::Mutex;
use threadpool::{mpmc, ThreadPool};

/// Default capacity of each stage's bounded input channel. Small on purpose:
/// each queued entry holds a full instruction stream, and a deep queue only
/// hides backpressure without adding overlap.
pub const DEFAULT_STAGE_CAPACITY: usize = 4;

/// One circuit's in-flight compilation state, handed from stage to stage.
struct StagedJob {
    index: usize,
    state: PassState,
}

impl Pipeline {
    /// Runs the pipeline over a batch of circuits in staged mode: the passes
    /// are split into up to `threads` contiguous stage ranges, each driven by
    /// a dedicated worker with a bounded input channel of `stage_capacity`
    /// jobs, and the circuits stream through the chain (circuit *i+1* enters
    /// stage 0 while circuit *i* is further down the pipe).
    ///
    /// Results are returned in input order and are bit-identical to calling
    /// [`run`](Self::run) per circuit: each circuit's passes execute in
    /// recipe order over its own state, and per-circuit failures surface in
    /// that circuit's slot without affecting the rest. Inside staged mode
    /// each pass runs with a serial pricing pool — the stage overlap *is*
    /// the parallelism (callers wanting warm caches should pre-warm on the
    /// full pool first, as
    /// [`Compiler::compile_batch`](crate::pipeline::Compiler::compile_batch)
    /// does).
    ///
    /// With one thread, one circuit, or an empty pipeline this degrades to
    /// the serial per-circuit loop, with the full `threads` budget given to
    /// each compile's internal pricing loops.
    /// `fingerprint` is the identity of the backend being compiled for (see
    /// [`PassContext::with_backend_fingerprint`]); pass `&[]` for
    /// backend-less compilations.
    #[allow(clippy::too_many_arguments)] // internal engine API: one slot per pipeline input
    pub fn run_staged(
        &self,
        circuits: &[Circuit],
        device: &Device,
        model: &dyn LatencyModel,
        fingerprint: &[u8],
        options: &CompilerOptions,
        threads: usize,
        stage_capacity: usize,
    ) -> Vec<Result<PassState, CompileError>> {
        let stages = self.len();
        let workers = threads.min(stages);
        if workers <= 1 || circuits.len() <= 1 {
            let pool = ThreadPool::new(threads.max(1));
            return circuits
                .iter()
                .map(|circuit| {
                    let ctx = PassContext::new(circuit, device, model, options, pool)
                        .with_backend_fingerprint(fingerprint);
                    self.run(&ctx)
                })
                .collect();
        }

        // Split the pass indices into `workers` contiguous, near-equal ranges.
        let base = stages / workers;
        let rem = stages % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < rem);
            ranges.push(start..start + len);
            start += len;
        }

        let results: Mutex<Vec<Option<Result<PassState, CompileError>>>> =
            Mutex::new((0..circuits.len()).map(|_| None).collect());
        let record = |index: usize, result: Result<PassState, CompileError>| {
            results.lock().expect("staged results poisoned")[index] = Some(result);
        };
        // Runs one worker's stage range over a job's state; returns false (and
        // records the error) when a pass fails, consuming the job.
        let run_range = |range: &std::ops::Range<usize>, job: &mut StagedJob| -> bool {
            let ctx = PassContext::new(
                &circuits[job.index],
                device,
                model,
                options,
                ThreadPool::serial(),
            )
            .with_backend_fingerprint(fingerprint);
            for i in range.clone() {
                if let Err(e) = self.run_pass(i, &mut job.state, &ctx) {
                    record(job.index, Err(e));
                    return false;
                }
            }
            true
        };

        let mut senders = Vec::with_capacity(workers - 1);
        let mut receivers = Vec::with_capacity(workers - 1);
        for _ in 0..workers - 1 {
            let (tx, rx) = mpmc::bounded::<StagedJob>(stage_capacity);
            senders.push(tx);
            receivers.push(rx);
        }

        std::thread::scope(|scope| {
            let mut tx_iter = senders.into_iter();
            let first_tx = tx_iter.next().expect("at least two stage workers");
            // Downstream stage workers: receive, run their pass range, hand
            // off (or record the finished state). Dropping the upstream
            // sender cascades a clean shutdown through the chain.
            for (w, rx) in (1..workers).zip(receivers) {
                let tx = tx_iter.next(); // None for the final stage worker
                let range = ranges[w].clone();
                let run_range = &run_range;
                let record = &record;
                scope.spawn(move || {
                    while let Ok(mut job) = rx.recv() {
                        if !run_range(&range, &mut job) {
                            continue;
                        }
                        match &tx {
                            Some(tx) => tx
                                .send(job)
                                .unwrap_or_else(|_| panic!("stage {} hung up early", w + 1)),
                            None => record(job.index, Ok(job.state)),
                        }
                    }
                });
            }
            // The calling thread is stage worker 0: it feeds the chain,
            // blocking on the first bounded channel when stage 1 lags.
            for (index, _) in circuits.iter().enumerate() {
                let mut job = StagedJob {
                    index,
                    state: PassState::default(),
                };
                if run_range(&ranges[0], &mut job) {
                    first_tx
                        .send(job)
                        .unwrap_or_else(|_| panic!("stage 1 hung up early"));
                }
            }
            drop(first_tx);
        });

        results
            .into_inner()
            .expect("staged results poisoned")
            .into_iter()
            .map(|r| r.expect("every circuit produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Strategy;
    use qcc_hw::CalibratedLatencyModel;
    use qcc_ir::Gate;

    fn workload(n: usize, twist: f64) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push(Gate::H, &[q]);
        }
        for q in 0..n - 1 {
            c.push(Gate::Cnot, &[q, q + 1]);
            c.push(Gate::Rz(twist + q as f64 * 0.1), &[q + 1]);
            c.push(Gate::Cnot, &[q, q + 1]);
        }
        c
    }

    #[test]
    fn staged_output_is_bit_identical_to_serial_at_every_worker_count() {
        let device = Device::transmon_line(4);
        let model = CalibratedLatencyModel::new(device.limits);
        let circuits = vec![workload(4, 0.3), workload(3, 1.1), workload(4, 2.2)];
        for strategy in Strategy::all() {
            let options = CompilerOptions::strategy(strategy);
            let pipeline = strategy.pipeline();
            let serial: Vec<PassState> = circuits
                .iter()
                .map(|c| {
                    let ctx = PassContext::new(c, &device, &model, &options, ThreadPool::serial());
                    pipeline.run(&ctx).expect("serial compile succeeds")
                })
                .collect();
            for threads in [2, 4, 8] {
                let staged = pipeline.run_staged(
                    &circuits,
                    &device,
                    &model,
                    &[],
                    &options,
                    threads,
                    DEFAULT_STAGE_CAPACITY,
                );
                for (i, (s, reference)) in staged.into_iter().zip(&serial).enumerate() {
                    let s = s.expect("staged compile succeeds");
                    assert_eq!(
                        s.instructions, reference.instructions,
                        "{strategy:?} circuit {i} at {threads} threads"
                    );
                    let a = s.latencies.as_deref().unwrap();
                    let b = reference.latencies.as_deref().unwrap();
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{strategy:?} circuit {i}");
                    }
                    assert_eq!(s.swap_count, reference.swap_count);
                    assert_eq!(
                        s.reports.iter().map(|r| r.pass).collect::<Vec<_>>(),
                        reference.reports.iter().map(|r| r.pass).collect::<Vec<_>>(),
                    );
                }
            }
        }
    }

    #[test]
    fn staged_failures_stay_in_their_slot() {
        let device = Device::transmon_line(3);
        let model = CalibratedLatencyModel::new(device.limits);
        let options = CompilerOptions::strategy(Strategy::Cls);
        let circuits = vec![workload(3, 0.5), workload(5, 0.5), workload(3, 0.7)];
        let out = Strategy::Cls.pipeline().run_staged(
            &circuits,
            &device,
            &model,
            &[],
            &options,
            4,
            DEFAULT_STAGE_CAPACITY,
        );
        assert!(out[0].is_ok());
        assert_eq!(
            out[1].as_ref().unwrap_err(),
            &CompileError::DeviceTooSmall {
                needed: 5,
                available: 3
            }
        );
        assert!(out[2].is_ok());
    }

    #[test]
    fn tiny_stage_capacity_still_completes() {
        // Capacity 1 forces constant backpressure through the whole chain.
        let device = Device::transmon_line(4);
        let model = CalibratedLatencyModel::new(device.limits);
        let options = CompilerOptions::strategy(Strategy::ClsAggregation);
        let circuits: Vec<Circuit> = (0..6).map(|i| workload(4, 0.2 + i as f64)).collect();
        let out = Strategy::ClsAggregation.pipeline().run_staged(
            &circuits,
            &device,
            &model,
            &[],
            &options,
            8,
            1,
        );
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|r| r.is_ok()));
    }
}
