//! # qcc-core
//!
//! The aggregated-instruction quantum compiler — a from-scratch implementation
//! of *Optimized Compilation of Aggregated Instructions for Realistic Quantum
//! Computers* (Shi et al., ASPLOS 2019).
//!
//! The pipeline mirrors the right-hand side of the paper's Fig. 5:
//!
//! 1. [`frontend`] — flattening to the 1-/2-qubit virtual ISA and detection of
//!    commuting diagonal blocks (CNOT–Rz–CNOT structures, §3.3.1/§4.2);
//! 2. [`cls`] — commutativity-aware logical scheduling (Algorithm 1, §3.3.2);
//! 3. [`mapping`] — qubit placement by recursive interaction-graph bisection
//!    and SWAP insertion for nearest-neighbour devices (§3.4.1);
//! 4. [`aggregate`] — monotonic-action instruction aggregation iterating with a
//!    latency model / the optimal-control unit (§4.1, §4.3);
//! 5. [`pipeline`] — the strategy matrix of the evaluation (ISA baseline, CLS,
//!    Aggregation, CLS+Aggregation, CLS+hand-optimization);
//! 6. [`verify`] — circuit-level and pulse-level verification (§3.6).
//!
//! Each stage is exposed as a composable [`passes::Pass`]; a [`Strategy`] is a
//! preset recipe over those passes ([`Strategy::pipeline`]), custom orders are
//! assembled with [`passes::PipelineBuilder`], and batches of circuits go
//! through the [`CompileService`] front door (or [`Compiler::compile_batch`]).
//!
//! ## Example
//!
//! ```
//! use qcc_core::{compile_with_default_model, CompilerOptions, Strategy};
//! use qcc_hw::Device;
//! use qcc_ir::{Circuit, Gate};
//!
//! // A toy QAOA-style block.
//! let mut circuit = Circuit::new(2);
//! circuit.push(Gate::H, &[0]);
//! circuit.push(Gate::Cnot, &[0, 1]);
//! circuit.push(Gate::Rz(1.2), &[1]);
//! circuit.push(Gate::Cnot, &[0, 1]);
//!
//! let device = Device::transmon_line(2);
//! let baseline = compile_with_default_model(
//!     &circuit, &device, &CompilerOptions::strategy(Strategy::IsaBaseline));
//! let aggregated = compile_with_default_model(
//!     &circuit, &device, &CompilerOptions::strategy(Strategy::ClsAggregation));
//! assert!(aggregated.total_latency_ns < baseline.total_latency_ns);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod cls;
pub mod frontend;
pub mod handopt;
pub mod instr;
pub mod mapping;
pub mod partition;
pub mod passes;
pub mod persist;
pub mod pipeline;
pub mod schedule;
pub mod service;
pub mod staged;
pub mod verify;

pub use aggregate::{AggregationOptions, AggregationStats};
pub use instr::{AggregateInstruction, InstructionOrigin};
pub use mapping::Layout;
pub use partition::{
    partition_circuit, LogicalPartition, LogicalRegion, PartitionOptions, PartitionPass,
    PartitionPlan, PartitionSummary, RegionTelemetry,
};
pub use passes::{
    CompileError, GatePricing, Pass, PassContext, PassReport, PassState, Pipeline, PipelineBuilder,
};
// Re-exported so `PassReport::pricing` consumers need no direct qcc-hw dep.
pub use persist::{cache_dir_from, cache_dir_from_env, decode_result, encode_result};
pub use pipeline::{
    CompilationResult, Compiler, CompilerOptions, ParseStrategyError, Strategy, StrategyComparison,
};
pub use qcc_hw::{Backend, PersistError, PersistentCache, PricingStats};
pub use schedule::{asap_schedule, Schedule, ScheduledInstruction};
pub use service::fleet::{
    CandidateQuote, Fleet, FleetBackendStats, FleetSubmitOptions, FleetTicket,
    PartitionedSubmission, Relocation, RoutingDecision, DEFAULT_RELOCATION_HYSTERESIS_NS,
};
pub use service::queue::{
    PassProgress, Priority, ServeConfig, ServeHandle, ServiceError, SubmitOptions, Ticket,
};
pub use service::{
    compile_with_default_model, CachePolicy, CompileCacheStats, CompileService,
    DEFAULT_COMPILE_CACHE_CAPACITY,
};
pub use staged::DEFAULT_STAGE_CAPACITY;
pub use verify::{verify_compilation, verify_sampled_pulses, CircuitVerification};
