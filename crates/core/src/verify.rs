//! Verification of compiled programs (§3.6).
//!
//! Two levels of checking mirror the paper's procedure:
//!
//! 1. **Circuit-level**: the compiled instruction stream implements the same
//!    unitary as the input circuit, up to the qubit relabelling introduced by
//!    the mapper (checked exactly with the state-vector simulator for circuits
//!    small enough to simulate).
//! 2. **Pulse-level**: a sample of aggregated instructions is handed to the
//!    optimal-control unit and the resulting pulses are re-simulated and
//!    compared against the instruction unitaries ("we sample 10 aggregated
//!    instructions for each benchmark to verify that the control pulses of all
//!    instructions produce the correct unitary").

use crate::frontend;
use crate::instr::AggregateInstruction;
use crate::pipeline::CompilationResult;
use qcc_control::{verify_pulse, GrapeLatencyModel, TransmonSystem};
use qcc_hw::ControlLimits;
use qcc_ir::Circuit;
use qcc_math::CMatrix;

/// Outcome of circuit-level verification.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitVerification {
    /// Whether the compiled program matches the input circuit.
    pub equivalent: bool,
    /// Maximum absolute deviation between the two unitaries after aligning
    /// global phase and qubit relabelling.
    pub max_deviation: f64,
}

/// Verifies that a compilation result implements the input circuit.
///
/// The compiled program acts on physical qubits; logical qubit `l` starts at
/// physical `initial_layout[l]` and ends at `final_layout[l]`. The check
/// compares `P_final† · U_compiled · P_initial` against the original circuit
/// unitary (up to global phase), where the `P`s are the corresponding qubit
/// permutations.
///
/// # Panics
///
/// Panics if the circuit has more than 10 qubits (use sampling-based pulse
/// verification for larger programs).
pub fn verify_compilation(circuit: &Circuit, result: &CompilationResult) -> CircuitVerification {
    assert!(
        circuit.n_qubits() <= 10,
        "circuit-level verification only supported up to 10 qubits"
    );
    let n_logical = circuit.n_qubits();
    let n_physical = result
        .instructions
        .iter()
        .flat_map(|i| i.qubits.iter().copied())
        .max()
        .map_or(n_logical, |m| (m + 1).max(n_logical));

    // Unitary of the compiled program on the physical register.
    let compiled = frontend::to_circuit(&result.instructions, n_physical).unitary();

    // Embed the original circuit on the physical register via the *initial*
    // layout, then undo the relabelling produced by routing with the *final*
    // layout: logical qubit l lives on initial_layout[l] at the start and on
    // final_layout[l] at the end.
    let mut original_embedded = Circuit::new(n_physical);
    original_embedded.extend_mapped(circuit, &result.initial_layout.physical);
    let original = original_embedded.unitary();

    // Permutation matrix moving qubit initial_layout[l] to final_layout[l].
    let perm = permutation_matrix(n_physical, |p| {
        // Which logical qubit starts on physical p (if any)?
        match result.initial_layout.physical.iter().position(|&x| x == p) {
            Some(l) => result.final_layout.physical[l],
            None => p,
        }
    });
    let expected = perm.matmul(&original);

    let mut max_dev = 0.0f64;
    let equivalent = compiled.approx_eq_up_to_phase(&expected, 1e-7);
    if !equivalent {
        // Report how far off we are (phase-aligned Frobenius-style max entry).
        let dev = qcc_math::phase_invariant_distance(&compiled, &expected);
        max_dev = dev;
    }
    CircuitVerification {
        equivalent,
        max_deviation: max_dev,
    }
}

/// Builds the permutation matrix sending basis qubit `p` to `dest(p)`.
fn permutation_matrix(n_qubits: usize, dest: impl Fn(usize) -> usize) -> CMatrix {
    let dim = 1usize << n_qubits;
    let mut m = CMatrix::zeros(dim, dim);
    for basis in 0..dim {
        let mut image = 0usize;
        for q in 0..n_qubits {
            let bit = (basis >> (n_qubits - 1 - q)) & 1;
            let d = dest(q);
            image |= bit << (n_qubits - 1 - d);
        }
        m[(image, basis)] = qcc_math::C64::one();
    }
    m
}

/// Outcome of pulse-level verification of one instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct InstructionPulseCheck {
    /// Index of the instruction in the compiled program.
    pub instruction_index: usize,
    /// Width of the instruction.
    pub width: usize,
    /// Fidelity of the optimized pulse against the instruction unitary.
    pub fidelity: f64,
    /// Whether the fidelity cleared the threshold.
    pub passed: bool,
    /// Pulse duration found by the optimal-control unit (ns).
    pub duration_ns: f64,
}

/// Samples up to `sample_count` multi-gate instructions from a compilation
/// result, runs the optimal-control unit on each, and verifies the resulting
/// pulses against the instruction unitaries.
///
/// Instructions wider than the control unit's limit are skipped (the paper
/// likewise only optimizes instructions the control unit can handle).
pub fn verify_sampled_pulses(
    result: &CompilationResult,
    control: &GrapeLatencyModel,
    limits: ControlLimits,
    sample_count: usize,
    fidelity_threshold: f64,
) -> Vec<InstructionPulseCheck> {
    let mut checks = Vec::new();
    let candidates: Vec<(usize, &AggregateInstruction)> = result
        .instructions
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.gate_count() > 1 || inst.width() >= 2)
        .collect();
    // Deterministic spread over the candidate list.
    let step = (candidates.len() / sample_count.max(1)).max(1);
    for (idx, inst) in candidates.into_iter().step_by(step).take(sample_count) {
        let Some((duration, grape_result)) = control.optimize_instruction(&inst.constituents)
        else {
            continue;
        };
        let (target, support) = GrapeLatencyModel::target_unitary(&inst.constituents);
        let system = TransmonSystem::fully_coupled(support.len(), limits);
        let verification = verify_pulse(&system, &grape_result, &target, fidelity_threshold);
        checks.push(InstructionPulseCheck {
            instruction_index: idx,
            width: inst.width(),
            fidelity: verification.fidelity,
            passed: verification.passed,
            duration_ns: duration,
        });
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Compiler, CompilerOptions, Strategy};
    use qcc_hw::{CalibratedLatencyModel, Device, Topology};
    use qcc_ir::Gate;

    fn small_qaoa() -> Circuit {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::H, &[q]);
        }
        for &(a, b) in &[(0usize, 1usize), (1, 2), (0, 2)] {
            c.push(Gate::Cnot, &[a, b]);
            c.push(Gate::Rz(0.8), &[b]);
            c.push(Gate::Cnot, &[a, b]);
        }
        for q in 0..3 {
            c.push(Gate::Rx(0.4), &[q]);
        }
        c
    }

    #[test]
    fn every_strategy_preserves_the_qaoa_unitary() {
        let circuit = small_qaoa();
        let device = Device::transmon(Topology::Linear(3));
        let model = CalibratedLatencyModel::asplos19();
        let compiler = Compiler::new(&device, &model);
        for strategy in Strategy::all() {
            let result = compiler.compile(&circuit, &CompilerOptions::strategy(strategy));
            let check = verify_compilation(&circuit, &result);
            assert!(
                check.equivalent,
                "{strategy:?} broke the circuit (deviation {})",
                check.max_deviation
            );
        }
    }

    #[test]
    fn verification_catches_a_corrupted_program() {
        let circuit = small_qaoa();
        let device = Device::transmon(Topology::Linear(3));
        let model = CalibratedLatencyModel::asplos19();
        let compiler = Compiler::new(&device, &model);
        let mut result = compiler.compile(&circuit, &CompilerOptions::strategy(Strategy::Cls));
        // Corrupt the program by dropping an instruction.
        result.instructions.pop();
        let check = verify_compilation(&circuit, &result);
        assert!(!check.equivalent);
        assert!(check.max_deviation > 1e-3);
    }

    #[test]
    fn permutation_matrix_is_a_permutation() {
        let m = permutation_matrix(3, |q| (q + 1) % 3);
        assert!(m.is_unitary(1e-12));
        // |100> (q0=1) should map to |010> (q1=1): index 4 -> 2.
        assert!((m[(2, 4)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_pulse_verification_passes_on_small_instructions() {
        let circuit = small_qaoa();
        let device = Device::transmon(Topology::Linear(3));
        let model = CalibratedLatencyModel::asplos19();
        let compiler = Compiler::new(&device, &model);
        let result = compiler.compile(
            &circuit,
            &CompilerOptions {
                strategy: Strategy::ClsAggregation,
                aggregation: crate::aggregate::AggregationOptions::with_width(2),
            },
        );
        let control = GrapeLatencyModel::fast_two_qubit();
        let checks = verify_sampled_pulses(&result, &control, ControlLimits::asplos19(), 2, 0.95);
        assert!(!checks.is_empty());
        for check in &checks {
            assert!(
                check.passed,
                "pulse for instruction {} only reached fidelity {}",
                check.instruction_index, check.fidelity
            );
        }
    }
}
