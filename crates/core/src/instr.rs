//! Aggregated instructions — the compiler's unit of pulse generation.
//!
//! An [`AggregateInstruction`] wraps an ordered list of constituent logical
//! gates acting on a small set of qubits. The compiler starts with one
//! instruction per gate, contracts diagonal blocks during commutativity
//! detection (§4.2), and grows instructions further during the aggregation
//! pass (§4.3). The optimal-control unit ultimately compiles each instruction
//! into a single pulse.

use qcc_ir::{commute, Gate, Instruction};
use qcc_math::CMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How an instruction came to exist — used for reporting and for pricing under
/// the different compilation strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstructionOrigin {
    /// A single logical gate from the input circuit.
    Single,
    /// A SWAP inserted by the router.
    RoutingSwap,
    /// A diagonal block contracted by commutativity detection.
    DiagonalBlock,
    /// A multi-gate aggregate produced by the aggregation pass.
    Aggregated,
    /// A pattern rewritten by the hand-optimization baseline.
    HandOptimized,
}

/// A (possibly aggregated) instruction: an ordered gate sequence on a small
/// qubit support, treated by the backend as a single pulse-generation unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateInstruction {
    /// Constituent gates in program order.
    pub constituents: Vec<Instruction>,
    /// Sorted list of qubits the instruction touches.
    pub qubits: Vec<usize>,
    /// Provenance of the instruction.
    pub origin: InstructionOrigin,
}

impl AggregateInstruction {
    /// Wraps a single gate.
    pub fn from_gate(inst: Instruction) -> Self {
        let mut qubits = inst.qubits.clone();
        qubits.sort_unstable();
        Self {
            constituents: vec![inst],
            qubits,
            origin: InstructionOrigin::Single,
        }
    }

    /// Builds an instruction from a gate sequence.
    ///
    /// # Panics
    ///
    /// Panics if `constituents` is empty.
    pub fn from_gates(constituents: Vec<Instruction>, origin: InstructionOrigin) -> Self {
        assert!(!constituents.is_empty(), "empty aggregated instruction");
        let mut qubits: Vec<usize> = Vec::new();
        for inst in &constituents {
            for &q in &inst.qubits {
                if !qubits.contains(&q) {
                    qubits.push(q);
                }
            }
        }
        qubits.sort_unstable();
        Self {
            constituents,
            qubits,
            origin,
        }
    }

    /// A routing SWAP between two physical qubits.
    pub fn routing_swap(a: usize, b: usize) -> Self {
        let mut s = Self::from_gate(Instruction::new(Gate::Swap, vec![a, b]));
        s.origin = InstructionOrigin::RoutingSwap;
        s
    }

    /// Number of qubits (the paper's "instruction width").
    pub fn width(&self) -> usize {
        self.qubits.len()
    }

    /// Number of constituent gates.
    pub fn gate_count(&self) -> usize {
        self.constituents.len()
    }

    /// Whether the instruction touches qubit `q`.
    pub fn acts_on(&self, q: usize) -> bool {
        self.qubits.contains(&q)
    }

    /// Qubits shared with another instruction.
    pub fn shared_qubits(&self, other: &AggregateInstruction) -> Vec<usize> {
        self.qubits
            .iter()
            .copied()
            .filter(|q| other.acts_on(*q))
            .collect()
    }

    /// Merges two instructions: `self` followed by `other`.
    pub fn merge(&self, other: &AggregateInstruction) -> AggregateInstruction {
        let mut constituents = self.constituents.clone();
        constituents.extend(other.constituents.iter().cloned());
        AggregateInstruction::from_gates(constituents, InstructionOrigin::Aggregated)
    }

    /// Remaps every qubit index through `mapping` (logical → physical).
    pub fn remap(&self, mapping: &[usize]) -> AggregateInstruction {
        let constituents = self
            .constituents
            .iter()
            .map(|i| Instruction::new(i.gate, i.qubits.iter().map(|&q| mapping[q]).collect()))
            .collect();
        AggregateInstruction::from_gates(constituents, self.origin)
    }

    /// The unitary implemented on the instruction's local (sorted) support.
    ///
    /// # Panics
    ///
    /// Panics for instructions wider than 10 qubits.
    pub fn local_unitary(&self) -> CMatrix {
        assert!(
            self.width() <= 10,
            "instruction too wide for a dense unitary"
        );
        let n = self.width();
        let dim = 1usize << n;
        let mut u = CMatrix::identity(dim);
        for inst in &self.constituents {
            let local: Vec<usize> = inst
                .qubits
                .iter()
                .map(|q| self.qubits.iter().position(|s| s == q).expect("in support"))
                .collect();
            u = inst.gate.matrix().embed(n, &local).matmul(&u);
        }
        u
    }

    /// Whether the instruction implements a diagonal unitary.
    pub fn is_diagonal(&self) -> bool {
        if self.constituents.iter().all(|i| i.gate.is_diagonal()) {
            return true;
        }
        if self.width() > 4 {
            return false;
        }
        self.local_unitary().is_diagonal(1e-9)
    }

    /// Whether two instructions commute. Disjoint instructions always commute;
    /// otherwise the structural per-constituent check is tried first and the
    /// exact unitary comparison is used as a fallback for supports of up to
    /// four qubits.
    pub fn commutes_with(&self, other: &AggregateInstruction) -> bool {
        if self.shared_qubits(other).is_empty() {
            return true;
        }
        // Structural: every constituent pair commutes structurally.
        let structural = self.constituents.iter().all(|a| {
            other
                .constituents
                .iter()
                .all(|b| commute::commute_structural(a, b))
        });
        if structural {
            return true;
        }
        // Both diagonal ⇒ commute.
        if self.is_diagonal() && other.is_diagonal() {
            return true;
        }
        // Exact check on the joint support when small enough.
        let mut support = self.qubits.clone();
        for &q in &other.qubits {
            if !support.contains(&q) {
                support.push(q);
            }
        }
        if support.len() > 4 {
            return false;
        }
        support.sort_unstable();
        let n = support.len();
        let dim = 1usize << n;
        let embed_all = |agg: &AggregateInstruction| -> CMatrix {
            let mut u = CMatrix::identity(dim);
            for inst in &agg.constituents {
                let local: Vec<usize> = inst
                    .qubits
                    .iter()
                    .map(|q| support.iter().position(|s| s == q).expect("in support"))
                    .collect();
                u = inst.gate.matrix().embed(n, &local).matmul(&u);
            }
            u
        };
        let ua = embed_all(self);
        let ub = embed_all(other);
        ua.matmul(&ub).approx_eq(&ub.matmul(&ua), 1e-9)
    }

    /// A compact label for displays (e.g. `G3[q2,q3]`).
    pub fn label(&self, index: usize) -> String {
        let qs: Vec<String> = self.qubits.iter().map(|q| q.to_string()).collect();
        format!("G{}[q{}]", index, qs.join(",q"))
    }
}

impl fmt::Display for AggregateInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gates: Vec<String> = self.constituents.iter().map(|i| i.to_string()).collect();
        write!(f, "[{}]", gates.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_math::pauli;

    fn gate(g: Gate, qs: &[usize]) -> Instruction {
        Instruction::new(g, qs.to_vec())
    }

    #[test]
    fn from_gate_and_width() {
        let a = AggregateInstruction::from_gate(gate(Gate::Cnot, &[3, 1]));
        assert_eq!(a.qubits, vec![1, 3]);
        assert_eq!(a.width(), 2);
        assert_eq!(a.gate_count(), 1);
        assert_eq!(a.origin, InstructionOrigin::Single);
    }

    #[test]
    fn merge_unions_qubits_and_orders_gates() {
        let a = AggregateInstruction::from_gate(gate(Gate::H, &[0]));
        let b = AggregateInstruction::from_gate(gate(Gate::Cnot, &[0, 1]));
        let m = a.merge(&b);
        assert_eq!(m.qubits, vec![0, 1]);
        assert_eq!(m.gate_count(), 2);
        assert_eq!(m.origin, InstructionOrigin::Aggregated);
        assert_eq!(m.constituents[0].gate, Gate::H);
    }

    #[test]
    fn local_unitary_of_diagonal_block() {
        let block = AggregateInstruction::from_gates(
            vec![
                gate(Gate::Cnot, &[2, 5]),
                gate(Gate::Rz(0.9), &[5]),
                gate(Gate::Cnot, &[2, 5]),
            ],
            InstructionOrigin::DiagonalBlock,
        );
        assert_eq!(block.qubits, vec![2, 5]);
        assert!(block.is_diagonal());
        assert!(block
            .local_unitary()
            .approx_eq(&pauli::zz_rotation(0.9), 1e-12));
    }

    #[test]
    fn merge_preserves_unitary_composition() {
        let a = AggregateInstruction::from_gate(gate(Gate::H, &[0]));
        let b = AggregateInstruction::from_gate(gate(Gate::Cnot, &[0, 1]));
        let m = a.merge(&b);
        // U_m = CNOT · (H ⊗ I)
        let want = pauli::cnot().matmul(&pauli::hadamard().kron(&CMatrix::identity(2)));
        assert!(m.local_unitary().approx_eq(&want, 1e-12));
    }

    #[test]
    fn commutation_between_aggregates() {
        let zz1 = AggregateInstruction::from_gates(
            vec![
                gate(Gate::Cnot, &[0, 1]),
                gate(Gate::Rz(0.4), &[1]),
                gate(Gate::Cnot, &[0, 1]),
            ],
            InstructionOrigin::DiagonalBlock,
        );
        let zz2 = AggregateInstruction::from_gates(
            vec![
                gate(Gate::Cnot, &[1, 2]),
                gate(Gate::Rz(1.4), &[2]),
                gate(Gate::Cnot, &[1, 2]),
            ],
            InstructionOrigin::DiagonalBlock,
        );
        // Diagonal blocks sharing a qubit commute (Fig. 6b of the paper).
        assert!(zz1.commutes_with(&zz2));
        // A Hadamard on the shared qubit does not commute with the block.
        let h = AggregateInstruction::from_gate(gate(Gate::H, &[1]));
        assert!(!zz1.commutes_with(&h));
        // Disjoint instructions trivially commute.
        let far = AggregateInstruction::from_gate(gate(Gate::X, &[7]));
        assert!(zz1.commutes_with(&far));
    }

    #[test]
    fn constituent_cnots_do_not_commute_with_each_other() {
        // The gates inside a block do not commute even though the blocks do —
        // the observation at the heart of §3.3.1.
        let c01 = AggregateInstruction::from_gate(gate(Gate::Cnot, &[0, 1]));
        let c12 = AggregateInstruction::from_gate(gate(Gate::Cnot, &[1, 2]));
        assert!(!c01.commutes_with(&c12));
    }

    #[test]
    fn remap_changes_qubits() {
        let a = AggregateInstruction::from_gates(
            vec![gate(Gate::Cnot, &[0, 1]), gate(Gate::Rz(0.3), &[1])],
            InstructionOrigin::Aggregated,
        );
        let r = a.remap(&[5, 2, 0]);
        assert_eq!(r.qubits, vec![2, 5]);
        assert_eq!(r.constituents[0].qubits, vec![5, 2]);
    }

    #[test]
    fn routing_swap_origin() {
        let s = AggregateInstruction::routing_swap(2, 3);
        assert_eq!(s.origin, InstructionOrigin::RoutingSwap);
        assert_eq!(s.qubits, vec![2, 3]);
        assert!(!s.is_diagonal());
    }

    #[test]
    fn labels_are_readable() {
        let a = AggregateInstruction::from_gate(gate(Gate::Cnot, &[0, 1]));
        assert_eq!(a.label(3), "G3[q0,q1]");
        assert!(!format!("{a}").is_empty());
    }
}
