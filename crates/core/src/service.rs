//! The serving front door: an owning [`CompileService`] around the borrowing
//! [`Compiler`] with a bounded compile-result cache, plus the shared
//! default-model cache behind [`compile_with_default_model`].
//!
//! Streaming (async-style) serving — bounded admission queue, priorities,
//! deadlines, per-pass progress — lives in the [`queue`] submodule and is
//! entered through [`CompileService::serve`]. Multi-backend dispatch across a
//! heterogeneous fleet lives in the [`fleet`] submodule.

pub mod fleet;
pub mod queue;

use crate::partition::PartitionOptions;
use crate::passes::CompileError;
use crate::persist::{self, COMPILE_SNAPSHOT_KIND};
use crate::pipeline::{CompilationResult, Compiler, CompilerOptions};
use qcc_hw::persist::{fnv64, hex16, SnapshotWriter, SNAPSHOT_EXTENSION};
use qcc_hw::{Backend, CalibratedLatencyModel, ControlLimits, Device, LatencyModel, PersistError};
use qcc_ir::{ByteCursor, Circuit, DecodeError};
use queue::{ServeConfig, ServeHandle, ServiceError, SubmitOptions};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use threadpool::ThreadPool;

/// Default capacity (in cached results) of the service's compile cache.
pub const DEFAULT_COMPILE_CACHE_CAPACITY: usize = 64;

/// Size of the SHiP signature counter table (a power of two; signatures are
/// hashed into it). 1024 two-bit-ish counters cover far more distinct request
/// signatures than any bounded result cache holds.
const SHCT_SIZE: usize = 1024;

/// Saturation ceiling of one signature counter.
const SHCT_MAX: u8 = 7;

/// Eviction policy of the service's compile-result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Signature-based Hit Predictor (SHiP-style) insertion: each request
    /// signature — the FNV-1a hash of the (backend fingerprint, circuit,
    /// strategy, aggregation options) cache key — has a saturating reuse
    /// counter, trained by observed outcomes (hit ⇒ increment, evicted
    /// without reuse ⇒ decrement). New entries whose signature has never
    /// shown reuse are inserted *at the eviction position*, so a stream of
    /// one-shot fillers churns through a single slot instead of flushing the
    /// hot working set; predicted-reuse entries insert at MRU as usual.
    #[default]
    Ship,
    /// Plain least-recently-used insertion/eviction (every insert at MRU) —
    /// the pre-SHiP behavior, kept for comparison benches and regression
    /// tests.
    PlainLru,
}

/// Summary of the service's compile-cache and request-queue activity, for
/// telemetry and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileCacheStats {
    /// Requests answered from the cache.
    pub hits: usize,
    /// Requests that had to compile.
    pub misses: usize,
    /// Results currently cached.
    pub entries: usize,
    /// Requests accepted by the service (cache hits included), across both
    /// the synchronous entry points and serving sessions.
    pub submitted: usize,
    /// Requests that ran to completion (successful compiles, cache hits, and
    /// compile errors alike). Deadline-cancelled requests count under
    /// [`deadline_expired`](Self::deadline_expired) instead, so the terminal
    /// outcomes of admitted requests partition as
    /// `submitted == completed + deadline_expired` once a session drains.
    pub completed: usize,
    /// Requests rejected with [`queue::ServiceError::QueueFull`] because the
    /// bounded admission queue was at capacity.
    pub rejected: usize,
    /// Requests cancelled mid-pipeline because their deadline lapsed.
    pub deadline_expired: usize,
    /// Inserts whose signature predicted reuse (placed at MRU). Always zero
    /// under [`CachePolicy::PlainLru`].
    pub predicted_reuse: usize,
    /// Inserts whose signature predicted no reuse (placed at the eviction
    /// position). Always zero under [`CachePolicy::PlainLru`].
    pub predicted_one_shot: usize,
    /// Signature counters currently holding a positive reuse prediction —
    /// the footprint of what the predictor has learned.
    pub trained_signatures: usize,
    /// Partitioned requests accepted
    /// ([`compile_partitioned`](CompileService::compile_partitioned)), cache
    /// hits included.
    pub partitioned: usize,
    /// Regions actually compiled across partitioned requests (cache hits
    /// excluded) — the fan-out the partition subsystem produced.
    pub partition_regions: usize,
}

/// Lifetime request counters of one service, shared by the synchronous entry
/// points and every serving session.
#[derive(Default)]
struct ServiceCounters {
    submitted: AtomicUsize,
    completed: AtomicUsize,
    rejected: AtomicUsize,
    deadline_expired: AtomicUsize,
    partitioned: AtomicUsize,
    partition_regions: AtomicUsize,
}

/// One cached result plus the metadata the SHiP predictor trains on.
struct CacheEntry {
    result: Arc<CompilationResult>,
    /// SHiP signature of the request key (FNV-1a 64 of the key bytes).
    signature: u64,
    /// Whether the entry has been hit since insertion — the outcome bit that
    /// trains the signature counter at eviction time.
    referenced: bool,
}

/// A bounded cache of compilation results keyed by the request fingerprint
/// (backend identity + circuit byte encoding + strategy recipe + aggregation
/// options). Compilation is deterministic, so serving a cached clone is
/// indistinguishable from recompiling — repeated batch traffic skips the
/// whole pipeline.
///
/// Under the default [`CachePolicy::Ship`], eviction is reuse-predicted: see
/// the policy docs. The recency list plus the signature counter table are
/// both guarded by one mutex, so training and eviction decisions are
/// race-free.
struct CompileCache {
    capacity: usize,
    policy: CachePolicy,
    entries: Mutex<CacheEntries>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

#[derive(Default)]
struct CacheEntries {
    map: HashMap<Vec<u8>, CacheEntry>,
    /// Keys in least-recently-used-first order (front = next victim).
    lru: VecDeque<Vec<u8>>,
    /// SHiP signature counter table, indexed by `signature % SHCT_SIZE`.
    /// Zero-initialized: a signature predicts reuse only after at least one
    /// observed hit.
    shct: Vec<u8>,
    /// Lifetime count of inserts predicted to be reused.
    predicted_reuse: usize,
    /// Lifetime count of inserts predicted to be one-shot.
    predicted_one_shot: usize,
}

impl CacheEntries {
    fn counter(&mut self, signature: u64) -> &mut u8 {
        if self.shct.is_empty() {
            self.shct = vec![0; SHCT_SIZE];
        }
        &mut self.shct[(signature as usize) % SHCT_SIZE]
    }
}

/// The SHiP signature of a request key.
fn ship_signature(key: &[u8]) -> u64 {
    fnv64(key)
}

impl CompileCache {
    fn new(capacity: usize, policy: CachePolicy) -> Self {
        Self {
            capacity,
            policy,
            entries: Mutex::new(CacheEntries::default()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn get(&self, key: &[u8]) -> Option<Arc<CompilationResult>> {
        let mut entries = self.entries.lock().expect("compile cache poisoned");
        match entries.map.get_mut(key) {
            Some(entry) => {
                let result = entry.result.clone();
                let signature = entry.signature;
                entry.referenced = true;
                if self.policy == CachePolicy::Ship {
                    // Observed reuse: this signature earns a stronger
                    // keep-prediction for its future inserts.
                    let counter = entries.counter(signature);
                    *counter = (*counter + 1).min(SHCT_MAX);
                }
                // Touch: move the key to the most-recently-used end.
                if let Some(pos) = entries.lru.iter().position(|k| k == key) {
                    let k = entries.lru.remove(pos).expect("position just found");
                    entries.lru.push_back(k);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: Vec<u8>, result: Arc<CompilationResult>) {
        let mut entries = self.entries.lock().expect("compile cache poisoned");
        let signature = ship_signature(&key);
        if let Some(existing) = entries.map.get_mut(&key) {
            existing.result = result;
            return;
        }
        match self.policy {
            CachePolicy::Ship => {
                // Evict *before* inserting, so the placement of the new entry
                // (front for predicted one-shots) survives the insert — the
                // victim is always the current front, and an unreferenced
                // victim votes its signature down.
                while entries.map.len() >= self.capacity {
                    let Some(victim_key) = entries.lru.pop_front() else {
                        break;
                    };
                    if let Some(victim) = entries.map.remove(&victim_key) {
                        if !victim.referenced {
                            let counter = entries.counter(victim.signature);
                            *counter = counter.saturating_sub(1);
                        }
                    }
                }
                let predicted_reuse = *entries.counter(signature) > 0;
                if predicted_reuse {
                    entries.predicted_reuse += 1;
                    entries.lru.push_back(key.clone());
                } else {
                    entries.predicted_one_shot += 1;
                    entries.lru.push_front(key.clone());
                }
                entries.map.insert(
                    key,
                    CacheEntry {
                        result,
                        signature,
                        referenced: false,
                    },
                );
            }
            CachePolicy::PlainLru => {
                entries.lru.push_back(key.clone());
                entries.map.insert(
                    key,
                    CacheEntry {
                        result,
                        signature,
                        referenced: false,
                    },
                );
                while entries.map.len() > self.capacity {
                    let Some(oldest) = entries.lru.pop_front() else {
                        break;
                    };
                    entries.map.remove(&oldest);
                }
            }
        }
    }

    /// Seeds one entry from a snapshot: placed at MRU in load order, outcome
    /// bit clear, no predictor training and no hit/miss accounting. Loading
    /// respects the capacity bound by evicting silently (callers feed
    /// most-recent-last, so the survivors are the most recent entries).
    fn seed(&self, key: Vec<u8>, result: Arc<CompilationResult>) {
        let mut entries = self.entries.lock().expect("compile cache poisoned");
        let signature = ship_signature(&key);
        if entries.map.contains_key(&key) {
            return;
        }
        entries.lru.push_back(key.clone());
        entries.map.insert(
            key,
            CacheEntry {
                result,
                signature,
                referenced: false,
            },
        );
        while entries.map.len() > self.capacity {
            let Some(oldest) = entries.lru.pop_front() else {
                break;
            };
            entries.map.remove(&oldest);
        }
    }

    /// Every cached (key, result) pair in least-recently-used-first order —
    /// the order snapshots are written in, so a warm start (which seeds in
    /// file order) reproduces the recency order.
    fn entries_lru_first(&self) -> Vec<(Vec<u8>, Arc<CompilationResult>)> {
        let entries = self.entries.lock().expect("compile cache poisoned");
        entries
            .lru
            .iter()
            .filter_map(|k| entries.map.get(k).map(|e| (k.clone(), e.result.clone())))
            .collect()
    }

    fn stats(&self) -> CompileCacheStats {
        let entries = self.entries.lock().expect("compile cache poisoned");
        CompileCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: entries.map.len(),
            predicted_reuse: entries.predicted_reuse,
            predicted_one_shot: entries.predicted_one_shot,
            trained_signatures: entries.shct.iter().filter(|&&c| c > 0).count(),
            ..CompileCacheStats::default()
        }
    }
}

/// Injective fingerprint of one compile request: the identity of the backend
/// answering it (`backend` — length-prefixed so the key stream stays
/// prefix-free), the circuit's byte encoding, and every option that can
/// change the output (strategy recipe, aggregation limits). A fleet of
/// backends sharing one process therefore never cross-reads compile-cache
/// entries: the same circuit on two backends is two keys.
fn request_fingerprint(
    backend: &[u8],
    circuit: &Circuit,
    options: &CompilerOptions,
    partition: Option<&PartitionOptions>,
) -> Vec<u8> {
    let mut key = Vec::with_capacity(backend.len() + circuit.len() * 20 + 72);
    key.extend_from_slice(&(backend.len() as u64).to_le_bytes());
    key.extend_from_slice(backend);
    key.extend_from_slice(&(circuit.n_qubits() as u64).to_le_bytes());
    for inst in circuit.instructions() {
        inst.encode_into(&mut key);
    }
    // Strategy names are unique per variant; terminate to keep the stream
    // prefix-free against the options that follow.
    key.extend_from_slice(options.strategy.name().as_bytes());
    key.push(0);
    let agg = &options.aggregation;
    key.extend_from_slice(&(agg.max_width as u64).to_le_bytes());
    key.extend_from_slice(&(agg.max_gates as u64).to_le_bytes());
    key.extend_from_slice(&(agg.max_merges as u64).to_le_bytes());
    key.push(agg.require_local_gain as u8);
    key.extend_from_slice(&(agg.search_window as u64).to_le_bytes());
    // Partitioned requests get a suffix; plain requests keep the historical
    // byte layout unchanged. Still injective: the aggregation tail above is
    // fixed-width, so a plain key can never collide with a suffixed one.
    if let Some(partition) = partition {
        key.extend_from_slice(b"partition\0");
        key.extend_from_slice(&(partition.regions as u64).to_le_bytes());
    }
    key
}

/// An owning compilation service: device reference, latency model, and thread
/// pool bundled behind one front door.
///
/// [`Compiler`] borrows its model, which is the right shape for benchmarks
/// that manage model lifetimes themselves but awkward for serving: a caller
/// that just wants "compile these circuits on this device" should not have to
/// keep a model alive alongside the compiler. `CompileService` owns the model
/// (constructed **once**, so model-internal caches — e.g. the sharded GRAPE
/// latency cache — stay warm across requests) and exposes the batch and
/// single-circuit entry points.
///
/// On top of the model's latency cache the service keeps a **bounded compile
/// cache**: results keyed by (circuit fingerprint, strategy recipe,
/// aggregation options), LRU-evicted past
/// [`DEFAULT_COMPILE_CACHE_CAPACITY`] entries (tune or disable with
/// [`with_compile_cache`](Self::with_compile_cache)). Compilation is
/// deterministic, so repeated traffic — the common shape of batch serving —
/// skips recompilation entirely and receives bit-identical results.
/// Within one [`compile_batch`](Self::compile_batch) call, duplicate
/// circuits compile once and share the result.
///
/// ```
/// use qcc_core::{CompileService, CompilerOptions, Strategy};
/// use qcc_hw::Device;
/// use qcc_ir::{Circuit, Gate};
///
/// let device = Device::transmon_line(2);
/// let service = CompileService::new(&device);
/// let mut circuit = Circuit::new(2);
/// circuit.push(Gate::H, &[0]);
/// circuit.push(Gate::Cnot, &[0, 1]);
/// let batch = vec![circuit.clone(), circuit];
/// let results = service.compile_batch(&batch, &CompilerOptions::strategy(Strategy::Cls));
/// assert_eq!(results.len(), 2);
/// assert!(results.iter().all(|r| r.is_ok()));
/// // The duplicate was served from one compile.
/// assert_eq!(service.compile_cache_stats().entries, 1);
/// ```
pub struct CompileService<'d> {
    device: &'d Device,
    model: Box<dyn LatencyModel + 'd>,
    pool: ThreadPool,
    cache: CompileCache,
    counters: ServiceCounters,
    /// Identity bytes of the compilation target, prefixed to every compile
    /// cache key (a fleet of backend services never cross-reads entries).
    fingerprint: Vec<u8>,
}

impl<'d> CompileService<'d> {
    /// A service over the device with the default [`CalibratedLatencyModel`]
    /// for its control limits. The model is built here, once, and serves every
    /// subsequent compile.
    pub fn new(device: &'d Device) -> Self {
        Self::with_model(device, Box::new(CalibratedLatencyModel::new(device.limits)))
    }

    /// A service using a caller-supplied latency model (e.g. the GRAPE
    /// optimal-control unit).
    pub fn with_model(device: &'d Device, model: Box<dyn LatencyModel + 'd>) -> Self {
        // Backend-less services are identified by device encoding + model
        // name, mirroring `Compiler::new`.
        let mut fingerprint = Vec::with_capacity(64);
        device.encode_into(&mut fingerprint);
        fingerprint.extend_from_slice(model.name().as_bytes());
        Self {
            device,
            model,
            pool: ThreadPool::with_default_parallelism(),
            cache: CompileCache::new(DEFAULT_COMPILE_CACHE_CAPACITY, CachePolicy::default()),
            counters: ServiceCounters::default(),
            fingerprint,
        }
    }

    /// A service compiling for one named [`Backend`] of a fleet: the
    /// backend's device and (shared) latency model, with the backend's
    /// injective fingerprint prefixed to every cache key — the per-lane
    /// engine behind [`Fleet`](crate::Fleet).
    pub fn for_backend(backend: &'d Backend) -> Self {
        Self {
            device: backend.device(),
            // `&'d dyn LatencyModel` forwards the whole trait (including
            // pricing instrumentation), so the backend's Arc stays the one
            // shared model instance.
            model: Box::new(backend.model()),
            pool: ThreadPool::with_default_parallelism(),
            cache: CompileCache::new(DEFAULT_COMPILE_CACHE_CAPACITY, CachePolicy::default()),
            counters: ServiceCounters::default(),
            fingerprint: backend.fingerprint().to_vec(),
        }
    }

    /// The cache key of one request against this service's target: backend
    /// fingerprint + circuit encoding + options (see [`request_fingerprint`]).
    pub(crate) fn request_key(&self, circuit: &Circuit, options: &CompilerOptions) -> Vec<u8> {
        request_fingerprint(&self.fingerprint, circuit, options, None)
    }

    /// Sets the number of threads used for batch fan-out and parallel pricing
    /// (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = ThreadPool::new(threads);
        self
    }

    /// Sets the compile-cache capacity in cached results (`0` disables
    /// result caching entirely), discarding anything cached so far. Keeps
    /// the current eviction policy.
    pub fn with_compile_cache(mut self, capacity: usize) -> Self {
        self.cache = CompileCache::new(capacity, self.cache.policy);
        self
    }

    /// Sets both the compile-cache capacity and its eviction policy (see
    /// [`CachePolicy`]), discarding anything cached so far. The default is
    /// [`CachePolicy::Ship`]; [`CachePolicy::PlainLru`] exists for
    /// comparison benches and regression tests.
    pub fn with_compile_cache_policy(mut self, capacity: usize, policy: CachePolicy) -> Self {
        self.cache = CompileCache::new(capacity, policy);
        self
    }

    /// The compile cache's eviction policy.
    pub fn cache_policy(&self) -> CachePolicy {
        self.cache.policy
    }

    /// The fingerprint namespace of this service's persistent result cache:
    /// the compile-key fingerprint (backend identity) extended with the
    /// latency model's own solver fingerprint when it has a persistent cache.
    /// The extension matters: two services can share a device and model
    /// *name* (hence identical compile-cache key prefixes) while running
    /// differently-configured solvers — their result snapshots must not
    /// interchange.
    fn persist_namespace(&self) -> Vec<u8> {
        let mut namespace = self.fingerprint.clone();
        if let Some(pc) = self.model.persistent_cache() {
            namespace.extend_from_slice(&pc.snapshot_fingerprint());
        }
        namespace
    }

    /// File name of one cache's snapshot inside a snapshot directory:
    /// `<kind>-<hex16(fnv64(namespace))>.qccsnap`. The hash keeps distinct
    /// backends (and distinct solver configurations) in distinct files, so a
    /// fleet can share one directory.
    fn snapshot_file(dir: &Path, kind: &str, namespace: &[u8]) -> PathBuf {
        dir.join(format!(
            "{kind}-{}.{SNAPSHOT_EXTENSION}",
            hex16(fnv64(namespace))
        ))
    }

    /// Path of this service's compile-result snapshot inside `dir`.
    pub fn result_snapshot_path(&self, dir: &Path) -> PathBuf {
        Self::snapshot_file(dir, COMPILE_SNAPSHOT_KIND, &self.persist_namespace())
    }

    /// Path of the latency model's solve-cache snapshot inside `dir`, when
    /// the model has a persistent cache.
    pub fn model_snapshot_path(&self, dir: &Path) -> Option<PathBuf> {
        self.model
            .persistent_cache()
            .map(|pc| Self::snapshot_file(dir, pc.snapshot_kind(), &pc.snapshot_fingerprint()))
    }

    /// Snapshots this service's persistent caches into `dir` (one file per
    /// cache, atomic write-temp-then-rename): the latency model's solve cache
    /// when the model has one, and the compile-result cache. Returns the
    /// total number of records written. Cached compile *errors* are never
    /// stored (only successful results are cached), and in-flight model
    /// solves are skipped.
    pub fn snapshot_to(&self, dir: &Path) -> Result<usize, PersistError> {
        let mut written = 0;
        if let (Some(pc), Some(path)) =
            (self.model.persistent_cache(), self.model_snapshot_path(dir))
        {
            written += pc.snapshot_to(&path)?;
        }
        let namespace = self.persist_namespace();
        let mut writer = SnapshotWriter::new(COMPILE_SNAPSHOT_KIND, &namespace);
        for (key, result) in self.cache.entries_lru_first() {
            let mut payload = Vec::with_capacity(key.len() + 256);
            payload.extend_from_slice(&(key.len() as u64).to_le_bytes());
            payload.extend_from_slice(&key);
            persist::encode_result(&result, &mut payload);
            writer.record(&payload);
        }
        written += writer.len();
        persist::write_atomic(&self.result_snapshot_path(dir), &writer.finish())?;
        Ok(written)
    }

    /// Warm-starts this service's caches from snapshots in `dir`, strictly:
    /// present-but-bad files (corrupt, truncated, foreign format version,
    /// or written under a different backend/calibration fingerprint) are
    /// rejected with a [`PersistError`] naming the mismatch. *Missing* files
    /// are not an error — they are an ordinary cold start and contribute
    /// zero records. Returns the number of records loaded. Loaded results
    /// are bit-identical to what the writing process computed (the codec
    /// round-trips floats by bit pattern), and loading performs no solves
    /// and no predictor training.
    pub fn warm_start_from(&self, dir: &Path) -> Result<usize, PersistError> {
        let mut loaded = 0;
        if let (Some(pc), Some(path)) =
            (self.model.persistent_cache(), self.model_snapshot_path(dir))
        {
            if path.exists() {
                loaded += pc.warm_start_from(&path)?;
            }
        }
        let result_path = self.result_snapshot_path(dir);
        if result_path.exists() {
            let namespace = self.persist_namespace();
            let records = persist::load_records(&result_path, COMPILE_SNAPSHOT_KIND, &namespace)?;
            // Decode everything before seeding anything: a load is
            // all-or-nothing.
            let mut entries = Vec::with_capacity(records.len());
            for payload in &records {
                let mut cur = ByteCursor::new(payload);
                let key_len = cur
                    .len("compile record key length")
                    .map_err(|detail| PersistError::Malformed { detail })?;
                let key = cur
                    .bytes(key_len, "compile record key")
                    .map_err(|detail| PersistError::Malformed { detail })?
                    .to_vec();
                let result = persist::decode_result(&mut cur)
                    .map_err(|detail| PersistError::Malformed { detail })?;
                if !cur.is_empty() {
                    return Err(PersistError::Malformed {
                        detail: DecodeError {
                            what: "compile record (trailing bytes)",
                            offset: cur.offset(),
                        },
                    });
                }
                entries.push((key, result));
            }
            if self.cache.enabled() {
                for (key, result) in entries {
                    self.cache.seed(key, Arc::new(result));
                    loaded += 1;
                }
            }
        }
        Ok(loaded)
    }

    /// Boot-path warm start: like [`warm_start_from`](Self::warm_start_from)
    /// but degrading every failure — bad files included — to a cold start,
    /// never a panic and never a wrong result. Returns the number of records
    /// loaded (zero on any rejection).
    pub fn warm_start_or_cold(&self, dir: &Path) -> usize {
        self.warm_start_from(dir).unwrap_or(0)
    }

    /// Hit/miss/entry counts of the compile cache, plus the service's
    /// lifetime request counters (submitted/completed/rejected/
    /// deadline-expired across every entry point and serving session).
    pub fn compile_cache_stats(&self) -> CompileCacheStats {
        let mut stats = self.cache.stats();
        stats.submitted = self.counters.submitted.load(Ordering::Relaxed);
        stats.completed = self.counters.completed.load(Ordering::Relaxed);
        stats.rejected = self.counters.rejected.load(Ordering::Relaxed);
        stats.deadline_expired = self.counters.deadline_expired.load(Ordering::Relaxed);
        stats.partitioned = self.counters.partitioned.load(Ordering::Relaxed);
        stats.partition_regions = self.counters.partition_regions.load(Ordering::Relaxed);
        stats
    }

    /// The device this service compiles for.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// A borrowing [`Compiler`] over this service's device, model, and pool —
    /// for APIs the service does not mirror (custom pipelines via
    /// [`Compiler::run_pipeline`], strategy comparisons).
    pub fn compiler(&self) -> Compiler<'_> {
        Compiler::new(self.device, self.model.as_ref())
            .with_threads(self.pool.threads())
            .with_fingerprint(self.fingerprint.clone())
    }

    /// Compiles one circuit, serving a cached result when the identical
    /// request (circuit + options) was compiled before.
    pub fn compile(
        &self,
        circuit: &Circuit,
        options: &CompilerOptions,
    ) -> Result<CompilationResult, CompileError> {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if !self.cache.enabled() {
            let result = self.compiler().try_compile(circuit, options);
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            return result;
        }
        let key = self.request_key(circuit, options);
        if let Some(hit) = self.cache.get(&key) {
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            return Ok((*hit).clone());
        }
        let result = self.compiler().try_compile(circuit, options);
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        let result = result?;
        self.cache.insert(key, Arc::new(result.clone()));
        Ok(result)
    }

    /// Compiles one circuit partitioned into `partition.regions` regions
    /// compiled in parallel ([`Compiler::compile_partitioned`]; see
    /// [`crate::partition`]). Results are cached like
    /// [`compile`](Self::compile)'s, under a key extended with the partition
    /// options — a partitioned request never serves (or poisons) a
    /// whole-circuit entry, even though with `regions = 1` the two results
    /// are bit-identical. Counted in
    /// [`CompileCacheStats::partitioned`]/[`CompileCacheStats::partition_regions`].
    pub fn compile_partitioned(
        &self,
        circuit: &Circuit,
        options: &CompilerOptions,
        partition: &PartitionOptions,
    ) -> Result<CompilationResult, CompileError> {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.counters.partitioned.fetch_add(1, Ordering::Relaxed);
        let record_regions = |result: &CompilationResult| {
            let regions = result.partition.as_ref().map_or(0, |p| p.regions.len());
            self.counters
                .partition_regions
                .fetch_add(regions, Ordering::Relaxed);
        };
        if !self.cache.enabled() {
            let result = self
                .compiler()
                .compile_partitioned(circuit, options, partition);
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            if let Ok(result) = &result {
                record_regions(result);
            }
            return result;
        }
        let key = request_fingerprint(&self.fingerprint, circuit, options, Some(partition));
        if let Some(hit) = self.cache.get(&key) {
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            return Ok((*hit).clone());
        }
        let result = self
            .compiler()
            .compile_partitioned(circuit, options, partition);
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        let result = result?;
        record_regions(&result);
        self.cache.insert(key, Arc::new(result.clone()));
        Ok(result)
    }

    /// Opens a streaming serving session: stage workers spin up, `f` receives
    /// a [`ServeHandle`] to submit/poll/wait requests asynchronously, and
    /// every accepted request is drained before `serve` returns `f`'s result.
    /// See [`queue`] for the full API (priorities, deadlines, backpressure,
    /// per-pass progress).
    pub fn serve<R>(&self, config: ServeConfig, f: impl FnOnce(&ServeHandle<'_, 'd>) -> R) -> R {
        queue::serve(self, config, f)
    }

    /// Compiles a batch of circuits through a serving session on the staged
    /// pass pipeline; see [`Compiler::compile_batch`] for the determinism and
    /// thread-budget guarantees (including the shared-cache warm-up).
    ///
    /// Requests already in the compile cache are answered without compiling,
    /// and duplicate circuits within the batch compile once — both receive
    /// results bit-identical to a fresh compile, because compilation is
    /// deterministic. Per-circuit errors are reported in place, exactly as
    /// [`Compiler::compile_batch`] does.
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
        options: &CompilerOptions,
    ) -> Vec<Result<CompilationResult, CompileError>> {
        if circuits.is_empty() {
            return Vec::new();
        }
        let keys: Vec<Vec<u8>> = circuits
            .iter()
            .map(|c| self.request_key(c, options))
            .collect();
        let mut out: Vec<Option<Result<CompilationResult, CompileError>>> =
            vec![None; circuits.len()];
        // Resolve cache hits; assign every remaining distinct fingerprint one
        // representative index to compile.
        let mut representative: HashMap<&[u8], usize> = HashMap::new();
        let mut to_compile: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if self.cache.enabled() {
                if let Some(hit) = self.cache.get(key) {
                    out[i] = Some(Ok((*hit).clone()));
                    continue;
                }
            }
            if !representative.contains_key(key.as_slice()) {
                representative.insert(key, i);
                to_compile.push(i);
            }
        }
        let unique: Vec<Circuit> = to_compile.iter().map(|&i| circuits[i].clone()).collect();
        // Pre-warm shared latency caches on the full pool, then stream the
        // unique circuits through a serving session. The submits bypass the
        // compile cache (hits were already resolved above); completion inserts
        // the results, so repeats of this batch become pure hits.
        self.compiler().warm_latency_cache(&unique, options);
        let compiled: Vec<Result<CompilationResult, CompileError>> = if unique.is_empty() {
            Vec::new()
        } else {
            self.serve(
                ServeConfig {
                    queue_capacity: unique.len(),
                    ..ServeConfig::default()
                },
                |handle| {
                    let tickets: Vec<_> = unique
                        .iter()
                        .map(|circuit| {
                            handle
                                .submit(circuit, options, SubmitOptions::batch_bypass())
                                .expect("queue sized to the batch")
                        })
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| {
                            handle.wait(t).map_err(|e| match e {
                                ServiceError::Compile(c) => c,
                                // No deadlines and a queue sized to the batch.
                                other => unreachable!("batch serve cannot {other}"),
                            })
                        })
                        .collect()
                },
            )
        };
        for (&i, result) in to_compile.iter().zip(compiled) {
            out[i] = Some(result);
        }
        // Duplicates copy their representative's result; hits and duplicates
        // count as submitted-and-completed alongside the served uniques.
        let mut shortcut = 0;
        for i in 0..circuits.len() {
            if out[i].is_none() {
                let &rep = representative
                    .get(keys[i].as_slice())
                    .expect("every non-hit key has a representative");
                out[i] = out[rep].clone();
                shortcut += 1;
            } else if !to_compile.contains(&i) {
                shortcut += 1;
            }
        }
        self.counters
            .submitted
            .fetch_add(shortcut, Ordering::Relaxed);
        self.counters
            .completed
            .fetch_add(shortcut, Ordering::Relaxed);
        out.into_iter()
            .map(|r| r.expect("every batch entry resolved"))
            .collect()
    }
}

/// Process-wide cache of default calibrated models, one per distinct
/// [`ControlLimits`]. Entries are leaked intentionally: a process sees a
/// handful of distinct limit sets at most, and `'static` references let every
/// call share one model instead of constructing a fresh one.
fn shared_default_model(limits: ControlLimits) -> &'static CalibratedLatencyModel {
    static MODELS: Mutex<Vec<(ControlLimits, &'static CalibratedLatencyModel)>> =
        Mutex::new(Vec::new());
    let mut models = MODELS.lock().expect("default-model cache poisoned");
    if let Some((_, model)) = models.iter().find(|(l, _)| *l == limits) {
        return model;
    }
    let model: &'static CalibratedLatencyModel =
        Box::leak(Box::new(CalibratedLatencyModel::new(limits)));
    models.push((limits, model));
    model
}

/// Compiles with the default calibrated latency model — the historical
/// convenience entry point for examples and benchmarks.
///
/// The model is served from a process-wide cache keyed by the device's control
/// limits, so repeated calls share one model instance instead of constructing
/// a fresh `CalibratedLatencyModel` per call (the pre-pipeline behavior).
///
/// # Migration
///
/// New code should prefer one of the pass-pipeline front doors:
/// [`CompileService::new`] when you want an owning handle that also serves
/// batches ([`CompileService::compile_batch`]), or [`Compiler::new`] with an
/// explicit model when you manage model lifetimes yourself (required for the
/// GRAPE model, whose cache instrumentation you may want to inspect). This
/// function remains for single-shot convenience and compiles exactly like
/// `CompileService::new(device).compile(..)`.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the device provides (it wraps
/// [`Compiler::compile`]).
pub fn compile_with_default_model(
    circuit: &Circuit,
    device: &Device,
    options: &CompilerOptions,
) -> CompilationResult {
    let model = shared_default_model(device.limits);
    Compiler::new(device, model).compile(circuit, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Strategy;
    use qcc_ir::Gate;

    fn toy() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Rz(0.5), &[1]);
        c.push(Gate::Cnot, &[0, 1]);
        c
    }

    #[test]
    fn shared_default_model_is_cached_per_limits() {
        let a = shared_default_model(ControlLimits::asplos19());
        let b = shared_default_model(ControlLimits::asplos19());
        assert!(std::ptr::eq(a, b), "same limits must share one model");
    }

    #[test]
    fn service_matches_the_borrowing_compiler() {
        let device = Device::transmon_line(2);
        let service = CompileService::new(&device);
        let options = CompilerOptions::strategy(Strategy::ClsAggregation);
        let via_service = service.compile(&toy(), &options).unwrap();
        let via_fn = compile_with_default_model(&toy(), &device, &options);
        assert_eq!(
            via_service.total_latency_ns.to_bits(),
            via_fn.total_latency_ns.to_bits()
        );
    }

    #[test]
    fn service_rejects_oversized_circuits_gracefully() {
        let device = Device::transmon_line(2);
        let service = CompileService::new(&device);
        let big = Circuit::new(5);
        let err = service
            .compile(&big, &CompilerOptions::strategy(Strategy::IsaBaseline))
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::DeviceTooSmall {
                needed: 5,
                available: 2
            }
        );
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let device = Device::transmon_line(2);
        let service = CompileService::new(&device);
        assert!(service
            .compile_batch(&[], &CompilerOptions::default())
            .is_empty());
    }

    #[test]
    fn repeated_compiles_hit_the_compile_cache_bit_identically() {
        let device = Device::transmon_line(2);
        let service = CompileService::new(&device);
        let options = CompilerOptions::strategy(Strategy::ClsAggregation);
        let first = service.compile(&toy(), &options).unwrap();
        let second = service.compile(&toy(), &options).unwrap();
        assert_eq!(
            first.total_latency_ns.to_bits(),
            second.total_latency_ns.to_bits()
        );
        assert_eq!(first.instructions, second.instructions);
        let stats = service.compile_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        // Different options are a different request.
        let other = service
            .compile(&toy(), &CompilerOptions::strategy(Strategy::Cls))
            .unwrap();
        assert!(other.total_latency_ns > 0.0);
        let stats = service.compile_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn compile_cache_capacity_bounds_entries_and_zero_disables() {
        let device = Device::transmon_line(3);
        // Pin both policies on the same request stream [k1, k2, k3, k1] at
        // capacity 2 — the divergence is exactly the SHiP win.
        //
        // PlainLru (the pre-SHiP behavior): every insert at MRU, so k3
        // evicts k1 and the final k1 misses again.
        let service =
            CompileService::new(&device).with_compile_cache_policy(2, CachePolicy::PlainLru);
        let compile_n = |service: &CompileService, n: usize| {
            let mut c = Circuit::new(3);
            for q in 0..n {
                c.push(Gate::H, &[q]);
            }
            service
                .compile(&c, &CompilerOptions::strategy(Strategy::IsaBaseline))
                .unwrap();
        };
        for n in [1usize, 2, 3, 1] {
            compile_n(&service, n);
        }
        let stats = service.compile_cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 4);
        assert_eq!((stats.predicted_reuse, stats.predicted_one_shot), (0, 0));

        // Ship (the default): untrained signatures insert at the eviction
        // position, so k3 churns through the front slot — k2 is the victim
        // and the final k1 request hits.
        let service = CompileService::new(&device).with_compile_cache(2);
        assert_eq!(service.cache_policy(), CachePolicy::Ship);
        for n in [1usize, 2, 3, 1] {
            compile_n(&service, n);
        }
        let stats = service.compile_cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.predicted_one_shot, 3);
        // The k1 hit trained its signature.
        assert_eq!(stats.trained_signatures, 1);

        let disabled = CompileService::new(&device).with_compile_cache(0);
        disabled
            .compile(&toy(), &CompilerOptions::default())
            .unwrap();
        disabled
            .compile(&toy(), &CompilerOptions::default())
            .unwrap();
        let stats = disabled.compile_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn batch_dedups_duplicates_and_serves_cache_hits() {
        let device = Device::transmon_line(2);
        let service = CompileService::new(&device);
        let options = CompilerOptions::strategy(Strategy::ClsAggregation);
        let batch = vec![toy(), toy(), toy()];
        let results = service.compile_batch(&batch, &options);
        assert_eq!(results.len(), 3);
        let bits: Vec<u64> = results
            .iter()
            .map(|r| r.as_ref().unwrap().total_latency_ns.to_bits())
            .collect();
        assert!(bits.windows(2).all(|w| w[0] == w[1]));
        // One compile for three identical requests…
        assert_eq!(service.compile_cache_stats().entries, 1);
        // …and a repeat batch is pure cache hits.
        let before = service.compile_cache_stats().hits;
        let again = service.compile_batch(&batch, &options);
        assert_eq!(service.compile_cache_stats().hits, before + 3);
        assert_eq!(
            again[0].as_ref().unwrap().total_latency_ns.to_bits(),
            bits[0]
        );
        // Matches a fresh uncached compile bit-for-bit.
        let fresh = CompileService::new(&device)
            .with_compile_cache(0)
            .compile(&toy(), &options)
            .unwrap();
        assert_eq!(fresh.total_latency_ns.to_bits(), bits[0]);
    }
}
