//! The serving front door: an owning [`CompileService`] around the borrowing
//! [`Compiler`], plus the shared default-model cache behind
//! [`compile_with_default_model`].

use crate::passes::CompileError;
use crate::pipeline::{CompilationResult, Compiler, CompilerOptions};
use qcc_hw::{CalibratedLatencyModel, ControlLimits, Device, LatencyModel};
use qcc_ir::Circuit;
use std::sync::Mutex;
use threadpool::ThreadPool;

/// An owning compilation service: device reference, latency model, and thread
/// pool bundled behind one front door.
///
/// [`Compiler`] borrows its model, which is the right shape for benchmarks
/// that manage model lifetimes themselves but awkward for serving: a caller
/// that just wants "compile these circuits on this device" should not have to
/// keep a model alive alongside the compiler. `CompileService` owns the model
/// (constructed **once**, so model-internal caches — e.g. the sharded GRAPE
/// latency cache — stay warm across requests) and exposes the batch and
/// single-circuit entry points.
///
/// ```
/// use qcc_core::{CompileService, CompilerOptions, Strategy};
/// use qcc_hw::Device;
/// use qcc_ir::{Circuit, Gate};
///
/// let device = Device::transmon_line(2);
/// let service = CompileService::new(&device);
/// let mut circuit = Circuit::new(2);
/// circuit.push(Gate::H, &[0]);
/// circuit.push(Gate::Cnot, &[0, 1]);
/// let batch = vec![circuit.clone(), circuit];
/// let results = service.compile_batch(&batch, &CompilerOptions::strategy(Strategy::Cls));
/// assert_eq!(results.len(), 2);
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
pub struct CompileService<'d> {
    device: &'d Device,
    model: Box<dyn LatencyModel + 'd>,
    pool: ThreadPool,
}

impl<'d> CompileService<'d> {
    /// A service over the device with the default [`CalibratedLatencyModel`]
    /// for its control limits. The model is built here, once, and serves every
    /// subsequent compile.
    pub fn new(device: &'d Device) -> Self {
        Self::with_model(device, Box::new(CalibratedLatencyModel::new(device.limits)))
    }

    /// A service using a caller-supplied latency model (e.g. the GRAPE
    /// optimal-control unit).
    pub fn with_model(device: &'d Device, model: Box<dyn LatencyModel + 'd>) -> Self {
        Self {
            device,
            model,
            pool: ThreadPool::with_default_parallelism(),
        }
    }

    /// Sets the number of threads used for batch fan-out and parallel pricing
    /// (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = ThreadPool::new(threads);
        self
    }

    /// The device this service compiles for.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// A borrowing [`Compiler`] over this service's device, model, and pool —
    /// for APIs the service does not mirror (custom pipelines via
    /// [`Compiler::run_pipeline`], strategy comparisons).
    pub fn compiler(&self) -> Compiler<'_> {
        Compiler::new(self.device, self.model.as_ref()).with_threads(self.pool.threads())
    }

    /// Compiles one circuit.
    pub fn compile(
        &self,
        circuit: &Circuit,
        options: &CompilerOptions,
    ) -> Result<CompilationResult, CompileError> {
        self.compiler().try_compile(circuit, options)
    }

    /// Compiles a batch of circuits, fanning out over the service's pool; see
    /// [`Compiler::compile_batch`] for the determinism and thread-budget
    /// guarantees.
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
        options: &CompilerOptions,
    ) -> Vec<Result<CompilationResult, CompileError>> {
        self.compiler().compile_batch(circuits, options)
    }
}

/// Process-wide cache of default calibrated models, one per distinct
/// [`ControlLimits`]. Entries are leaked intentionally: a process sees a
/// handful of distinct limit sets at most, and `'static` references let every
/// call share one model instead of constructing a fresh one.
fn shared_default_model(limits: ControlLimits) -> &'static CalibratedLatencyModel {
    static MODELS: Mutex<Vec<(ControlLimits, &'static CalibratedLatencyModel)>> =
        Mutex::new(Vec::new());
    let mut models = MODELS.lock().expect("default-model cache poisoned");
    if let Some((_, model)) = models.iter().find(|(l, _)| *l == limits) {
        return model;
    }
    let model: &'static CalibratedLatencyModel =
        Box::leak(Box::new(CalibratedLatencyModel::new(limits)));
    models.push((limits, model));
    model
}

/// Compiles with the default calibrated latency model — the historical
/// convenience entry point for examples and benchmarks.
///
/// The model is served from a process-wide cache keyed by the device's control
/// limits, so repeated calls share one model instance instead of constructing
/// a fresh `CalibratedLatencyModel` per call (the pre-pipeline behavior).
///
/// # Migration
///
/// New code should prefer one of the pass-pipeline front doors:
/// [`CompileService::new`] when you want an owning handle that also serves
/// batches ([`CompileService::compile_batch`]), or [`Compiler::new`] with an
/// explicit model when you manage model lifetimes yourself (required for the
/// GRAPE model, whose cache instrumentation you may want to inspect). This
/// function remains for single-shot convenience and compiles exactly like
/// `CompileService::new(device).compile(..)`.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the device provides (it wraps
/// [`Compiler::compile`]).
pub fn compile_with_default_model(
    circuit: &Circuit,
    device: &Device,
    options: &CompilerOptions,
) -> CompilationResult {
    let model = shared_default_model(device.limits);
    Compiler::new(device, model).compile(circuit, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Strategy;
    use qcc_ir::Gate;

    fn toy() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Rz(0.5), &[1]);
        c.push(Gate::Cnot, &[0, 1]);
        c
    }

    #[test]
    fn shared_default_model_is_cached_per_limits() {
        let a = shared_default_model(ControlLimits::asplos19());
        let b = shared_default_model(ControlLimits::asplos19());
        assert!(std::ptr::eq(a, b), "same limits must share one model");
    }

    #[test]
    fn service_matches_the_borrowing_compiler() {
        let device = Device::transmon_line(2);
        let service = CompileService::new(&device);
        let options = CompilerOptions::strategy(Strategy::ClsAggregation);
        let via_service = service.compile(&toy(), &options).unwrap();
        let via_fn = compile_with_default_model(&toy(), &device, &options);
        assert_eq!(
            via_service.total_latency_ns.to_bits(),
            via_fn.total_latency_ns.to_bits()
        );
    }

    #[test]
    fn service_rejects_oversized_circuits_gracefully() {
        let device = Device::transmon_line(2);
        let service = CompileService::new(&device);
        let big = Circuit::new(5);
        let err = service
            .compile(&big, &CompilerOptions::strategy(Strategy::IsaBaseline))
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::DeviceTooSmall {
                needed: 5,
                available: 2
            }
        );
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let device = Device::transmon_line(2);
        let service = CompileService::new(&device);
        assert!(service
            .compile_batch(&[], &CompilerOptions::default())
            .is_empty());
    }
}
