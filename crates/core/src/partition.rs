//! Partitioned compilation: cut wide circuits into weakly coupled regions,
//! compile the regions in parallel, and stitch the schedules at the seams.
//!
//! The paper's pipeline treats every circuit as one serial unit of work, so a
//! wide QAOA instance monopolizes a single pass sequence no matter how many
//! cores are available. This module turns the width dimension into
//! parallelism:
//!
//! 1. the **routed** instruction stream is lifted into a qubit-interaction
//!    graph with gate-count edge weights ([`crate::mapping::interaction_graph`]);
//! 2. [`qcc_graph::partition::k_way_partition`] cuts the physical qubits into
//!    `k` weakly coupled **regions**, and the instructions straddling two or
//!    more regions become the explicit **cut set**;
//! 3. each region's interior instructions are compiled **in parallel** on the
//!    compiler's thread pool — the normal aggregation machinery runs per
//!    region, against the shared latency model, so the backend-fingerprinted
//!    GRAPE cache is reused across regions and solves stay exactly-once;
//! 4. the region streams and the cut-set instructions are **stitched** back
//!    into one program in dependency order, and the final ASAP schedule over
//!    the stitched stream accounts for the cross-cut serialization.
//!
//! # Correctness model
//!
//! Region qubits keep their **physical indices** — region instruction bytes
//! are identical to what a whole-circuit compile prices, so latency-cache
//! entries (GRAPE solves included) are shared verbatim between partitioned and
//! whole compiles. Each cut instruction acts as a hard barrier for every
//! region it touches: a region's interior stream is split into *segments* at
//! its barriers and aggregation runs per segment, so no merge can ever hop
//! over an unseen cross-region dependence. Stitching emits segments and cut
//! instructions in the order of their first routed position, which provably
//! reproduces the routed stream's per-qubit gate order (aggregation itself
//! preserves per-qubit constituent order: a legal merge crosses only
//! instructions disjoint from the moved instruction's qubits).
//!
//! Consequences, pinned by `tests/partitioned_compile.rs`:
//!
//! * `k = 1` is one region with no cut set — the partitioned pipeline is
//!   **bit-identical** to the whole-circuit pipeline (instructions, latencies,
//!   schedule, makespan).
//! * For every strategy, the partitioned output has the **identical
//!   constituent-gate multiset** as the whole compile (routing is shared, so
//!   even the SWAPs match).
//! * For strategies without a post-aggregation reordering pass (everything
//!   except `ClsAggregation`), the **per-qubit gate order** is identical to
//!   the whole compile at every `k`. Under `ClsAggregation` the final CLS
//!   reordering sees differently-granular aggregates, so the per-qubit order
//!   may differ by legal commutations — semantic equivalence is pinned by the
//!   simulator instead.
//!
//! # Entry points
//!
//! * [`Compiler::compile_partitioned`](crate::Compiler::compile_partitioned) /
//!   [`Strategy::partitioned_pipeline`](crate::Strategy::partitioned_pipeline)
//!   — the library surface;
//! * [`CompileService::compile_partitioned`](crate::CompileService::compile_partitioned)
//!   — the serving surface (cached, counted in
//!   [`CompileCacheStats`](crate::CompileCacheStats));
//! * [`Fleet::submit_partitioned`](crate::Fleet::submit_partitioned) — regions
//!   become independently routable sub-circuits fanned out across backends;
//! * [`PartitionPass`] — the composable pass for custom
//!   [`PipelineBuilder`](crate::PipelineBuilder) orders.

use crate::aggregate::{self, AggregationStats};
use crate::frontend;
use crate::instr::AggregateInstruction;
use crate::mapping;
use crate::passes::{CompileError, Pass, PassContext, PassState};
use qcc_graph::partition as graph_partition;
use qcc_ir::Circuit;
use std::time::{Duration, Instant};
use threadpool::ThreadPool;

/// Options of a partitioned compilation: how many regions to cut the circuit
/// into. `regions = 1` degenerates to the whole-circuit pipeline
/// (bit-identically); `regions = 0` is treated as 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionOptions {
    /// Number of regions to cut the qubit-interaction graph into (`k`).
    pub regions: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        Self { regions: 2 }
    }
}

impl PartitionOptions {
    /// Options cutting the circuit into `regions` regions.
    pub fn new(regions: usize) -> Self {
        Self { regions }
    }
}

/// Telemetry of one compiled region: its qubit set (the sub-device view), the
/// shape of its compiled stream, and how long its parallel compile took.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionTelemetry {
    /// Sorted physical qubits the region owns.
    pub qubits: Vec<usize>,
    /// Instructions the region contributed to the stitched stream.
    pub instructions: usize,
    /// Constituent gates in those instructions.
    pub gates: usize,
    /// Wall-clock time of the region's compile (its slice of the parallel
    /// fan-out).
    pub wall_time: Duration,
}

/// Telemetry of one partitioned compilation, attached to
/// [`CompilationResult::partition`](crate::CompilationResult) and summarized
/// in [`CompileCacheStats`](crate::CompileCacheStats).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSummary {
    /// The `k` the caller asked for (actual regions can be fewer when the
    /// circuit has fewer qubits).
    pub requested_regions: usize,
    /// One entry per non-empty region, in stitch order.
    pub regions: Vec<RegionTelemetry>,
    /// Total interaction-graph weight of edges crossing region boundaries —
    /// the coupling the cut set has to serialize.
    pub cut_weight: f64,
    /// Number of boundary instructions in the cut set.
    pub cut_instructions: usize,
    /// Wall-clock time of the stitch (merging region streams with the cut
    /// set) — the overhead partitioning adds after the parallel fan-out.
    pub stitch_wall_time: Duration,
}

/// How a routed instruction stream decomposes into regions and a cut set.
///
/// Built by [`PartitionPlan::of`]; the pass and the tests share it.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Sorted physical qubits of each (non-empty) region.
    pub region_qubits: Vec<Vec<usize>>,
    /// Per region: its interior instruction positions, split into segments at
    /// every cut instruction touching the region (the hard barriers no merge
    /// may cross). Segments are non-empty and in stream order.
    pub segments: Vec<Vec<Vec<usize>>>,
    /// Positions of the cut-set (boundary) instructions, in stream order.
    pub cut: Vec<usize>,
    /// Total interaction-graph weight crossing region boundaries.
    pub cut_weight: f64,
}

impl PartitionPlan {
    /// Plans a `k`-way partition of a routed instruction stream over
    /// `n_qubits` physical qubits. Total: `k = 0` is treated as 1, `k` larger
    /// than the qubit count simply yields fewer (non-empty) regions, and an
    /// empty stream yields regions with no segments.
    pub fn of(instrs: &[AggregateInstruction], n_qubits: usize, k: usize) -> Self {
        let k = k.max(1);
        let g = mapping::interaction_graph(instrs, n_qubits);
        let mut region_qubits: Vec<Vec<usize>> = graph_partition::k_way_partition(&g, k)
            .into_iter()
            .filter(|p| !p.is_empty())
            .collect();
        if region_qubits.is_empty() {
            // Zero-qubit circuit: keep one (empty) region so the plan always
            // has somewhere to put instructions.
            region_qubits.push(Vec::new());
        }
        for part in &mut region_qubits {
            part.sort_unstable();
        }
        let cut_weight = graph_partition::k_way_cut_weight(&g, &region_qubits);
        let mut region_of = vec![0usize; n_qubits];
        for (r, part) in region_qubits.iter().enumerate() {
            for &q in part {
                region_of[q] = r;
            }
        }
        let mut segments: Vec<Vec<Vec<usize>>> =
            region_qubits.iter().map(|_| vec![Vec::new()]).collect();
        let mut cut = Vec::new();
        for (pos, inst) in instrs.iter().enumerate() {
            let home = inst.qubits.first().map_or(0, |&q| region_of[q]);
            if inst.qubits.iter().all(|&q| region_of[q] == home) {
                segments[home]
                    .last_mut()
                    .expect("segments start non-empty")
                    .push(pos);
            } else {
                cut.push(pos);
                let mut touched: Vec<usize> = inst.qubits.iter().map(|&q| region_of[q]).collect();
                touched.sort_unstable();
                touched.dedup();
                for r in touched {
                    // Barrier: close the region's open segment so later
                    // interior instructions can never merge across the cut.
                    if !segments[r]
                        .last()
                        .expect("segments start non-empty")
                        .is_empty()
                    {
                        segments[r].push(Vec::new());
                    }
                }
            }
        }
        for region in &mut segments {
            region.retain(|s| !s.is_empty());
        }
        Self {
            region_qubits,
            segments,
            cut,
            cut_weight,
        }
    }

    /// Number of (non-empty) regions.
    pub fn regions(&self) -> usize {
        self.region_qubits.len()
    }
}

/// One region's compiled contribution, keyed for the stitch.
struct RegionStream {
    /// `(first routed position of the segment, its compiled instructions)`.
    outputs: Vec<(usize, Vec<AggregateInstruction>)>,
    stats: AggregationStats,
    instructions: usize,
    gates: usize,
    wall_time: Duration,
}

/// The partitioned-compilation pass: plans the regions, compiles them in
/// parallel, and stitches the streams (see the [module docs](self)).
///
/// In a recipe the pass replaces [`Aggregate`](crate::passes::Aggregate):
/// under an aggregating strategy each region's segments aggregate in parallel
/// over the context pool and the stitched stream replaces the state's
/// instructions. Under a non-aggregating strategy the stream is left
/// untouched (partitioning has nothing to parallelize — pricing is cheap
/// arithmetic) and the pass only records the partition telemetry, so the
/// result stays bit-identical to the whole-circuit pipeline at every `k`.
/// [`Strategy::partitioned_pipeline`](crate::Strategy::partitioned_pipeline)
/// assembles the canonical recipe around it.
#[derive(Debug, Clone, Default)]
pub struct PartitionPass {
    options: PartitionOptions,
}

impl PartitionPass {
    /// A pass cutting the circuit per the given options.
    pub fn new(options: PartitionOptions) -> Self {
        Self { options }
    }
}

impl Pass for PartitionPass {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn run(&self, state: &mut PassState, ctx: &PassContext) -> Result<(), CompileError> {
        // The stream is routed (physical indices), so the plan spans the
        // device's qubits, not just the circuit's logical ones.
        let n_qubits = ctx.device.n_qubits().max(ctx.circuit.n_qubits());
        let plan = PartitionPlan::of(&state.instructions, n_qubits, self.options.regions);
        let aggregating = ctx.options.strategy.pulse_per_instruction();
        let instrs = &state.instructions;
        let region_indices: Vec<usize> = (0..plan.regions()).collect();
        let streams: Vec<RegionStream> = ctx.pool.parallel_map(&region_indices, |&r| {
            let started = Instant::now();
            let mut outputs = Vec::with_capacity(plan.segments[r].len());
            let mut stats = AggregationStats::default();
            for segment in &plan.segments[r] {
                let seg_instrs: Vec<AggregateInstruction> =
                    segment.iter().map(|&p| instrs[p].clone()).collect();
                let merged = if aggregating {
                    // Region-level parallelism is the win; each segment's
                    // search runs serially inside its worker. The serial and
                    // speculative searches are pinned bit-identical, so the
                    // output does not depend on this choice.
                    let (mut merged, seg_stats) = aggregate::run_with_pool(
                        &seg_instrs,
                        ctx.model,
                        &ctx.options.aggregation,
                        &ThreadPool::serial(),
                    );
                    aggregate::finalize_origins(&mut merged);
                    stats.merges += seg_stats.merges;
                    stats.passes += seg_stats.passes;
                    stats.makespan_before += seg_stats.makespan_before;
                    stats.makespan_after += seg_stats.makespan_after;
                    merged
                } else {
                    seg_instrs
                };
                outputs.push((segment[0], merged));
            }
            let instructions: usize = outputs.iter().map(|(_, o)| o.len()).sum();
            let gates: usize = outputs
                .iter()
                .flat_map(|(_, o)| o.iter())
                .map(|i| i.gate_count())
                .sum();
            RegionStream {
                outputs,
                stats,
                instructions,
                gates,
                wall_time: started.elapsed(),
            }
        });

        // Stitch: segments carry the routed position of their first
        // instruction, cut instructions carry their own. Emitting in
        // ascending key order places every segment strictly between the
        // barriers that delimit it, so the routed stream's per-qubit order is
        // reproduced exactly (keys are distinct routed positions).
        let stitch_started = Instant::now();
        let mut items: Vec<(usize, Vec<AggregateInstruction>)> = Vec::new();
        for stream in &streams {
            items.extend(stream.outputs.iter().cloned());
        }
        for &pos in &plan.cut {
            items.push((pos, vec![instrs[pos].clone()]));
        }
        items.sort_by_key(|&(key, _)| key);
        let stitched: Vec<AggregateInstruction> =
            items.into_iter().flat_map(|(_, out)| out).collect();
        let stitch_wall_time = stitch_started.elapsed();

        let regions = plan
            .region_qubits
            .iter()
            .zip(&streams)
            .map(|(qubits, stream)| RegionTelemetry {
                qubits: qubits.clone(),
                instructions: stream.instructions,
                gates: stream.gates,
                wall_time: stream.wall_time,
            })
            .collect();
        state.partition = Some(PartitionSummary {
            requested_regions: self.options.regions.max(1),
            regions,
            cut_weight: plan.cut_weight,
            cut_instructions: plan.cut.len(),
            stitch_wall_time,
        });
        if aggregating {
            let mut stats = AggregationStats::default();
            for stream in &streams {
                stats.merges += stream.stats.merges;
                stats.passes += stream.stats.passes;
                stats.makespan_before += stream.stats.makespan_before;
                stats.makespan_after += stream.stats.makespan_after;
            }
            state.instructions = stitched;
            state.aggregation = stats;
            state.invalidate_derived();
        }
        Ok(())
    }
}

/// One region of a logical-level circuit partition: the original qubits it
/// owns and its sub-circuit compacted onto `0..qubits.len()` — an
/// independently routable unit a [`Fleet`](crate::Fleet) can place on any
/// backend large enough for the *region* rather than the whole circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalRegion {
    /// Sorted original logical qubits of the region.
    pub qubits: Vec<usize>,
    /// The region's interior gates, in program order, remapped onto
    /// `0..qubits.len()`.
    pub circuit: Circuit,
}

/// A circuit cut into independently compilable sub-circuits plus the explicit
/// cross-region remainder. Produced by [`partition_circuit`]; consumed by
/// [`Fleet::submit_partitioned`](crate::Fleet::submit_partitioned).
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPartition {
    /// The non-empty regions, each with a compacted sub-circuit.
    pub regions: Vec<LogicalRegion>,
    /// Every gate straddling two regions, on the original qubit indices and
    /// in program order — nothing is silently dropped: the caller owns
    /// scheduling these at the seams (e.g. pricing the cross-backend cost).
    pub cut: Circuit,
    /// Total interaction-graph weight crossing region boundaries.
    pub cut_weight: f64,
}

/// Cuts a circuit into `k` weakly coupled sub-circuits at the *logical* level
/// (before any device is chosen): flatten to the virtual ISA, partition the
/// qubit-interaction graph, and split the gate stream into per-region
/// circuits plus the cross-region cut set.
///
/// Unlike the in-pipeline [`PartitionPass`] (which partitions the routed
/// stream and stitches one schedule for one device), this is the fan-out
/// shape: each region is a self-contained [`Circuit`] on `0..region_width`
/// qubits that any sufficiently large backend can compile independently.
pub fn partition_circuit(circuit: &Circuit, k: usize) -> LogicalPartition {
    let instrs = frontend::lower(circuit);
    let g = mapping::interaction_graph(&instrs, circuit.n_qubits());
    let mut parts: Vec<Vec<usize>> = graph_partition::k_way_partition(&g, k.max(1))
        .into_iter()
        .filter(|p| !p.is_empty())
        .collect();
    if parts.is_empty() {
        parts.push(Vec::new());
    }
    for part in &mut parts {
        part.sort_unstable();
    }
    let cut_weight = graph_partition::k_way_cut_weight(&g, &parts);
    let mut region_of = vec![0usize; circuit.n_qubits()];
    let mut local_index = vec![0usize; circuit.n_qubits()];
    for (r, part) in parts.iter().enumerate() {
        for (local, &q) in part.iter().enumerate() {
            region_of[q] = r;
            local_index[q] = local;
        }
    }
    let mut regions: Vec<LogicalRegion> = parts
        .iter()
        .map(|qubits| LogicalRegion {
            qubits: qubits.clone(),
            circuit: Circuit::new(qubits.len()),
        })
        .collect();
    let mut cut = Circuit::new(circuit.n_qubits());
    for agg in &instrs {
        for inst in &agg.constituents {
            let home = inst.qubits.first().map_or(0, |&q| region_of[q]);
            if inst.qubits.iter().all(|&q| region_of[q] == home) {
                let local: Vec<usize> = inst.qubits.iter().map(|&q| local_index[q]).collect();
                regions[home].circuit.push(inst.gate, &local);
            } else {
                cut.push(inst.gate, &inst.qubits);
            }
        }
    }
    LogicalPartition {
        regions,
        cut,
        cut_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_ir::{Gate, Instruction};

    fn single(g: Gate, qs: &[usize]) -> AggregateInstruction {
        AggregateInstruction::from_gate(Instruction::new(g, qs.to_vec()))
    }

    /// Two CNOT chains on {0,1,2} and {3,4,5} bridged by one CNOT.
    fn bridged_stream() -> Vec<AggregateInstruction> {
        vec![
            single(Gate::Cnot, &[0, 1]),
            single(Gate::Cnot, &[1, 2]),
            single(Gate::Cnot, &[3, 4]),
            single(Gate::Cnot, &[4, 5]),
            single(Gate::Cnot, &[2, 3]), // the bridge
            single(Gate::Cnot, &[0, 1]),
            single(Gate::Cnot, &[4, 5]),
        ]
    }

    #[test]
    fn plan_finds_the_bridge_cut() {
        let plan = PartitionPlan::of(&bridged_stream(), 6, 2);
        assert_eq!(plan.regions(), 2);
        assert_eq!(plan.cut, vec![4], "only the bridge crosses regions");
        assert!((plan.cut_weight - 1.0).abs() < 1e-9);
        let mut all: Vec<usize> = plan.region_qubits.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn cut_instructions_split_segments_on_both_sides() {
        let plan = PartitionPlan::of(&bridged_stream(), 6, 2);
        // Both regions touch the bridge, so both have two segments: before
        // and after position 4.
        for (r, segments) in plan.segments.iter().enumerate() {
            assert_eq!(segments.len(), 2, "region {r}: {segments:?}");
            assert!(segments[0].iter().all(|&p| p < 4), "region {r}");
            assert!(segments[1].iter().all(|&p| p > 4), "region {r}");
        }
        // Every position lands in exactly one segment or the cut.
        let mut all: Vec<usize> = plan
            .segments
            .iter()
            .flatten()
            .flatten()
            .copied()
            .chain(plan.cut.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn plan_is_total_over_degenerate_inputs() {
        // k = 0 behaves like k = 1.
        let plan = PartitionPlan::of(&bridged_stream(), 6, 0);
        assert_eq!(plan.regions(), 1);
        assert!(plan.cut.is_empty());
        assert_eq!(plan.cut_weight, 0.0);
        // k far beyond the qubit count: at most one region per qubit.
        let plan = PartitionPlan::of(&bridged_stream(), 6, 64);
        assert!(plan.regions() <= 6);
        // Empty stream.
        let plan = PartitionPlan::of(&[], 4, 2);
        assert!(plan.cut.is_empty());
        assert!(plan.segments.iter().all(|s| s.is_empty()));
        // Zero qubits.
        let plan = PartitionPlan::of(&[], 0, 3);
        assert_eq!(plan.regions(), 1);
    }

    #[test]
    fn logical_partition_conserves_every_gate() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.push(Gate::H, &[q]);
        }
        for &(a, b) in &[(0usize, 1usize), (1, 2), (3, 4), (4, 5), (2, 3)] {
            c.push(Gate::Cnot, &[a, b]);
            c.push(Gate::Rz(0.5), &[b]);
        }
        let lp = partition_circuit(&c, 2);
        let region_gates: usize = lp.regions.iter().map(|r| r.circuit.len()).sum();
        assert_eq!(
            region_gates + lp.cut.len(),
            c.len(),
            "every flattened gate lands in exactly one region or the cut"
        );
        if !lp.cut.is_empty() {
            assert!(lp.cut_weight > 0.0, "crossing gates imply crossing weight");
        }
        // Region circuits are compacted: widths match their qubit lists.
        for region in &lp.regions {
            assert_eq!(region.circuit.n_qubits(), region.qubits.len());
            for inst in region.circuit.instructions() {
                assert!(inst.qubits.iter().all(|&q| q < region.qubits.len()));
            }
        }
        // The cut keeps original indices.
        assert_eq!(lp.cut.n_qubits(), 6);
    }

    #[test]
    fn logical_partition_single_region_is_the_whole_flattened_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Cnot, &[1, 2]);
        let lp = partition_circuit(&c, 1);
        assert_eq!(lp.regions.len(), 1);
        assert_eq!(lp.cut.len(), 0);
        assert_eq!(lp.cut_weight, 0.0);
        assert_eq!(lp.regions[0].circuit.len(), c.len());
    }
}
