//! Physical schedules: ASAP list scheduling with qubit exclusivity, ALAP
//! slacks, and critical-path extraction.
//!
//! An instruction occupies all of its qubits for its whole duration, so a
//! schedule is fully determined by the instruction *order* and the per-
//! instruction latencies: each instruction starts as soon as every qubit it
//! touches is free (as-soon-as-possible list scheduling). The compilation
//! strategies differ in the order they produce and in how they price each
//! instruction, not in the scheduling rule itself.

use crate::instr::AggregateInstruction;
use serde::{Deserialize, Serialize};

/// One scheduled instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledInstruction {
    /// Index into the instruction list the schedule was built from.
    pub index: usize,
    /// Start time in ns.
    pub start: f64,
    /// Duration in ns.
    pub duration: f64,
}

impl ScheduledInstruction {
    /// Finish time in ns.
    pub fn finish(&self) -> f64 {
        self.start + self.duration
    }
}

/// A complete schedule of an instruction sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Scheduled entries in the same order as the input instructions.
    pub entries: Vec<ScheduledInstruction>,
    /// Total duration (makespan) in ns.
    pub makespan: f64,
}

impl Schedule {
    /// The indices of instructions on the critical path (every instruction
    /// whose finish time has zero slack), in start-time order.
    pub fn critical_path(&self, slacks: &[f64]) -> Vec<usize> {
        let mut on_path: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| slacks[*i] < 1e-9)
            .map(|(i, _)| i)
            .collect();
        on_path.sort_by(|&a, &b| {
            self.entries[a]
                .start
                .partial_cmp(&self.entries[b].start)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        on_path
    }

    /// Average parallelism of the schedule: total busy time (the sum of every
    /// instruction's duration) divided by the makespan. A fully serial
    /// schedule scores 1.0; a schedule where `k` instructions overlap at all
    /// times scores `k`. Returns 0.0 for an empty schedule.
    pub fn parallelism(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.entries.iter().map(|e| e.duration).sum();
        busy / self.makespan
    }
}

/// ASAP schedule of `instrs` in the given order with the given per-instruction
/// latencies.
///
/// # Panics
///
/// Panics if `latencies.len() != instrs.len()`.
pub fn asap_schedule(instrs: &[AggregateInstruction], latencies: &[f64]) -> Schedule {
    assert_eq!(instrs.len(), latencies.len(), "latency count mismatch");
    let n_qubits = instrs
        .iter()
        .flat_map(|i| i.qubits.iter().copied())
        .max()
        .map_or(0, |m| m + 1);
    let mut qubit_free = vec![0.0f64; n_qubits];
    let mut entries = Vec::with_capacity(instrs.len());
    let mut makespan = 0.0f64;
    for (index, (inst, &dur)) in instrs.iter().zip(latencies.iter()).enumerate() {
        let start = inst
            .qubits
            .iter()
            .map(|&q| qubit_free[q])
            .fold(0.0f64, f64::max);
        let finish = start + dur;
        for &q in &inst.qubits {
            qubit_free[q] = finish;
        }
        makespan = makespan.max(finish);
        entries.push(ScheduledInstruction {
            index,
            start,
            duration: dur,
        });
    }
    Schedule { entries, makespan }
}

/// ALAP slacks: for every instruction, how much later it could finish without
/// extending the makespan, given the same order and latencies.
pub fn alap_slacks(
    instrs: &[AggregateInstruction],
    latencies: &[f64],
    schedule: &Schedule,
) -> Vec<f64> {
    let n_qubits = instrs
        .iter()
        .flat_map(|i| i.qubits.iter().copied())
        .max()
        .map_or(0, |m| m + 1);
    // Latest allowed finish per qubit, moving backwards.
    let mut qubit_deadline = vec![schedule.makespan; n_qubits];
    let mut slacks = vec![0.0f64; instrs.len()];
    for (index, inst) in instrs.iter().enumerate().rev() {
        let deadline = inst
            .qubits
            .iter()
            .map(|&q| qubit_deadline[q])
            .fold(f64::INFINITY, f64::min);
        let latest_start = deadline - latencies[index];
        let actual_start = schedule.entries[index].start;
        slacks[index] = (latest_start - actual_start).max(0.0);
        for &q in &inst.qubits {
            qubit_deadline[q] = latest_start;
        }
    }
    slacks
}

/// Convenience: ASAP makespan only.
pub fn makespan(instrs: &[AggregateInstruction], latencies: &[f64]) -> f64 {
    asap_schedule(instrs, latencies).makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::AggregateInstruction as AI;
    use qcc_ir::{Gate, Instruction};

    fn gate(g: Gate, qs: &[usize]) -> AI {
        AI::from_gate(Instruction::new(g, qs.to_vec()))
    }

    #[test]
    fn serial_chain_adds_up() {
        let instrs = vec![
            gate(Gate::Cnot, &[0, 1]),
            gate(Gate::Cnot, &[1, 2]),
            gate(Gate::Cnot, &[2, 3]),
        ];
        let lat = vec![10.0, 20.0, 30.0];
        let s = asap_schedule(&instrs, &lat);
        assert!((s.makespan - 60.0).abs() < 1e-12);
        assert!((s.entries[1].start - 10.0).abs() < 1e-12);
        assert!((s.entries[2].start - 30.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_instructions_run_in_parallel() {
        let instrs = vec![gate(Gate::Cnot, &[0, 1]), gate(Gate::Cnot, &[2, 3])];
        let s = asap_schedule(&instrs, &[25.0, 40.0]);
        assert!((s.makespan - 40.0).abs() < 1e-12);
        assert!(s.entries.iter().all(|e| e.start == 0.0));
        assert!((s.parallelism() - 65.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn slacks_identify_critical_path() {
        let instrs = vec![
            gate(Gate::Cnot, &[0, 1]), // critical
            gate(Gate::H, &[2]),       // lots of slack
            gate(Gate::Cnot, &[1, 2]), // critical
        ];
        let lat = vec![30.0, 5.0, 30.0];
        let s = asap_schedule(&instrs, &lat);
        assert!((s.makespan - 60.0).abs() < 1e-12);
        let slacks = alap_slacks(&instrs, &lat, &s);
        assert!(slacks[0] < 1e-9);
        assert!(slacks[2] < 1e-9);
        assert!(slacks[1] > 20.0);
        let cp = s.critical_path(&slacks);
        assert_eq!(cp, vec![0, 2]);
    }

    #[test]
    fn parallelism_is_busy_time_over_makespan() {
        // Two 10 ns instructions in parallel followed by one serial 20 ns
        // instruction spanning both qubits: busy = 40 ns over a 30 ns
        // makespan, i.e. average parallelism 4/3 — NOT a count of distinct
        // time steps (which would be 2).
        let instrs = vec![
            gate(Gate::H, &[0]),
            gate(Gate::H, &[1]),
            gate(Gate::Cnot, &[0, 1]),
        ];
        let s = asap_schedule(&instrs, &[10.0, 10.0, 20.0]);
        assert!((s.makespan - 30.0).abs() < 1e-12);
        assert!((s.parallelism() - 40.0 / 30.0).abs() < 1e-12);
        // A fully serial chain scores exactly 1.0.
        let serial = vec![gate(Gate::H, &[0]), gate(Gate::X, &[0])];
        let s = asap_schedule(&serial, &[5.0, 15.0]);
        assert!((s.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_schedule() {
        let s = asap_schedule(&[], &[]);
        assert_eq!(s.makespan, 0.0);
        assert!(s.entries.is_empty());
        assert_eq!(s.parallelism(), 0.0);
    }

    #[test]
    fn order_matters_for_commuting_gates() {
        // Three ZZ blocks on a line: scheduled in chain order they serialize,
        // but putting the middle one last allows the outer pair in parallel.
        let zz = |a: usize, b: usize| {
            AI::from_gates(
                vec![Instruction::new(Gate::Rzz(0.5), vec![a, b])],
                crate::instr::InstructionOrigin::DiagonalBlock,
            )
        };
        let lat = vec![20.0, 20.0, 20.0];
        let chain = vec![zz(0, 1), zz(1, 2), zz(2, 3)];
        let s_chain = asap_schedule(&chain, &lat);
        let reordered = vec![zz(0, 1), zz(2, 3), zz(1, 2)];
        let s_re = asap_schedule(&reordered, &lat);
        assert!(s_chain.makespan > s_re.makespan);
        assert!((s_re.makespan - 40.0).abs() < 1e-12);
    }
}
