//! Compiler front-end: flattening and commutativity detection.
//!
//! The front-end lowers the input circuit to 1-/2-qubit gates (module
//! flattening, §3.3), wraps every gate in an [`AggregateInstruction`], and
//! contracts runs of gates that implement *diagonal* unitaries on a 2-qubit
//! support into single block instructions (§4.2). Those blocks — the
//! CNOT–Rz–CNOT structures of QAOA, Ising and UCCSD circuits — commute with
//! each other, which is what gives the commutativity-aware scheduler its
//! freedom (Fig. 6b).

use crate::instr::{AggregateInstruction, InstructionOrigin};
use qcc_ir::{decompose, Circuit, Instruction};
use qcc_math::CMatrix;

/// Flattens a circuit to 1-/2-qubit gates and wraps each gate in its own
/// [`AggregateInstruction`].
pub fn lower(circuit: &Circuit) -> Vec<AggregateInstruction> {
    decompose::flatten(circuit)
        .instructions()
        .iter()
        .cloned()
        .map(AggregateInstruction::from_gate)
        .collect()
}

/// Maximum number of gates searched when growing one diagonal block, following
/// the paper's observation that such blocks are "typically no longer than 10
/// gates".
pub const MAX_BLOCK_GATES: usize = 10;

/// Detects diagonal blocks of width ≤ 2 and contracts them.
///
/// The scan looks, for every ordered qubit pair, at maximal runs of
/// consecutive instructions (in the order restricted to that pair) whose
/// product is diagonal; a run of length ≥ 2 is contracted into a single
/// [`InstructionOrigin::DiagonalBlock`] instruction. Instructions acting on
/// other qubits in between do not break a run (they commute trivially with
/// gates confined to the pair).
pub fn detect_diagonal_blocks(instrs: &[AggregateInstruction]) -> Vec<AggregateInstruction> {
    let mut result: Vec<AggregateInstruction> = Vec::new();
    let mut consumed = vec![false; instrs.len()];
    let mut i = 0usize;
    while i < instrs.len() {
        if consumed[i] {
            i += 1;
            continue;
        }
        let seed = &instrs[i];
        // Only start a block at a 2-qubit, single-gate instruction.
        if seed.width() != 2 || seed.gate_count() != 1 {
            result.push(seed.clone());
            consumed[i] = true;
            i += 1;
            continue;
        }
        let pair = seed.qubits.clone();
        // Collect the indices of the following instructions that stay within
        // the pair, stopping at the first instruction that touches exactly one
        // of the pair's qubits together with an outside qubit (that is a real
        // dependence that must not be reordered across).
        let mut window: Vec<usize> = vec![i];
        let mut j = i + 1;
        while j < instrs.len() && window.len() < MAX_BLOCK_GATES {
            if consumed[j] {
                j += 1;
                continue;
            }
            let other = &instrs[j];
            let touches_pair = other.qubits.iter().any(|q| pair.contains(q));
            let inside_pair = other.qubits.iter().all(|q| pair.contains(q));
            if !touches_pair {
                j += 1;
                continue;
            }
            if inside_pair && other.gate_count() == 1 {
                window.push(j);
                j += 1;
            } else {
                break;
            }
        }
        // Find the longest prefix of the window whose product is diagonal and
        // contains at least 2 gates.
        let mut best_len = 0usize;
        for len in (2..=window.len()).rev() {
            let gates: Vec<&Instruction> = window[..len]
                .iter()
                .map(|&k| &instrs[k].constituents[0])
                .collect();
            if product_is_diagonal(&gates, &pair) {
                best_len = len;
                break;
            }
        }
        if best_len >= 2 {
            let gates: Vec<Instruction> = window[..best_len]
                .iter()
                .map(|&k| instrs[k].constituents[0].clone())
                .collect();
            for &k in &window[..best_len] {
                consumed[k] = true;
            }
            result.push(AggregateInstruction::from_gates(
                gates,
                InstructionOrigin::DiagonalBlock,
            ));
        } else {
            result.push(seed.clone());
            consumed[i] = true;
        }
        i += 1;
    }
    result
}

/// Whether the product of `gates` restricted to `pair` is a diagonal unitary.
fn product_is_diagonal(gates: &[&Instruction], pair: &[usize]) -> bool {
    let n = pair.len();
    let dim = 1usize << n;
    let mut u = CMatrix::identity(dim);
    for inst in gates {
        let local: Vec<usize> = inst
            .qubits
            .iter()
            .map(|q| pair.iter().position(|s| s == q).expect("gate within pair"))
            .collect();
        u = inst.gate.matrix().embed(n, &local).matmul(&u);
    }
    u.is_diagonal(1e-9)
}

/// Full front-end: flatten, then detect diagonal blocks.
pub fn run(circuit: &Circuit) -> Vec<AggregateInstruction> {
    detect_diagonal_blocks(&lower(circuit))
}

/// Reconstructs a plain circuit from an instruction list (used by verification
/// and by round-trip tests).
pub fn to_circuit(instrs: &[AggregateInstruction], n_qubits: usize) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    for agg in instrs {
        for inst in &agg.constituents {
            c.push_instruction(inst.clone());
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_ir::Gate;

    fn qaoa_like_circuit() -> Circuit {
        // H layer, two CNOT-Rz-CNOT blocks sharing qubit 1, Rx layer.
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::H, &[q]);
        }
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Rz(0.7), &[1]);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Cnot, &[1, 2]);
        c.push(Gate::Rz(0.7), &[2]);
        c.push(Gate::Cnot, &[1, 2]);
        for q in 0..3 {
            c.push(Gate::Rx(1.3), &[q]);
        }
        c
    }

    #[test]
    fn lower_flattens_toffoli() {
        let mut c = Circuit::new(3);
        c.push(Gate::Toffoli, &[0, 1, 2]);
        let instrs = lower(&c);
        assert!(instrs.iter().all(|i| i.width() <= 2));
        assert!(instrs.len() > 10);
    }

    #[test]
    fn detects_cnot_rz_cnot_blocks() {
        let instrs = lower(&qaoa_like_circuit());
        let detected = detect_diagonal_blocks(&instrs);
        let blocks: Vec<&AggregateInstruction> = detected
            .iter()
            .filter(|i| i.origin == InstructionOrigin::DiagonalBlock)
            .collect();
        assert_eq!(blocks.len(), 2, "{detected:?}");
        for b in &blocks {
            assert_eq!(b.gate_count(), 3);
            assert!(b.is_diagonal());
        }
        // 6 single-qubit gates survive unmerged.
        assert_eq!(detected.len(), 6 + 2);
    }

    #[test]
    fn detection_preserves_semantics() {
        let circuit = qaoa_like_circuit();
        let detected = run(&circuit);
        let rebuilt = to_circuit(&detected, circuit.n_qubits());
        assert!(rebuilt
            .unitary()
            .approx_eq_up_to_phase(&circuit.unitary(), 1e-9));
    }

    #[test]
    fn non_diagonal_runs_are_left_alone() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Cnot, &[0, 1]);
        let detected = run(&c);
        assert!(detected
            .iter()
            .all(|i| i.origin != InstructionOrigin::DiagonalBlock));
        assert_eq!(detected.len(), 3);
    }

    #[test]
    fn longer_diagonal_chains_are_contracted() {
        // CNOT Rz CNOT Rz(q0) CZ — all on the same pair, product diagonal.
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Rz(0.3), &[1]);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Rz(-0.2), &[0]);
        c.push(Gate::Cz, &[0, 1]);
        let detected = run(&c);
        assert_eq!(detected.len(), 1);
        assert_eq!(detected[0].gate_count(), 5);
        assert!(detected[0].is_diagonal());
    }

    #[test]
    fn interleaved_gates_on_other_qubits_do_not_break_blocks() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::H, &[3]); // unrelated
        c.push(Gate::Rz(0.4), &[1]);
        c.push(Gate::X, &[2]); // unrelated
        c.push(Gate::Cnot, &[0, 1]);
        let detected = run(&c);
        let blocks: Vec<_> = detected
            .iter()
            .filter(|i| i.origin == InstructionOrigin::DiagonalBlock)
            .collect();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].gate_count(), 3);
        // Semantics preserved (the reordering only moves commuting gates).
        let rebuilt = to_circuit(&detected, 4);
        assert!(rebuilt.unitary().approx_eq_up_to_phase(&c.unitary(), 1e-9));
    }

    #[test]
    fn gate_crossing_the_pair_boundary_stops_the_block() {
        // The CNOT(1,2) in the middle shares qubit 1 with the pair (0,1) and
        // must not be jumped over.
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Cnot, &[1, 2]);
        c.push(Gate::Rz(0.4), &[1]);
        c.push(Gate::Cnot, &[0, 1]);
        let detected = run(&c);
        assert!(detected
            .iter()
            .all(|i| i.origin != InstructionOrigin::DiagonalBlock));
        let rebuilt = to_circuit(&detected, 3);
        assert!(rebuilt.unitary().approx_eq_up_to_phase(&c.unitary(), 1e-9));
    }
}
