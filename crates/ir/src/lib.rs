//! # qcc-ir
//!
//! The logical quantum intermediate representation of the aggregated-
//! instruction compiler: gates with exact unitaries, circuits, an OpenQASM 2.0
//! subset parser/writer, standard decompositions, Pauli-string rotations and
//! commutation analysis.
//!
//! This crate corresponds to the "QASM / logical assembly" level of the paper's
//! toolflow (Fig. 1, Fig. 5): everything above it (programs) lowers into
//! [`Circuit`]s of 1- and 2-qubit [`Gate`]s, and everything below it (the
//! scheduler, mapper, aggregator and optimal-control unit) consumes them.
//!
//! ## Example
//!
//! ```
//! use qcc_ir::{Circuit, Gate, commute};
//!
//! // The CNOT–Rz–CNOT block of a QAOA circuit is a diagonal unitary …
//! let mut block = Circuit::new(2);
//! block.push(Gate::Cnot, &[0, 1]);
//! block.push(Gate::Rz(0.8), &[1]);
//! block.push(Gate::Cnot, &[0, 1]);
//! let instructions: Vec<_> = block.instructions().iter().collect();
//! assert!(commute::sequence_is_diagonal(&instructions, 2));
//! ```

#![warn(missing_docs)]

pub mod bytes;
pub mod circuit;
pub mod commute;
pub mod decompose;
pub mod gate;
pub mod pauli_rotation;
pub mod qasm;

pub use bytes::{ByteCursor, DecodeError};
pub use circuit::{Circuit, Instruction};
pub use commute::{commute as gates_commute, commute_exact, commute_structural};
pub use gate::{AxisAction, Gate};
pub use pauli_rotation::{PauliOp, PauliRotation, PauliString};
pub use qasm::{parse as parse_qasm, write as write_qasm, QasmError};
