//! Commutation analysis between instructions.
//!
//! The paper's front-end removes false dependences from the gate dependence
//! graph by detecting commuting gates (§3.3.1, Table 2). Two mechanisms are
//! provided here:
//!
//! * a fast per-qubit classification ([`commute_structural`]) following the
//!   commutation-group idea of §3.3.2 — two gates commute when, on every
//!   shared qubit, their single-qubit actions commute (diagonal-with-diagonal,
//!   X-with-X, …), and
//! * the exact check ([`commute_exact`]) that explicitly compares `A·B` with
//!   `B·A` on the joint support, which is what the paper says its frontend
//!   does ("resolved by explicitly checking the equality of unitary operators
//!   ÂB̂ and B̂Â").

use crate::circuit::Instruction;
use qcc_math::CMatrix;

/// Tolerance used when comparing unitaries entry-wise.
pub const COMMUTE_TOL: f64 = 1e-9;

/// Fast, conservative structural commutation check.
///
/// Returns `true` only when the gates certainly commute:
/// * they share no qubits, or
/// * on every shared qubit, the per-qubit axis actions commute.
///
/// This never reports a false positive for the gate set of this crate, but may
/// miss exotic commutations (which [`commute_exact`] will catch).
pub fn commute_structural(a: &Instruction, b: &Instruction) -> bool {
    let shared = a.shared_qubits(b);
    if shared.is_empty() {
        return true;
    }
    shared.iter().all(|&q| {
        let pa = a.position_of(q).expect("shared qubit in a");
        let pb = b.position_of(q).expect("shared qubit in b");
        a.gate.axis_on(pa).commutes_with(b.gate.axis_on(pb))
    })
}

/// Exact commutation check by comparing the two products on the joint support.
///
/// The joint support is the union of the qubits of both instructions (at most
/// four qubits for flattened circuits), so the dense comparison is cheap.
pub fn commute_exact(a: &Instruction, b: &Instruction) -> bool {
    let shared = a.shared_qubits(b);
    if shared.is_empty() {
        return true;
    }
    let (ma, mb) = joint_matrices(a, b);
    let ab = ma.matmul(&mb);
    let ba = mb.matmul(&ma);
    ab.approx_eq(&ba, COMMUTE_TOL)
}

/// Combined check: the cheap structural test first, then the exact unitary
/// comparison as a fallback.
pub fn commute(a: &Instruction, b: &Instruction) -> bool {
    commute_structural(a, b) || commute_exact(a, b)
}

/// Embeds both instructions on their joint qubit support and returns the two
/// matrices (in the same local ordering).
pub fn joint_matrices(a: &Instruction, b: &Instruction) -> (CMatrix, CMatrix) {
    let mut support: Vec<usize> = a.qubits.clone();
    for &q in &b.qubits {
        if !support.contains(&q) {
            support.push(q);
        }
    }
    support.sort_unstable();
    let local = |inst: &Instruction| -> Vec<usize> {
        inst.qubits
            .iter()
            .map(|q| {
                support
                    .iter()
                    .position(|s| s == q)
                    .expect("qubit in support")
            })
            .collect()
    };
    let n = support.len();
    let ma = a.gate.matrix().embed(n, &local(a));
    let mb = b.gate.matrix().embed(n, &local(b));
    (ma, mb)
}

/// Whether an instruction is diagonal in the computational basis.
pub fn is_diagonal(inst: &Instruction) -> bool {
    inst.gate.is_diagonal()
}

/// Whether a *sequence* of instructions implements a diagonal unitary on its
/// joint support (e.g. the CNOT–Rz–CNOT blocks of §4.2), verified by building
/// the product matrix.
///
/// Returns `false` for sequences spanning more than `max_qubits` qubits (the
/// paper restricts diagonal-block detection to 2-qubit-wide blocks to preserve
/// parallelism).
pub fn sequence_is_diagonal(instructions: &[&Instruction], max_qubits: usize) -> bool {
    if instructions.is_empty() {
        return true;
    }
    let mut support: Vec<usize> = Vec::new();
    for inst in instructions {
        for &q in &inst.qubits {
            if !support.contains(&q) {
                support.push(q);
            }
        }
    }
    if support.len() > max_qubits {
        return false;
    }
    support.sort_unstable();
    let n = support.len();
    let dim = 1usize << n;
    let mut u = CMatrix::identity(dim);
    for inst in instructions {
        let local: Vec<usize> = inst
            .qubits
            .iter()
            .map(|q| support.iter().position(|s| s == q).expect("in support"))
            .collect();
        u = inst.gate.matrix().embed(n, &local).matmul(&u);
    }
    u.is_diagonal(COMMUTE_TOL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn inst(gate: Gate, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec())
    }

    // ------- Table 2 of the paper -------

    #[test]
    fn disjoint_gates_commute() {
        let a = inst(Gate::H, &[0]);
        let b = inst(Gate::Cnot, &[1, 2]);
        assert!(commute_structural(&a, &b));
        assert!(commute_exact(&a, &b));
    }

    #[test]
    fn rz_commutes_with_cnot_control() {
        let rz = inst(Gate::Rz(0.7), &[0]);
        let cnot = inst(Gate::Cnot, &[0, 1]);
        assert!(commute(&rz, &cnot));
        assert!(commute_structural(&rz, &cnot));
        assert!(commute_exact(&rz, &cnot));
    }

    #[test]
    fn rz_does_not_commute_with_cnot_target() {
        let rz = inst(Gate::Rz(0.7), &[1]);
        let cnot = inst(Gate::Cnot, &[0, 1]);
        assert!(!commute(&rz, &cnot));
    }

    #[test]
    fn diagonal_gates_commute() {
        let a = inst(Gate::Rzz(0.4), &[0, 1]);
        let b = inst(Gate::Rzz(1.9), &[1, 2]);
        assert!(commute(&a, &b));
        let cz1 = inst(Gate::Cz, &[0, 1]);
        let cz2 = inst(Gate::CPhase(0.3), &[0, 1]);
        assert!(commute(&cz1, &cz2));
    }

    #[test]
    fn cnots_with_disjoint_controls_sharing_target_commute() {
        // Table 2, bottom-right: CNOTs with different controls and the same
        // target commute.
        let a = inst(Gate::Cnot, &[0, 2]);
        let b = inst(Gate::Cnot, &[1, 2]);
        assert!(commute(&a, &b));
        assert!(commute_structural(&a, &b));
    }

    #[test]
    fn cnots_sharing_control_commute() {
        let a = inst(Gate::Cnot, &[0, 1]);
        let b = inst(Gate::Cnot, &[0, 2]);
        assert!(commute(&a, &b));
    }

    // ------- Negative cases and exact-check fallbacks -------

    #[test]
    fn sequential_cnots_in_chain_do_not_commute() {
        let a = inst(Gate::Cnot, &[0, 1]);
        let b = inst(Gate::Cnot, &[1, 2]);
        assert!(!commute(&a, &b));
    }

    #[test]
    fn x_does_not_commute_with_h() {
        let a = inst(Gate::X, &[0]);
        let b = inst(Gate::H, &[0]);
        assert!(!commute(&a, &b));
    }

    #[test]
    fn x_commutes_with_cnot_target() {
        let x = inst(Gate::X, &[1]);
        let cnot = inst(Gate::Cnot, &[0, 1]);
        assert!(commute(&x, &cnot));
    }

    #[test]
    fn structural_matches_exact_on_standard_pairs() {
        let gates: Vec<Instruction> = vec![
            inst(Gate::H, &[0]),
            inst(Gate::Rz(0.3), &[0]),
            inst(Gate::Rx(0.9), &[1]),
            inst(Gate::Cnot, &[0, 1]),
            inst(Gate::Cnot, &[1, 0]),
            inst(Gate::Cz, &[0, 1]),
            inst(Gate::Rzz(1.2), &[0, 1]),
            inst(Gate::Swap, &[0, 1]),
            inst(Gate::T, &[1]),
            inst(Gate::X, &[0]),
        ];
        for a in &gates {
            for b in &gates {
                // The structural test must never claim commutation that the
                // exact check refutes.
                if commute_structural(a, b) {
                    assert!(commute_exact(a, b), "structural false positive: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn diagonal_sequence_detection() {
        let c1 = inst(Gate::Cnot, &[0, 1]);
        let rz = inst(Gate::Rz(0.8), &[1]);
        let c2 = inst(Gate::Cnot, &[0, 1]);
        assert!(sequence_is_diagonal(&[&c1, &rz, &c2], 2));
        // A bare CNOT is not diagonal.
        assert!(!sequence_is_diagonal(&[&c1], 2));
        // Width restriction.
        let c3 = inst(Gate::Cnot, &[1, 2]);
        assert!(!sequence_is_diagonal(&[&c1, &c3, &c1, &c3], 2));
    }

    #[test]
    fn diagonal_instruction_flag() {
        assert!(is_diagonal(&inst(Gate::Rzz(0.3), &[0, 1])));
        assert!(is_diagonal(&inst(Gate::T, &[0])));
        assert!(!is_diagonal(&inst(Gate::Cnot, &[0, 1])));
    }
}
