//! OpenQASM 2.0 subset parser and writer.
//!
//! The paper's toolchain consumes flattened quantum assembly produced by
//! ScaffCC/QISKit; this module provides the equivalent textual interface so
//! circuits can be exchanged with external front-ends. Supported constructs:
//!
//! * `OPENQASM 2.0;` header and `include` lines (ignored),
//! * a single or multiple `qreg` declarations (concatenated into one index
//!   space) and `creg` declarations (ignored),
//! * gate applications for the built-in gate set (`h`, `x`, `y`, `z`, `s`,
//!   `sdg`, `t`, `tdg`, `rx(θ)`, `ry(θ)`, `rz(θ)`, `u1(θ)`, `cx`, `cz`,
//!   `cu1(θ)`, `swap`, `iswap`, `rzz(θ)`, `ccx`, `cswap`, `id`),
//! * `barrier` and `measure` statements (parsed and ignored),
//! * `//` comments.
//!
//! Angle expressions may use `pi`, decimal literals, unary minus, `*`, `/` and
//! parentheses — enough for machine-generated QASM.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::collections::HashMap;
use std::fmt;

/// Error produced when parsing QASM text.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// 1-based line number where the error occurred.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for QasmError {}

fn err(line: usize, message: impl Into<String>) -> QasmError {
    QasmError {
        line,
        message: message.into(),
    }
}

/// Parses OpenQASM 2.0 text into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`QasmError`] describing the first offending line when the text
/// uses unsupported syntax, unknown gates or registers, or malformed operands.
pub fn parse(text: &str) -> Result<Circuit, QasmError> {
    let mut registers: Vec<(String, usize)> = Vec::new(); // (name, size), offsets are cumulative
    let mut reg_offset: HashMap<String, usize> = HashMap::new();
    let mut total_qubits = 0usize;
    let mut pending: Vec<(usize, String)> = Vec::new(); // statements after preprocessing

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // A line can contain several `;`-terminated statements.
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            pending.push((lineno + 1, stmt.to_string()));
        }
    }

    let mut circuit_statements: Vec<(usize, String)> = Vec::new();
    for (lineno, stmt) in pending {
        let lower = stmt.to_lowercase();
        if lower.starts_with("openqasm") || lower.starts_with("include") {
            continue;
        }
        if lower.starts_with("qreg") {
            let (name, size) = parse_reg_decl(&stmt, lineno)?;
            reg_offset.insert(name.clone(), total_qubits);
            registers.push((name, size));
            total_qubits += size;
            continue;
        }
        if lower.starts_with("creg") || lower.starts_with("barrier") || lower.starts_with("measure")
        {
            continue;
        }
        circuit_statements.push((lineno, stmt));
    }

    let mut circuit = Circuit::new(total_qubits);
    for (lineno, stmt) in circuit_statements {
        let (gate, qubits) = parse_gate_statement(&stmt, lineno, &reg_offset, &registers)?;
        for q in &qubits {
            if *q >= total_qubits {
                return Err(err(lineno, format!("qubit index {q} out of range")));
            }
        }
        circuit.push(gate, &qubits);
    }
    Ok(circuit)
}

fn parse_reg_decl(stmt: &str, line: usize) -> Result<(String, usize), QasmError> {
    // qreg name[size]
    let rest = stmt
        .strip_prefix("qreg")
        .or_else(|| stmt.strip_prefix("QREG"))
        .ok_or_else(|| err(line, "malformed register declaration"))?
        .trim();
    let open = rest
        .find('[')
        .ok_or_else(|| err(line, "missing '[' in qreg"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| err(line, "missing ']' in qreg"))?;
    let name = rest[..open].trim().to_string();
    let size: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(line, "register size is not an integer"))?;
    if name.is_empty() {
        return Err(err(line, "empty register name"));
    }
    Ok((name, size))
}

fn parse_gate_statement(
    stmt: &str,
    line: usize,
    reg_offset: &HashMap<String, usize>,
    registers: &[(String, usize)],
) -> Result<(Gate, Vec<usize>), QasmError> {
    // Split "name(params) operands" or "name operands".
    let (head, operands) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => {
            (stmt[..pos].trim(), stmt[pos..].trim())
        }
        _ => {
            // The gate name may contain '(' with spaces inside the params; find
            // the closing ')' first.
            if let Some(close) = stmt.find(')') {
                (stmt[..=close].trim(), stmt[close + 1..].trim())
            } else {
                match stmt.find(|c: char| c.is_whitespace()) {
                    Some(pos) => (stmt[..pos].trim(), stmt[pos..].trim()),
                    None => return Err(err(line, "statement has no operands")),
                }
            }
        }
    };

    let (name, params) = match head.find('(') {
        Some(open) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| err(line, "unbalanced parenthesis in gate parameters"))?;
            let name = head[..open].trim().to_lowercase();
            let params: Result<Vec<f64>, QasmError> = head[open + 1..close]
                .split(',')
                .map(|p| parse_angle(p.trim(), line))
                .collect();
            (name, params?)
        }
        None => (head.to_lowercase(), Vec::new()),
    };

    let qubits: Result<Vec<usize>, QasmError> = operands
        .split(',')
        .map(|op| parse_operand(op.trim(), line, reg_offset, registers))
        .collect();
    let qubits = qubits?;

    let need = |k: usize| -> Result<(), QasmError> {
        if params.len() != k {
            Err(err(line, format!("gate {name} expects {k} parameter(s)")))
        } else {
            Ok(())
        }
    };

    let gate = match name.as_str() {
        "id" | "i" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "rx" => {
            need(1)?;
            Gate::Rx(params[0])
        }
        "ry" => {
            need(1)?;
            Gate::Ry(params[0])
        }
        "rz" => {
            need(1)?;
            Gate::Rz(params[0])
        }
        "u1" | "p" | "phase" => {
            need(1)?;
            Gate::Phase(params[0])
        }
        "cx" | "cnot" => Gate::Cnot,
        "cz" => Gate::Cz,
        "cu1" | "cp" | "cphase" => {
            need(1)?;
            Gate::CPhase(params[0])
        }
        "swap" => Gate::Swap,
        "iswap" => Gate::ISwap,
        "sqiswap" => Gate::SqrtISwap,
        "rzz" => {
            need(1)?;
            Gate::Rzz(params[0])
        }
        "rxy" => {
            need(1)?;
            Gate::Rxy(params[0])
        }
        "ccx" | "toffoli" => Gate::Toffoli,
        "cswap" | "fredkin" => Gate::Fredkin,
        other => return Err(err(line, format!("unknown gate '{other}'"))),
    };

    if gate.arity() != qubits.len() {
        return Err(err(
            line,
            format!(
                "gate {} expects {} operand(s), got {}",
                gate.name(),
                gate.arity(),
                qubits.len()
            ),
        ));
    }
    Ok((gate, qubits))
}

fn parse_operand(
    op: &str,
    line: usize,
    reg_offset: &HashMap<String, usize>,
    registers: &[(String, usize)],
) -> Result<usize, QasmError> {
    if let Some(open) = op.find('[') {
        let close = op
            .find(']')
            .ok_or_else(|| err(line, format!("missing ']' in operand '{op}'")))?;
        let name = op[..open].trim();
        let idx: usize = op[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad qubit index in '{op}'")))?;
        let offset = reg_offset
            .get(name)
            .ok_or_else(|| err(line, format!("unknown register '{name}'")))?;
        let size = registers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(0);
        if idx >= size {
            return Err(err(
                line,
                format!("index {idx} out of range for register '{name}'"),
            ));
        }
        Ok(offset + idx)
    } else {
        // Bare integer operand (non-standard but convenient).
        op.parse()
            .map_err(|_| err(line, format!("cannot parse operand '{op}'")))
    }
}

/// Parses a simple angle expression: numbers, `pi`, unary minus, `*`, `/`.
fn parse_angle(expr: &str, line: usize) -> Result<f64, QasmError> {
    let cleaned = expr.replace(' ', "");
    if cleaned.is_empty() {
        return Err(err(line, "empty angle expression"));
    }
    parse_angle_expr(&cleaned).ok_or_else(|| err(line, format!("cannot parse angle '{expr}'")))
}

fn parse_angle_expr(s: &str) -> Option<f64> {
    // Handle unary minus.
    if let Some(rest) = s.strip_prefix('-') {
        return parse_angle_expr(rest).map(|v| -v);
    }
    if let Some(rest) = s.strip_prefix('+') {
        return parse_angle_expr(rest);
    }
    // Split on top-level '*' or '/' (no parentheses support needed beyond
    // full-expression wrapping).
    if let Some(inner) = s.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        return parse_angle_expr(inner);
    }
    for (i, c) in s.char_indices() {
        if c == '*' {
            let lhs = parse_angle_expr(&s[..i])?;
            let rhs = parse_angle_expr(&s[i + 1..])?;
            return Some(lhs * rhs);
        }
    }
    for (i, c) in s.char_indices() {
        if c == '/' {
            let lhs = parse_angle_expr(&s[..i])?;
            let rhs = parse_angle_expr(&s[i + 1..])?;
            return Some(lhs / rhs);
        }
    }
    if s.eq_ignore_ascii_case("pi") {
        return Some(std::f64::consts::PI);
    }
    s.parse().ok()
}

/// Serializes a circuit to OpenQASM 2.0 text.
///
/// Multi-qubit gates beyond the OpenQASM built-ins are emitted with this
/// crate's spellings (`iswap`, `rzz`, `rxy`) which [`parse`] understands.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.n_qubits()));
    for inst in circuit.instructions() {
        let operands: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
        let name = match inst.gate.parameter() {
            Some(p) => format!("{}({:.12})", inst.gate.name(), p),
            None => inst.gate.name().to_string(),
        };
        out.push_str(&format!("{} {};\n", name, operands.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn parse_simple_program() {
        let text = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];
            cx q[0],q[1];
            rz(pi/2) q[2];
            ccx q[0],q[1],q[2];
            measure q[0] -> c[0];
        "#;
        let c = parse(text).expect("parse ok");
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 4);
        assert_eq!(c.instructions()[0].gate, Gate::H);
        assert_eq!(c.instructions()[1].qubits, vec![0, 1]);
        match c.instructions()[2].gate {
            Gate::Rz(t) => assert!((t - PI / 2.0).abs() < 1e-12),
            ref g => panic!("expected rz, got {g:?}"),
        }
        assert_eq!(c.instructions()[3].gate, Gate::Toffoli);
    }

    #[test]
    fn parse_multiple_registers() {
        let text = "qreg a[2]; qreg b[2]; cx a[1],b[0];";
        let c = parse(text).unwrap();
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.instructions()[0].qubits, vec![1, 2]);
    }

    #[test]
    fn parse_angle_expressions() {
        let text = "qreg q[1]; rx(-pi/4) q[0]; rz(2*pi) q[0]; ry(0.5) q[0]; u1(-0.25) q[0];";
        let c = parse(text).unwrap();
        match c.instructions()[0].gate {
            Gate::Rx(t) => assert!((t + PI / 4.0).abs() < 1e-12),
            _ => panic!(),
        }
        match c.instructions()[1].gate {
            Gate::Rz(t) => assert!((t - 2.0 * PI).abs() < 1e-12),
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_gate_is_an_error() {
        let text = "qreg q[2]; frobnicate q[0];";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("unknown gate"));
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let text = "qreg q[2]; x q[5];";
        assert!(parse(text).is_err());
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let text = "qreg q[2]; cx q[0];";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("expects"));
    }

    #[test]
    fn roundtrip_through_writer() {
        let text = r#"
            qreg q[4];
            h q[0];
            rz(1.25) q[1];
            cx q[0],q[1];
            rzz(0.7) q[1],q[2];
            iswap q[2],q[3];
            swap q[0],q[3];
            t q[2];
        "#;
        let c = parse(text).unwrap();
        let emitted = write(&c);
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(c.len(), reparsed.len());
        assert_eq!(c.n_qubits(), reparsed.n_qubits());
        for (a, b) in c.instructions().iter().zip(reparsed.instructions()) {
            assert_eq!(a.qubits, b.qubits);
            assert_eq!(a.gate.name(), b.gate.name());
        }
        // Semantics are preserved exactly.
        assert!(c.unitary().approx_eq(&reparsed.unitary(), 1e-12));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "// a comment\n\nqreg q[1];\nx q[0]; // trailing\n";
        let c = parse(text).unwrap();
        assert_eq!(c.len(), 1);
    }
}
