//! Gate decompositions used by the compiler front-end.
//!
//! The paper's front-end "flattens" programs down to the 1- and 2-qubit virtual
//! ISA (§3.3); multi-qubit gates such as Toffoli are expanded here, and the
//! backend can further rewrite SWAP/CNOT sequences in terms of the physically
//! native iSWAP when emitting the hand-optimized baseline.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;
use std::f64::consts::FRAC_PI_2;

/// Decomposes a single instruction into 1- and 2-qubit gates.
///
/// Instructions that are already 1- or 2-qubit are returned unchanged (as a
/// single-element vector). `Toffoli` uses the standard 6-CNOT + T decomposition
/// and `Fredkin` is expressed as CNOT–Toffoli–CNOT, recursively flattened.
pub fn decompose_instruction(inst: &Instruction) -> Vec<Instruction> {
    match inst.gate {
        Gate::Toffoli => toffoli_decomposition(inst.qubits[0], inst.qubits[1], inst.qubits[2]),
        Gate::Fredkin => {
            let (c, a, b) = (inst.qubits[0], inst.qubits[1], inst.qubits[2]);
            let mut out = Vec::new();
            out.push(Instruction::new(Gate::Cnot, vec![b, a]));
            out.extend(toffoli_decomposition(c, a, b));
            out.push(Instruction::new(Gate::Cnot, vec![b, a]));
            out
        }
        _ => vec![inst.clone()],
    }
}

/// The textbook Toffoli decomposition into 6 CNOTs, 2 Hadamards and 7 T/T†.
fn toffoli_decomposition(c1: usize, c2: usize, t: usize) -> Vec<Instruction> {
    use Gate::*;
    vec![
        Instruction::new(H, vec![t]),
        Instruction::new(Cnot, vec![c2, t]),
        Instruction::new(Tdg, vec![t]),
        Instruction::new(Cnot, vec![c1, t]),
        Instruction::new(T, vec![t]),
        Instruction::new(Cnot, vec![c2, t]),
        Instruction::new(Tdg, vec![t]),
        Instruction::new(Cnot, vec![c1, t]),
        Instruction::new(T, vec![c2]),
        Instruction::new(T, vec![t]),
        Instruction::new(H, vec![t]),
        Instruction::new(Cnot, vec![c1, c2]),
        Instruction::new(T, vec![c1]),
        Instruction::new(Tdg, vec![c2]),
        Instruction::new(Cnot, vec![c1, c2]),
    ]
}

/// Flattens a circuit so that every instruction is a 1- or 2-qubit gate.
pub fn flatten(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for inst in circuit.instructions() {
        for low in decompose_instruction(inst) {
            out.push_instruction(low);
        }
    }
    out
}

/// Decomposes a SWAP into three alternating CNOTs (the "classical XOR trick"
/// discussed in §2.4 of the paper).
pub fn swap_as_cnots(a: usize, b: usize) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::Cnot, vec![a, b]),
        Instruction::new(Gate::Cnot, vec![b, a]),
        Instruction::new(Gate::Cnot, vec![a, b]),
    ]
}

/// Decomposes a CNOT into two iSWAPs plus single-qubit rotations — the native
/// construction on XY-coupled superconducting hardware (Appendix A).
///
/// The exact single-qubit dressing depends on conventions; this sequence is
/// used by the latency model to count pulse resources (2 iSWAP interactions and
/// 3 single-qubit layers), and the hand-optimization pass uses its structure.
pub fn cnot_via_iswaps(control: usize, target: usize) -> Vec<Instruction> {
    use Gate::*;
    vec![
        Instruction::new(Rz(-FRAC_PI_2), vec![control]),
        Instruction::new(Rx(FRAC_PI_2), vec![target]),
        Instruction::new(ISwap, vec![control, target]),
        Instruction::new(Rx(FRAC_PI_2), vec![control]),
        Instruction::new(ISwap, vec![control, target]),
        Instruction::new(Rz(FRAC_PI_2), vec![target]),
    ]
}

/// Decomposes a CNOT–Rz(θ)–CNOT diagonal block into a single [`Gate::Rzz`]
/// rotation (the inverse direction of §4.2's detection, useful for tests).
pub fn zz_block(control: usize, target: usize, theta: f64) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::Cnot, vec![control, target]),
        Instruction::new(Gate::Rz(theta), vec![target]),
        Instruction::new(Gate::Cnot, vec![control, target]),
    ]
}

/// Expresses a Hadamard as Rz(π/2)·Rx(π/2)·Rz(π/2) (up to global phase), the
/// form directly realizable with microwave drives.
pub fn hadamard_as_rotations(q: usize) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::Rz(FRAC_PI_2), vec![q]),
        Instruction::new(Gate::Rx(FRAC_PI_2), vec![q]),
        Instruction::new(Gate::Rz(FRAC_PI_2), vec![q]),
    ]
}

/// A controlled-phase gate CPhase(θ) as two CNOTs and three Rz rotations.
pub fn cphase_as_cnots(control: usize, target: usize, theta: f64) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::Rz(theta / 2.0), vec![control]),
        Instruction::new(Gate::Rz(theta / 2.0), vec![target]),
        Instruction::new(Gate::Cnot, vec![control, target]),
        Instruction::new(Gate::Rz(-theta / 2.0), vec![target]),
        Instruction::new(Gate::Cnot, vec![control, target]),
    ]
}

/// Multi-controlled X with `controls.len() - 1` clean ancillas, built from
/// Toffolis (used by the Grover oracle generators in the workload crate).
///
/// For zero controls this is an X, for one a CNOT, for two a Toffoli; beyond
/// that a V-chain of Toffolis through the supplied ancillas is produced.
///
/// # Panics
///
/// Panics if fewer than `controls.len().saturating_sub(2)` ancillas are given
/// or if qubit sets overlap.
pub fn multi_controlled_x(
    controls: &[usize],
    target: usize,
    ancillas: &[usize],
) -> Vec<Instruction> {
    match controls.len() {
        0 => vec![Instruction::new(Gate::X, vec![target])],
        1 => vec![Instruction::new(Gate::Cnot, vec![controls[0], target])],
        2 => vec![Instruction::new(
            Gate::Toffoli,
            vec![controls[0], controls[1], target],
        )],
        k => {
            assert!(
                ancillas.len() >= k - 2,
                "need at least {} ancillas for {} controls",
                k - 2,
                k
            );
            for c in controls {
                assert!(!ancillas.contains(c), "ancilla overlaps control");
                assert_ne!(*c, target, "control equals target");
            }
            let mut forward = Vec::new();
            forward.push(Instruction::new(
                Gate::Toffoli,
                vec![controls[0], controls[1], ancillas[0]],
            ));
            for i in 2..k - 1 {
                forward.push(Instruction::new(
                    Gate::Toffoli,
                    vec![controls[i], ancillas[i - 2], ancillas[i - 1]],
                ));
            }
            let mut seq = forward.clone();
            seq.push(Instruction::new(
                Gate::Toffoli,
                vec![controls[k - 1], ancillas[k - 3], target],
            ));
            // Uncompute the ancilla chain.
            for inst in forward.into_iter().rev() {
                seq.push(inst);
            }
            seq
        }
    }
}

/// The relative-phase "margolus"-style simplification is intentionally not
/// used: oracles must be exact because Grover iterations interleave them with
/// diffusion operators.
#[allow(dead_code)]
fn _doc_anchor() {}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_math::pauli;

    #[test]
    fn toffoli_decomposition_is_exact() {
        let mut c = Circuit::new(3);
        c.push(Gate::Toffoli, &[0, 1, 2]);
        let flat = flatten(&c);
        assert!(flat.instructions().iter().all(|i| i.qubits.len() <= 2));
        assert!(flat.unitary().approx_eq_up_to_phase(&c.unitary(), 1e-10));
        assert_eq!(flat.len(), 15);
    }

    #[test]
    fn fredkin_decomposition_is_exact() {
        let mut c = Circuit::new(3);
        c.push(Gate::Fredkin, &[0, 1, 2]);
        let flat = flatten(&c);
        assert!(flat.instructions().iter().all(|i| i.qubits.len() <= 2));
        assert!(flat.unitary().approx_eq_up_to_phase(&c.unitary(), 1e-10));
    }

    #[test]
    fn swap_as_three_cnots() {
        let mut c = Circuit::new(2);
        for inst in swap_as_cnots(0, 1) {
            c.push_instruction(inst);
        }
        assert!(c.unitary().approx_eq(&pauli::swap(), 1e-12));
    }

    #[test]
    fn zz_block_matches_rzz_gate() {
        let theta = 2.3;
        let mut c = Circuit::new(2);
        for inst in zz_block(0, 1, theta) {
            c.push_instruction(inst);
        }
        assert!(c.unitary().approx_eq(&pauli::zz_rotation(theta), 1e-12));
    }

    #[test]
    fn hadamard_rotation_decomposition() {
        let mut c = Circuit::new(1);
        for inst in hadamard_as_rotations(0) {
            c.push_instruction(inst);
        }
        assert!(c.unitary().approx_eq_up_to_phase(&pauli::hadamard(), 1e-12));
    }

    #[test]
    fn cphase_decomposition_matches() {
        let theta = 0.9;
        let mut c = Circuit::new(2);
        for inst in cphase_as_cnots(0, 1, theta) {
            c.push_instruction(inst);
        }
        let want = Gate::CPhase(theta).matrix();
        assert!(c.unitary().approx_eq_up_to_phase(&want, 1e-10));
    }

    #[test]
    fn multi_controlled_x_small_cases() {
        // 3 controls, 1 ancilla.
        let mut c = Circuit::new(5);
        for inst in multi_controlled_x(&[0, 1, 2], 4, &[3]) {
            c.push_instruction(inst);
        }
        let flat = flatten(&c);
        let u = flat.unitary();
        // |1110 a=0> (bits q0..q4 = 1,1,1,0,0 -> index 0b11100 = 28) should map
        // to |11101> = 29 (target flipped), ancilla returned to 0.
        assert!((u[(29, 28)].abs() - 1.0).abs() < 1e-9);
        // A state with one control off maps to itself.
        assert!((u[(0b10100, 0b10100)].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cnot_via_iswaps_uses_two_iswaps() {
        let seq = cnot_via_iswaps(0, 1);
        let iswaps = seq.iter().filter(|i| i.gate == Gate::ISwap).count();
        assert_eq!(iswaps, 2);
        assert!(seq.iter().all(|i| i.qubits.len() <= 2));
    }
}
