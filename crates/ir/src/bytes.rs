//! Byte-stream decoding for the workspace's injective encodings.
//!
//! Cache keys, backend fingerprints, and (since the persistent cache tier)
//! on-disk snapshot records are all built from the `encode_into` family of
//! byte encodings: little-endian integers, raw `f64::to_bits` patterns, and
//! length-prefixed sequences. [`ByteCursor`] is the shared reader those
//! decoders are written against — every read is bounds-checked and reports a
//! typed [`DecodeError`] instead of panicking, so a truncated or corrupted
//! snapshot can never take a service down.

use std::fmt;

/// A failed decode: what was being read and where the stream gave out or
/// stopped making sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What the decoder was trying to read (e.g. `"gate variant tag"`).
    pub what: &'static str,
    /// Byte offset at which the read was attempted.
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed byte stream: failed to decode {} at offset {}",
            self.what, self.offset
        )
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked forward-only reader over a byte slice.
///
/// ```
/// use qcc_ir::bytes::ByteCursor;
///
/// let mut buf = Vec::new();
/// buf.extend_from_slice(&7u64.to_le_bytes());
/// buf.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
/// let mut cur = ByteCursor::new(&buf);
/// assert_eq!(cur.u64("count").unwrap(), 7);
/// assert_eq!(cur.f64("value").unwrap(), 1.5);
/// assert!(cur.is_empty());
/// assert!(cur.u8("past the end").is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ByteCursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> ByteCursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, offset: 0 }
    }

    /// Current byte offset from the start of the stream.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    /// Whether the stream is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn fail(&self, what: &'static str) -> DecodeError {
        DecodeError {
            what,
            offset: self.offset,
        }
    }

    /// Reads `n` raw bytes. `what` labels the read in the error.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.fail(what));
        }
        let out = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.bytes(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `u64` and narrows it to `usize`, rejecting values
    /// that do not fit (foreign 32-bit snapshots with absurd lengths must
    /// error, not wrap).
    pub fn len(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let start = self.offset;
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| DecodeError {
            what,
            offset: start,
        })
    }

    /// Reads an `f64` stored as its raw IEEE-754 bit pattern
    /// (`f64::from_bits`, bit-exact round-trip with `f64::to_bits`).
    pub fn f64(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_sequential_and_bounds_checked() {
        let mut buf = vec![0x2a];
        buf.extend_from_slice(&300u32.to_le_bytes());
        buf.extend_from_slice(&(u64::MAX).to_le_bytes());
        let mut cur = ByteCursor::new(&buf);
        assert_eq!(cur.u8("tag").unwrap(), 0x2a);
        assert_eq!(cur.u32("mid").unwrap(), 300);
        assert_eq!(cur.u64("tail").unwrap(), u64::MAX);
        assert!(cur.is_empty());
        let err = cur.u8("eof").unwrap_err();
        assert_eq!(err.what, "eof");
        assert_eq!(err.offset, buf.len());
        assert!(err.to_string().contains("eof"));
    }

    #[test]
    fn f64_round_trips_bit_patterns() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 1e-300] {
            let buf = v.to_bits().to_le_bytes();
            let mut cur = ByteCursor::new(&buf);
            assert_eq!(cur.f64("v").unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_reads_report_offset() {
        let buf = [1u8, 2, 3];
        let mut cur = ByteCursor::new(&buf);
        assert!(cur.u64("needs eight").is_err());
        // A failed read consumes nothing.
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur.bytes(3, "all").unwrap(), &[1, 2, 3]);
    }
}
