//! The logical gate set.
//!
//! This is the "rich virtual ISA" of standard gate-based quantum compilation
//! (§2.2 of the paper): single-qubit rotations and Cliffords plus the common
//! two- and three-qubit gates, each with an exact unitary matrix. The compiler
//! front-end flattens everything down to 1- and 2-qubit gates before analysis.

use crate::bytes::{ByteCursor, DecodeError};
use qcc_math::{pauli, CMatrix, C64};
use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use std::fmt;

/// How a gate acts on one particular qubit, used for fast per-qubit
/// commutation checks (the "commutation group" machinery of §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AxisAction {
    /// No effect on this qubit (identity factor).
    Identity,
    /// Diagonal in the computational basis (Z-like): Rz, Z, S, T, the control
    /// of a CNOT/CZ, either qubit of a ZZ rotation.
    Diagonal,
    /// X-like action: Rx, X, the target of a CNOT.
    XAxis,
    /// Y-like action: Ry, Y.
    YAxis,
    /// Anything else (Hadamard, SWAP/iSWAP factors, general rotations).
    General,
}

impl AxisAction {
    /// Whether two single-qubit actions commute.
    ///
    /// Identity commutes with everything; equal axes commute; everything else
    /// is treated conservatively as non-commuting.
    pub fn commutes_with(self, other: AxisAction) -> bool {
        use AxisAction::*;
        matches!(
            (self, other),
            (Identity, _) | (_, Identity) | (Diagonal, Diagonal) | (XAxis, XAxis) | (YAxis, YAxis)
        )
    }
}

/// A logical quantum gate (without target qubits).
///
/// The arity of the gate is fixed by the variant; target qubits live in
/// [`crate::circuit::Instruction`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Identity (used for the virtual GDG root).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase gate diag(1, e^{iφ}).
    Phase(f64),
    /// Controlled-NOT (control is the first qubit of the instruction).
    Cnot,
    /// Controlled-Z.
    Cz,
    /// Controlled phase diag(1,1,1,e^{iφ}).
    CPhase(f64),
    /// SWAP.
    Swap,
    /// iSWAP — the native two-qubit gate of XY-coupled architectures.
    ISwap,
    /// √iSWAP.
    SqrtISwap,
    /// ZZ interaction rotation exp(-i θ/2 Z⊗Z) — the diagonal unitary
    /// implemented by a CNOT–Rz(θ)–CNOT block (§4.2).
    Rzz(f64),
    /// XX+YY interaction rotation exp(-i θ/2 (XX+YY)/2).
    Rxy(f64),
    /// Toffoli (CCX); flattened by the front-end.
    Toffoli,
    /// Fredkin (CSWAP); flattened by the front-end.
    Fredkin,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        use Gate::*;
        match self {
            I | X | Y | Z | H | S | Sdg | T | Tdg | Rx(_) | Ry(_) | Rz(_) | Phase(_) => 1,
            Cnot | Cz | CPhase(_) | Swap | ISwap | SqrtISwap | Rzz(_) | Rxy(_) => 2,
            Toffoli | Fredkin => 3,
        }
    }

    /// Canonical lower-case name (matches the QASM spelling where one exists).
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            I => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            Phase(_) => "u1",
            Cnot => "cx",
            Cz => "cz",
            CPhase(_) => "cu1",
            Swap => "swap",
            ISwap => "iswap",
            SqrtISwap => "sqiswap",
            Rzz(_) => "rzz",
            Rxy(_) => "rxy",
            Toffoli => "ccx",
            Fredkin => "cswap",
        }
    }

    /// The gate's rotation / phase parameter, when it has one.
    pub fn parameter(&self) -> Option<f64> {
        use Gate::*;
        match self {
            Rx(t) | Ry(t) | Rz(t) | Phase(t) | CPhase(t) | Rzz(t) | Rxy(t) => Some(*t),
            _ => None,
        }
    }

    /// Stable one-byte discriminant used by [`encode_into`](Self::encode_into).
    fn variant_tag(&self) -> u8 {
        use Gate::*;
        match self {
            I => 0,
            X => 1,
            Y => 2,
            Z => 3,
            H => 4,
            S => 5,
            Sdg => 6,
            T => 7,
            Tdg => 8,
            Rx(_) => 9,
            Ry(_) => 10,
            Rz(_) => 11,
            Phase(_) => 12,
            Cnot => 13,
            Cz => 14,
            CPhase(_) => 15,
            Swap => 16,
            ISwap => 17,
            SqrtISwap => 18,
            Rzz(_) => 19,
            Rxy(_) => 20,
            Toffoli => 21,
            Fredkin => 22,
        }
    }

    /// Appends an injective byte encoding of the gate to `out`: a one-byte
    /// variant tag, followed by the raw IEEE-754 bit pattern of the parameter
    /// (`f64::to_bits`, little-endian) for parameterized gates. Angles that
    /// differ in any bit therefore never collide — unlike a fixed-precision
    /// textual rendering — and the encoding is cheaper to build than any
    /// `format!`-based key.
    ///
    /// The tag assignment is part of the workspace's **persistent** snapshot
    /// format (cache keys only ever lived in memory; snapshots survive
    /// restarts): existing tags must never be renumbered — new gates append
    /// new tags — and [`decode_from`](Self::decode_from) must stay its exact
    /// inverse.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.variant_tag());
        if let Some(t) = self.parameter() {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
    }

    /// Decodes one gate from a byte stream written by
    /// [`encode_into`](Self::encode_into) — the exact inverse, bit-for-bit on
    /// rotation parameters. Unknown variant tags (a snapshot from a newer
    /// format) and truncated parameters are reported as [`DecodeError`]s.
    pub fn decode_from(cursor: &mut ByteCursor<'_>) -> Result<Self, DecodeError> {
        use Gate::*;
        let start = cursor.offset();
        let tag = cursor.u8("gate variant tag")?;
        let gate = match tag {
            0 => I,
            1 => X,
            2 => Y,
            3 => Z,
            4 => H,
            5 => S,
            6 => Sdg,
            7 => T,
            8 => Tdg,
            9 => Rx(cursor.f64("rx angle")?),
            10 => Ry(cursor.f64("ry angle")?),
            11 => Rz(cursor.f64("rz angle")?),
            12 => Phase(cursor.f64("phase angle")?),
            13 => Cnot,
            14 => Cz,
            15 => CPhase(cursor.f64("cphase angle")?),
            16 => Swap,
            17 => ISwap,
            18 => SqrtISwap,
            19 => Rzz(cursor.f64("rzz angle")?),
            20 => Rxy(cursor.f64("rxy angle")?),
            21 => Toffoli,
            22 => Fredkin,
            _ => {
                return Err(DecodeError {
                    what: "gate variant tag",
                    offset: start,
                })
            }
        };
        Ok(gate)
    }

    /// Exact unitary matrix of the gate (dimension `2^arity`).
    pub fn matrix(&self) -> CMatrix {
        use Gate::*;
        match self {
            I => CMatrix::identity(2),
            X => pauli::sigma_x(),
            Y => pauli::sigma_y(),
            Z => pauli::sigma_z(),
            H => pauli::hadamard(),
            S => pauli::phase(FRAC_PI_2),
            Sdg => pauli::phase(-FRAC_PI_2),
            T => pauli::phase(FRAC_PI_4),
            Tdg => pauli::phase(-FRAC_PI_4),
            Rx(t) => pauli::rx(*t),
            Ry(t) => pauli::ry(*t),
            Rz(t) => pauli::rz(*t),
            Phase(t) => pauli::phase(*t),
            Cnot => pauli::cnot(),
            Cz => pauli::cz(),
            CPhase(t) => CMatrix::diag(&[C64::one(), C64::one(), C64::one(), C64::cis(*t)]),
            Swap => pauli::swap(),
            ISwap => pauli::iswap(),
            SqrtISwap => pauli::sqrt_iswap(),
            Rzz(t) => pauli::zz_rotation(*t),
            Rxy(t) => pauli::xy_rotation(*t),
            Toffoli => {
                let mut m = CMatrix::identity(8);
                m[(6, 6)] = C64::zero();
                m[(7, 7)] = C64::zero();
                m[(6, 7)] = C64::one();
                m[(7, 6)] = C64::one();
                m
            }
            Fredkin => {
                let mut m = CMatrix::identity(8);
                m[(5, 5)] = C64::zero();
                m[(6, 6)] = C64::zero();
                m[(5, 6)] = C64::one();
                m[(6, 5)] = C64::one();
                m
            }
        }
    }

    /// The inverse gate (`G†`).
    pub fn dagger(&self) -> Gate {
        use Gate::*;
        match self {
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            Phase(t) => Phase(-t),
            CPhase(t) => CPhase(-t),
            Rzz(t) => Rzz(-t),
            Rxy(t) => Rxy(-t),
            // iSWAP = exp(+iπ(XX+YY)/4) = Rxy(-π), hence iSWAP† = Rxy(+π).
            ISwap => Rxy(PI),
            SqrtISwap => Rxy(FRAC_PI_2),
            other => *other,
        }
    }

    /// Whether the gate's matrix is diagonal in the computational basis.
    ///
    /// Diagonal gates are the backbone of the commutativity detection pass
    /// (§4.2): any two diagonal unitaries commute.
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        matches!(
            self,
            I | Z | S | Sdg | T | Tdg | Rz(_) | Phase(_) | Cz | CPhase(_) | Rzz(_)
        )
    }

    /// Whether this is a parameter-free Clifford gate (useful for tests).
    pub fn is_clifford(&self) -> bool {
        use Gate::*;
        matches!(self, I | X | Y | Z | H | S | Sdg | Cnot | Cz | Swap | ISwap)
    }

    /// How the gate acts on its `position`-th qubit (0-based within the gate).
    ///
    /// # Panics
    ///
    /// Panics if `position >= arity()`.
    pub fn axis_on(&self, position: usize) -> AxisAction {
        use AxisAction::*;
        use Gate::*;
        assert!(position < self.arity(), "axis_on position out of range");
        match self {
            I => Identity,
            X => XAxis,
            Y => YAxis,
            Z | S | Sdg | T | Tdg | Rz(_) | Phase(_) => Diagonal,
            Rx(_) => XAxis,
            Ry(_) => YAxis,
            H => General,
            Cnot => {
                if position == 0 {
                    Diagonal
                } else {
                    XAxis
                }
            }
            Cz | CPhase(_) | Rzz(_) => Diagonal,
            Swap | ISwap | SqrtISwap | Rxy(_) => General,
            Toffoli => {
                if position < 2 {
                    Diagonal
                } else {
                    XAxis
                }
            }
            Fredkin => {
                if position == 0 {
                    Diagonal
                } else {
                    General
                }
            }
        }
    }

    /// Rotation angle "content" of the gate, used by the latency model: for a
    /// rotation gate this is the principal rotation angle in `[0, π]`; for
    /// fixed gates it is the equivalent angle.
    pub fn rotation_angle(&self) -> f64 {
        use Gate::*;
        fn principal(theta: f64) -> f64 {
            let t = theta.rem_euclid(2.0 * PI);
            if t > PI {
                2.0 * PI - t
            } else {
                t
            }
        }
        match self {
            I => 0.0,
            X | Y | Z | H => PI,
            S | Sdg => FRAC_PI_2,
            T | Tdg => FRAC_PI_4,
            Rx(t) | Ry(t) | Rz(t) | Phase(t) => principal(*t),
            Cnot | Cz => PI,
            CPhase(t) | Rzz(t) | Rxy(t) => principal(*t),
            Swap | ISwap => PI,
            SqrtISwap => FRAC_PI_2,
            Toffoli | Fredkin => PI,
        }
    }

    /// Whether the gate is (exactly) the identity operation.
    pub fn is_identity(&self) -> bool {
        match self {
            Gate::I => true,
            Gate::Rx(t)
            | Gate::Ry(t)
            | Gate::Rz(t)
            | Gate::Phase(t)
            | Gate::Rzz(t)
            | Gate::Rxy(t)
            | Gate::CPhase(t) => *t == 0.0,
            _ => false,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.parameter() {
            Some(p) => write!(f, "{}({:.4})", self.name(), p),
            None => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_matrix_dimensions_agree() {
        let gates = [
            Gate::X,
            Gate::H,
            Gate::Rz(0.3),
            Gate::Cnot,
            Gate::Swap,
            Gate::ISwap,
            Gate::Rzz(1.0),
            Gate::Toffoli,
            Gate::Fredkin,
        ];
        for g in gates {
            let m = g.matrix();
            assert_eq!(m.rows(), 1 << g.arity(), "{g}");
            assert!(m.is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn dagger_inverts() {
        let gates = [
            Gate::S,
            Gate::T,
            Gate::Rx(0.7),
            Gate::Rz(-2.0),
            Gate::CPhase(0.9),
            Gate::Rzz(1.3),
            Gate::ISwap,
            Gate::SqrtISwap,
            Gate::H,
            Gate::Cnot,
        ];
        for g in gates {
            let prod = g.matrix().matmul(&g.dagger().matrix());
            assert!(prod.is_identity_up_to_phase(1e-10), "{g} dagger failed");
        }
    }

    #[test]
    fn diagonal_flag_matches_matrix() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Rz(0.3),
            Gate::Rx(0.3),
            Gate::Cnot,
            Gate::Cz,
            Gate::CPhase(0.4),
            Gate::Rzz(0.8),
            Gate::Swap,
            Gate::ISwap,
        ];
        for g in gates {
            assert_eq!(
                g.is_diagonal(),
                g.matrix().is_diagonal(1e-12),
                "diagonal flag wrong for {g}"
            );
        }
    }

    #[test]
    fn toffoli_flips_target_only_when_controls_set() {
        let m = Gate::Toffoli.matrix();
        // |110> -> |111>
        assert!(m[(7, 6)].approx_eq(C64::one(), 1e-14));
        // |010> stays
        assert!(m[(2, 2)].approx_eq(C64::one(), 1e-14));
        assert!(m.is_unitary(1e-13));
    }

    #[test]
    fn fredkin_swaps_targets_when_control_set() {
        let m = Gate::Fredkin.matrix();
        // |101> -> |110>
        assert!(m[(6, 5)].approx_eq(C64::one(), 1e-14));
        // |001> stays (control 0)
        assert!(m[(1, 1)].approx_eq(C64::one(), 1e-14));
    }

    #[test]
    fn cnot_axis_actions() {
        assert_eq!(Gate::Cnot.axis_on(0), AxisAction::Diagonal);
        assert_eq!(Gate::Cnot.axis_on(1), AxisAction::XAxis);
        assert_eq!(Gate::Rz(0.3).axis_on(0), AxisAction::Diagonal);
        assert_eq!(Gate::H.axis_on(0), AxisAction::General);
        assert_eq!(Gate::Rzz(0.5).axis_on(1), AxisAction::Diagonal);
    }

    #[test]
    fn axis_commutation_rules() {
        use AxisAction::*;
        assert!(Diagonal.commutes_with(Diagonal));
        assert!(XAxis.commutes_with(XAxis));
        assert!(!Diagonal.commutes_with(XAxis));
        assert!(!General.commutes_with(General));
        assert!(Identity.commutes_with(General));
    }

    #[test]
    fn rotation_angles_are_principal() {
        assert!((Gate::Rz(5.67).rotation_angle() - (2.0 * PI - 5.67)).abs() < 1e-12);
        assert!((Gate::Rx(1.26).rotation_angle() - 1.26).abs() < 1e-12);
        assert!((Gate::H.rotation_angle() - PI).abs() < 1e-12);
        assert!((Gate::Rz(-0.3).rotation_angle() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn identity_detection() {
        assert!(Gate::I.is_identity());
        assert!(Gate::Rz(0.0).is_identity());
        assert!(!Gate::Rz(0.1).is_identity());
        assert!(!Gate::X.is_identity());
    }

    #[test]
    fn sqrt_iswap_squares_to_iswap() {
        let s = Gate::SqrtISwap.matrix();
        assert!(s.matmul(&s).approx_eq(&Gate::ISwap.matrix(), 1e-12));
    }

    #[test]
    fn display_includes_parameter() {
        assert_eq!(format!("{}", Gate::Cnot), "cx");
        assert!(format!("{}", Gate::Rz(1.5)).starts_with("rz(1.5"));
    }
}
