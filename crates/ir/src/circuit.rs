//! Quantum circuits: ordered lists of gate instructions on named qubits.

use crate::bytes::{ByteCursor, DecodeError};
use crate::gate::Gate;
use qcc_math::CMatrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A gate applied to specific qubits.
///
/// Qubits are dense indices `0..n_qubits` of the owning [`Circuit`]. The
/// ordering of `qubits` matters (e.g. control first for CNOT).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// The logical gate.
    pub gate: Gate,
    /// Target qubits, in gate-defined order.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates an instruction, checking the arity.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate arity or if a
    /// qubit repeats.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            gate.arity(),
            qubits.len(),
            "gate {gate} expects {} qubits, got {}",
            gate.arity(),
            qubits.len()
        );
        for (i, q) in qubits.iter().enumerate() {
            assert!(
                !qubits[..i].contains(q),
                "instruction {gate} has duplicate qubit {q}"
            );
        }
        Self { gate, qubits }
    }

    /// Whether the instruction touches qubit `q`.
    pub fn acts_on(&self, q: usize) -> bool {
        self.qubits.contains(&q)
    }

    /// Position of qubit `q` within the instruction's operand list.
    pub fn position_of(&self, q: usize) -> Option<usize> {
        self.qubits.iter().position(|&x| x == q)
    }

    /// Qubits shared with another instruction.
    pub fn shared_qubits(&self, other: &Instruction) -> Vec<usize> {
        self.qubits
            .iter()
            .copied()
            .filter(|q| other.acts_on(*q))
            .collect()
    }

    /// The unitary of this instruction embedded into an `n`-qubit space.
    pub fn embedded_matrix(&self, n: usize) -> CMatrix {
        self.gate.matrix().embed(n, &self.qubits)
    }

    /// Appends an injective byte encoding of the instruction to `out`: the
    /// gate's encoding ([`Gate::encode_into`]) followed by the operand count
    /// and each qubit index, little-endian. Concatenating instruction
    /// encodings yields a prefix-free stream, so two gate *sequences* encode
    /// identically only when they are identical — the property cache keys and
    /// circuit fingerprints need.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.gate.encode_into(out);
        out.push(self.qubits.len() as u8);
        for &q in &self.qubits {
            out.extend_from_slice(&(q as u64).to_le_bytes());
        }
    }

    /// Decodes one instruction from a byte stream written by
    /// [`encode_into`](Self::encode_into) — the exact inverse. The arity and
    /// duplicate-qubit invariants enforced (by panic) in
    /// [`Instruction::new`] are re-checked here as [`DecodeError`]s, so a
    /// corrupted snapshot degrades to a failed load, never a crash or an
    /// ill-formed instruction.
    pub fn decode_from(cursor: &mut ByteCursor<'_>) -> Result<Self, DecodeError> {
        let gate = Gate::decode_from(cursor)?;
        let count_offset = cursor.offset();
        let count = cursor.u8("instruction qubit count")? as usize;
        if count != gate.arity() {
            return Err(DecodeError {
                what: "instruction qubit count (arity mismatch)",
                offset: count_offset,
            });
        }
        let mut qubits = Vec::with_capacity(count);
        for _ in 0..count {
            let q_offset = cursor.offset();
            let q = cursor.u64("instruction qubit index")?;
            let q = usize::try_from(q).map_err(|_| DecodeError {
                what: "instruction qubit index (out of range)",
                offset: q_offset,
            })?;
            if qubits.contains(&q) {
                return Err(DecodeError {
                    what: "instruction qubit index (duplicate)",
                    offset: q_offset,
                });
            }
            qubits.push(q);
        }
        Ok(Self { gate, qubits })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.gate)?;
        write!(f, " ")?;
        let qs: Vec<String> = self.qubits.iter().map(|q| format!("q{q}")).collect();
        write!(f, "{}", qs.join(","))
    }
}

/// A quantum circuit over `n_qubits` qubits.
///
/// # Examples
///
/// ```
/// use qcc_ir::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cnot, &[0, 1]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.depth(), 2);
/// assert_eq!(c.two_qubit_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Circuit {
    n_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when the circuit contains no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range or the arity is wrong.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        for q in qubits {
            assert!(*q < self.n_qubits, "qubit {q} out of range");
        }
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
        self
    }

    /// Appends an existing instruction.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn push_instruction(&mut self, inst: Instruction) -> &mut Self {
        for q in &inst.qubits {
            assert!(*q < self.n_qubits, "qubit {q} out of range");
        }
        self.instructions.push(inst);
        self
    }

    /// Appends every instruction of `other` (which must have the same width).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.n_qubits, other.n_qubits, "circuit width mismatch");
        self.instructions.extend(other.instructions.iter().cloned());
        self
    }

    /// Appends `other` with its qubit `i` mapped to `mapping[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is too short or out of range.
    pub fn extend_mapped(&mut self, other: &Circuit, mapping: &[usize]) -> &mut Self {
        assert!(mapping.len() >= other.n_qubits, "mapping too short");
        for inst in other.instructions() {
            let qubits: Vec<usize> = inst.qubits.iter().map(|&q| mapping[q]).collect();
            self.push(inst.gate, &qubits);
        }
        self
    }

    /// The inverse circuit (reversed order, each gate daggered).
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n_qubits);
        for inst in self.instructions.iter().rev() {
            inv.push(inst.gate.dagger(), &inst.qubits);
        }
        inv
    }

    /// Circuit depth counting every instruction as one time step.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for inst in &self.instructions {
            let start = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
            let end = start + 1;
            for &q in &inst.qubits {
                level[q] = end;
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Weighted depth (critical path) where each instruction's duration is
    /// given by `cost`.
    pub fn weighted_depth<F: Fn(&Instruction) -> f64>(&self, cost: F) -> f64 {
        let mut level = vec![0.0f64; self.n_qubits];
        let mut depth = 0.0f64;
        for inst in &self.instructions {
            let start = inst.qubits.iter().map(|&q| level[q]).fold(0.0f64, f64::max);
            let end = start + cost(inst);
            for &q in &inst.qubits {
                level[q] = end;
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Total number of two-qubit instructions.
    pub fn two_qubit_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.qubits.len() == 2)
            .count()
    }

    /// Histogram of gate names.
    pub fn gate_counts(&self) -> HashMap<&'static str, usize> {
        let mut counts = HashMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// The qubit-interaction graph: one vertex per qubit, edge weight = number
    /// of two-qubit instructions between the pair. Used by the mapper.
    pub fn interaction_edges(&self) -> Vec<(usize, usize, f64)> {
        let mut weights: HashMap<(usize, usize), f64> = HashMap::new();
        for inst in &self.instructions {
            if inst.qubits.len() == 2 {
                let (a, b) = (
                    inst.qubits[0].min(inst.qubits[1]),
                    inst.qubits[0].max(inst.qubits[1]),
                );
                *weights.entry((a, b)).or_insert(0.0) += 1.0;
            }
        }
        weights.into_iter().map(|((a, b), w)| (a, b, w)).collect()
    }

    /// Builds the full `2^n × 2^n` unitary of the circuit.
    ///
    /// Only intended for small circuits (n ≤ 12 or so); larger requests panic
    /// to avoid accidental exponential blow-ups.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than 12 qubits.
    pub fn unitary(&self) -> CMatrix {
        assert!(
            self.n_qubits <= 12,
            "refusing to build a dense unitary for {} qubits",
            self.n_qubits
        );
        let dim = 1usize << self.n_qubits;
        let mut u = CMatrix::identity(dim);
        for inst in &self.instructions {
            let g = inst.embedded_matrix(self.n_qubits);
            u = g.matmul(&u);
        }
        u
    }

    /// Returns a copy with any `is_identity` gates removed.
    pub fn without_identities(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for inst in &self.instructions {
            if !inst.gate.is_identity() {
                c.push_instruction(inst.clone());
            }
        }
        c
    }

    /// The list of qubits that are actually touched by at least one gate.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.n_qubits];
        for inst in &self.instructions {
            for &q in &inst.qubits {
                used[q] = true;
            }
        }
        (0..self.n_qubits).filter(|&q| used[q]).collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Circuit({} qubits, {} gates)", self.n_qubits, self.len())?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

impl FromIterator<Instruction> for Circuit {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        let insts: Vec<Instruction> = iter.into_iter().collect();
        let n = insts
            .iter()
            .flat_map(|i| i.qubits.iter().copied())
            .max()
            .map_or(0, |m| m + 1);
        let mut c = Circuit::new(n);
        for i in insts {
            c.push_instruction(i);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_math::pauli;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cnot, &[0, 1]);
        c
    }

    #[test]
    fn instruction_encoding_is_injective() {
        let encode = |insts: &[Instruction]| {
            let mut key = Vec::new();
            for inst in insts {
                inst.encode_into(&mut key);
            }
            key
        };
        // Gate order matters (X·H vs H·X), nearby angles differ bit-wise, and
        // the same gate on different qubits keys separately.
        let xh = [
            Instruction::new(Gate::X, vec![0]),
            Instruction::new(Gate::H, vec![0]),
        ];
        let hx = [
            Instruction::new(Gate::H, vec![0]),
            Instruction::new(Gate::X, vec![0]),
        ];
        assert_ne!(encode(&xh), encode(&hx));
        assert_ne!(
            encode(&[Instruction::new(Gate::Rz(0.40001), vec![0])]),
            encode(&[Instruction::new(Gate::Rz(0.40004), vec![0])])
        );
        assert_ne!(
            encode(&[Instruction::new(Gate::Rz(0.4), vec![0])]),
            encode(&[Instruction::new(Gate::Rx(0.4), vec![0])])
        );
        assert_ne!(
            encode(&[Instruction::new(Gate::Cnot, vec![0, 1])]),
            encode(&[Instruction::new(Gate::Cnot, vec![1, 0])])
        );
        // Identical sequences encode identically.
        assert_eq!(encode(&xh), encode(&xh));
    }

    #[test]
    fn instruction_decoding_inverts_encoding() {
        let all = [
            Instruction::new(Gate::I, vec![3]),
            Instruction::new(Gate::X, vec![0]),
            Instruction::new(Gate::Y, vec![1]),
            Instruction::new(Gate::Z, vec![2]),
            Instruction::new(Gate::H, vec![0]),
            Instruction::new(Gate::S, vec![4]),
            Instruction::new(Gate::Sdg, vec![5]),
            Instruction::new(Gate::T, vec![6]),
            Instruction::new(Gate::Tdg, vec![7]),
            Instruction::new(Gate::Rx(0.25), vec![0]),
            Instruction::new(Gate::Ry(-1.5), vec![1]),
            Instruction::new(Gate::Rz(1e-300), vec![2]),
            Instruction::new(Gate::Phase(-0.0), vec![3]),
            Instruction::new(Gate::Cnot, vec![0, 1]),
            Instruction::new(Gate::Cz, vec![2, 3]),
            Instruction::new(Gate::CPhase(0.125), vec![1, 0]),
            Instruction::new(Gate::Swap, vec![4, 2]),
            Instruction::new(Gate::ISwap, vec![0, 5]),
            Instruction::new(Gate::SqrtISwap, vec![6, 1]),
            Instruction::new(Gate::Rzz(2.5), vec![3, 0]),
            Instruction::new(Gate::Rxy(-0.75), vec![0, 2]),
            Instruction::new(Gate::Toffoli, vec![0, 1, 2]),
            Instruction::new(Gate::Fredkin, vec![2, 1, 0]),
        ];
        let mut buf = Vec::new();
        for inst in &all {
            inst.encode_into(&mut buf);
        }
        let mut cur = ByteCursor::new(&buf);
        for inst in &all {
            let decoded = Instruction::decode_from(&mut cur).expect("round trip");
            assert_eq!(&decoded, inst);
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn instruction_decoding_rejects_malformed_streams() {
        // Unknown gate tag.
        let mut cur = ByteCursor::new(&[0xff]);
        assert!(Instruction::decode_from(&mut cur).is_err());
        // Arity mismatch: CNOT (tag 13) claiming one operand.
        let mut buf = vec![13u8, 1];
        buf.extend_from_slice(&0u64.to_le_bytes());
        let mut cur = ByteCursor::new(&buf);
        assert!(Instruction::decode_from(&mut cur).is_err());
        // Duplicate operand: CNOT on (q1, q1).
        let mut buf = vec![13u8, 2];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        let mut cur = ByteCursor::new(&buf);
        let err = Instruction::decode_from(&mut cur).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        // Every strict prefix of a valid encoding is rejected.
        let mut full = Vec::new();
        Instruction::new(Gate::Rzz(0.5), vec![0, 3]).encode_into(&mut full);
        for cut in 0..full.len() {
            let mut cur = ByteCursor::new(&full[..cut]);
            assert!(Instruction::decode_from(&mut cur).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn push_and_counts() {
        let c = bell_circuit();
        assert_eq!(c.len(), 2);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.gate_counts()["h"], 1);
        assert_eq!(c.active_qubits(), vec![0, 1]);
    }

    #[test]
    fn depth_accounts_for_parallel_gates() {
        let mut c = Circuit::new(4);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        c.push(Gate::H, &[2]);
        c.push(Gate::H, &[3]);
        assert_eq!(c.depth(), 1);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Cnot, &[2, 3]);
        assert_eq!(c.depth(), 2);
        c.push(Gate::Cnot, &[1, 2]);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn weighted_depth_uses_costs() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Cnot, &[0, 1]);
        let d = c.weighted_depth(|i| if i.qubits.len() == 2 { 10.0 } else { 1.0 });
        assert!((d - 11.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_of_bell_circuit() {
        let c = bell_circuit();
        let u = c.unitary();
        // Column 0 should be the Bell state (|00> + |11>)/√2.
        let inv_sqrt2 = 1.0 / 2f64.sqrt();
        assert!((u[(0, 0)].re - inv_sqrt2).abs() < 1e-12);
        assert!((u[(3, 0)].re - inv_sqrt2).abs() < 1e-12);
        assert!(u[(1, 0)].abs() < 1e-12);
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn inverse_cancels_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Rz(0.8), &[1]);
        c.push(Gate::Cnot, &[0, 2]);
        c.push(Gate::Rzz(1.1), &[1, 2]);
        c.push(Gate::T, &[2]);
        let mut full = c.clone();
        full.extend(&c.inverse());
        assert!(full.unitary().is_identity_up_to_phase(1e-10));
    }

    #[test]
    fn extend_mapped_remaps_qubits() {
        let mut small = Circuit::new(2);
        small.push(Gate::Cnot, &[0, 1]);
        let mut big = Circuit::new(4);
        big.extend_mapped(&small, &[3, 1]);
        assert_eq!(big.instructions()[0].qubits, vec![3, 1]);
    }

    #[test]
    fn interaction_edges_accumulate_weights() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot, &[0, 1]);
        c.push(Gate::Cnot, &[1, 0]);
        c.push(Gate::Cz, &[1, 2]);
        let mut edges = c.interaction_edges();
        edges.sort_by_key(|e| (e.0, e.1));
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].0, 0);
        assert!((edges[0].2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_unitary_matches_kron_for_disjoint_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::X, &[0]);
        c.push(Gate::H, &[1]);
        let want = pauli::sigma_x().kron(&pauli::hadamard());
        assert!(c.unitary().approx_eq(&want, 1e-12));
    }

    #[test]
    fn without_identities_removes_only_identities() {
        let mut c = Circuit::new(2);
        c.push(Gate::I, &[0]);
        c.push(Gate::Rz(0.0), &[1]);
        c.push(Gate::X, &[0]);
        assert_eq!(c.without_identities().len(), 1);
    }

    #[test]
    fn from_iterator_builds_circuit() {
        let c: Circuit = vec![
            Instruction::new(Gate::H, vec![0]),
            Instruction::new(Gate::Cnot, vec![0, 2]),
        ]
        .into_iter()
        .collect();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::X, &[5]);
    }

    #[test]
    #[should_panic]
    fn duplicate_qubit_panics() {
        Instruction::new(Gate::Cnot, vec![1, 1]);
    }
}
