//! Property-based tests for the IR layer: random circuits keep their semantics
//! through QASM round-trips, commuting swaps, and flattening.

use proptest::prelude::*;
use qcc_ir::{commute, decompose, qasm, Circuit, Gate};

/// Strategy producing a random gate on a register of `n` qubits.
fn arb_instruction(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let single = (0usize..8, 0..n, -3.0f64..3.0).prop_map(|(kind, q, theta)| {
        let gate = match kind {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::T,
            3 => Gate::S,
            4 => Gate::Rx(theta),
            5 => Gate::Ry(theta),
            6 => Gate::Rz(theta),
            _ => Gate::Phase(theta),
        };
        (gate, vec![q])
    });
    let double = (0usize..5, 0..n, 0..n, -3.0f64..3.0).prop_filter_map(
        "distinct qubits",
        |(kind, a, b, theta)| {
            if a == b {
                return None;
            }
            let gate = match kind {
                0 => Gate::Cnot,
                1 => Gate::Cz,
                2 => Gate::Swap,
                3 => Gate::Rzz(theta),
                _ => Gate::CPhase(theta),
            };
            Some((gate, vec![a, b]))
        },
    );
    prop_oneof![single, double]
}

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_instruction(n), 1..max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (g, qs) in gates {
            c.push(g, &qs);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// QASM round-trips preserve the circuit exactly.
    #[test]
    fn qasm_roundtrip_preserves_semantics(c in arb_circuit(4, 12)) {
        let text = qasm::write(&c);
        let parsed = qasm::parse(&text).expect("reparse");
        prop_assert_eq!(parsed.len(), c.len());
        prop_assert!(parsed.unitary().approx_eq(&c.unitary(), 1e-9));
    }

    /// Swapping two adjacent instructions that the structural check says
    /// commute never changes the circuit unitary.
    #[test]
    fn structural_commutation_is_sound(c in arb_circuit(4, 12), idx in 0usize..20) {
        let insts = c.instructions();
        if insts.len() < 2 {
            return Ok(());
        }
        let i = idx % (insts.len() - 1);
        let a = &insts[i];
        let b = &insts[i + 1];
        if commute::commute_structural(a, b) {
            let mut swapped = Circuit::new(c.n_qubits());
            for (k, inst) in insts.iter().enumerate() {
                if k == i {
                    swapped.push_instruction(insts[i + 1].clone());
                } else if k == i + 1 {
                    swapped.push_instruction(insts[i].clone());
                } else {
                    swapped.push_instruction(inst.clone());
                }
            }
            prop_assert!(swapped.unitary().approx_eq(&c.unitary(), 1e-9));
        }
    }

    /// The exact commutation check agrees with a direct comparison of the two
    /// full-register orderings.
    #[test]
    fn exact_commutation_matches_full_register(c in arb_circuit(3, 6)) {
        let insts = c.instructions();
        if insts.len() < 2 {
            return Ok(());
        }
        let a = &insts[0];
        let b = &insts[1];
        let n = c.n_qubits();
        let ma = a.embedded_matrix(n);
        let mb = b.embedded_matrix(n);
        let full_commute = ma.matmul(&mb).approx_eq(&mb.matmul(&ma), 1e-9);
        prop_assert_eq!(commute::commute_exact(a, b), full_commute);
    }

    /// Flattening (Toffoli decomposition) preserves the unitary up to phase.
    #[test]
    fn flatten_preserves_unitary(a in 0usize..3, b in 0usize..3, t in 0usize..3) {
        if a == b || b == t || a == t {
            return Ok(());
        }
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[a]);
        c.push(Gate::Toffoli, &[a, b, t]);
        c.push(Gate::Rz(0.4), &[t]);
        let flat = decompose::flatten(&c);
        prop_assert!(flat.instructions().iter().all(|i| i.qubits.len() <= 2));
        prop_assert!(flat.unitary().approx_eq_up_to_phase(&c.unitary(), 1e-9));
    }

    /// Circuit inverse composes to the identity.
    #[test]
    fn inverse_composes_to_identity(c in arb_circuit(3, 10)) {
        let mut full = c.clone();
        full.extend(&c.inverse());
        prop_assert!(full.unitary().is_identity_up_to_phase(1e-8));
    }

    /// Depth never exceeds the instruction count and is at least
    /// ceil(len / n_qubits) for non-empty circuits.
    #[test]
    fn depth_bounds(c in arb_circuit(4, 16)) {
        let d = c.depth();
        prop_assert!(d <= c.len());
        prop_assert!(d >= 1);
    }

    /// Instruction byte encodings decode back bit-identically (the snapshot
    /// format is layered over this encoding), and the concatenated stream is
    /// self-delimiting: decoding consumes exactly the bytes written.
    #[test]
    fn instruction_encoding_round_trips(c in arb_circuit(5, 14)) {
        let mut buf = Vec::new();
        for inst in c.instructions() {
            inst.encode_into(&mut buf);
        }
        let mut cur = qcc_ir::ByteCursor::new(&buf);
        for inst in c.instructions() {
            let decoded = qcc_ir::Instruction::decode_from(&mut cur).expect("round trip");
            // Bit-identity: the decoded instruction re-encodes to the same bytes.
            let (mut a, mut b) = (Vec::new(), Vec::new());
            decoded.encode_into(&mut a);
            inst.encode_into(&mut b);
            prop_assert_eq!(a, b);
            prop_assert_eq!(&decoded.qubits, &inst.qubits);
        }
        prop_assert!(cur.is_empty());
    }
}
