//! Replay regression for the SHiP-style compile cache: a working set of hot
//! recipes interleaved with streams of one-shot fillers. The reuse predictor
//! must keep the hot set resident — where a plain LRU demonstrably thrashes
//! and serves zero hits on the identical request stream.

use qcc::compiler::{CachePolicy, CompileService, CompilerOptions, Strategy};
use qcc::hw::Device;
use qcc::ir::{Circuit, Gate};

const CAPACITY: usize = 4;
const HOT: usize = 4;
const FILLERS_PER_ROUND: usize = 6;
const ROUNDS: usize = 4;

/// A tiny circuit whose request key is unique per `tag` (distinct Rz angle).
fn keyed_circuit(tag: usize) -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Gate::H, &[0]);
    c.push(Gate::Cnot, &[0, 1]);
    c.push(Gate::Rz(0.001 + tag as f64 * 1.0e-6), &[1]);
    c
}

/// Replays `ROUNDS` rounds of (hot set, then fresh one-shot fillers) against
/// a service with the given eviction policy; returns (hits, misses).
fn replay(policy: CachePolicy) -> (usize, usize) {
    let device = Device::transmon_line(2);
    let service = CompileService::new(&device)
        .with_threads(1)
        .with_compile_cache_policy(CAPACITY, policy);
    let options = CompilerOptions::strategy(Strategy::IsaBaseline);
    let mut filler_tag = 1_000;
    for _ in 0..ROUNDS {
        for hot in 0..HOT {
            service.compile(&keyed_circuit(hot), &options).unwrap();
        }
        for _ in 0..FILLERS_PER_ROUND {
            service
                .compile(&keyed_circuit(filler_tag), &options)
                .unwrap();
            filler_tag += 1;
        }
    }
    let stats = service.compile_cache_stats();
    if policy == CachePolicy::Ship {
        // The predictor actually trained on the hot signatures and actually
        // flagged the filler stream as one-shot.
        assert!(stats.trained_signatures >= HOT - 1, "{stats:?}");
        assert!(stats.predicted_one_shot > 0, "{stats:?}");
    }
    (stats.hits, stats.misses)
}

#[test]
fn ship_keeps_hot_recipes_resident_where_plain_lru_thrashes() {
    let (lru_hits, lru_misses) = replay(CachePolicy::PlainLru);
    let (ship_hits, ship_misses) = replay(CachePolicy::Ship);

    // Plain LRU: every round the six fillers sweep the four-entry cache, so
    // the hot set is gone before it comes back around. Zero hits, ever.
    assert_eq!(lru_hits, 0);
    assert_eq!(
        lru_misses,
        ROUNDS * (HOT + FILLERS_PER_ROUND),
        "every request misses under plain LRU"
    );

    // SHiP: one-shot-predicted fillers enter at the eviction end and churn
    // each other, so from round two on the trained hot recipes hit.
    let expected_ship_hits = (ROUNDS - 1) * (HOT - 1);
    assert_eq!(ship_hits, expected_ship_hits);
    assert!(ship_hits + ship_misses == lru_hits + lru_misses);
    assert!(
        ship_hits > lru_hits,
        "SHiP ({ship_hits} hits) must beat plain LRU ({lru_hits} hits)"
    );
}
