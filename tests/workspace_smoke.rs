//! Workspace-wiring smoke tests.
//!
//! These guard the Cargo manifests themselves: every sub-crate must be
//! reachable through the umbrella crate's re-exports, and the full pipeline
//! must run for **every** `Strategy` variant on a small device. A manifest
//! regression (dropped dependency, renamed crate, broken re-export) fails
//! here loudly instead of surfacing as a confusing downstream error.

use qcc::compiler::{compile_with_default_model, verify_compilation, CompilerOptions, Strategy};
use qcc::hw::Device;
use qcc::ir::{Circuit, Gate};

/// A small circuit with commuting diagonal blocks so every strategy has
/// something to schedule, aggregate, and hand-optimize.
fn small_workload() -> Circuit {
    let mut c = Circuit::new(3);
    for q in 0..3 {
        c.push(Gate::H, &[q]);
    }
    for &(a, b) in &[(0usize, 1usize), (1, 2), (0, 2)] {
        c.push(Gate::Cnot, &[a, b]);
        c.push(Gate::Rz(0.73), &[b]);
        c.push(Gate::Cnot, &[a, b]);
    }
    for q in 0..3 {
        c.push(Gate::Rx(0.41), &[q]);
    }
    c
}

#[test]
fn every_strategy_compiles_on_a_small_device() {
    let circuit = small_workload();
    let device = Device::transmon_line(3);
    for strategy in Strategy::all() {
        let result =
            compile_with_default_model(&circuit, &device, &CompilerOptions::strategy(strategy));
        assert_eq!(result.strategy, strategy, "strategy echoed back");
        assert!(
            result.total_latency_ns > 0.0,
            "{}: latency must be positive",
            strategy.name()
        );
        assert!(
            !result.instructions.is_empty(),
            "{}: instruction stream must be non-empty",
            strategy.name()
        );
        assert_eq!(
            result.latencies.len(),
            result.instructions.len(),
            "{}: one latency per instruction",
            strategy.name()
        );
    }
}

#[test]
fn every_strategy_preserves_circuit_semantics() {
    let circuit = small_workload();
    let device = Device::transmon_line(3);
    for strategy in Strategy::all() {
        let result =
            compile_with_default_model(&circuit, &device, &CompilerOptions::strategy(strategy));
        let check = verify_compilation(&circuit, &result);
        assert!(
            check.equivalent,
            "{}: compiled program must be semantically equivalent (max deviation {})",
            strategy.name(),
            check.max_deviation
        );
    }
}

#[test]
fn aggregation_beats_the_isa_baseline_on_the_smoke_workload() {
    let circuit = small_workload();
    let device = Device::transmon_line(3);
    let baseline = compile_with_default_model(
        &circuit,
        &device,
        &CompilerOptions::strategy(Strategy::IsaBaseline),
    );
    let aggregated = compile_with_default_model(
        &circuit,
        &device,
        &CompilerOptions::strategy(Strategy::ClsAggregation),
    );
    assert!(
        aggregated.total_latency_ns < baseline.total_latency_ns,
        "aggregation ({} ns) should beat the baseline ({} ns)",
        aggregated.total_latency_ns,
        baseline.total_latency_ns
    );
}

#[test]
fn umbrella_reexports_reach_every_subcrate() {
    // One cheap call into each re-exported sub-crate; a missing manifest
    // dependency or broken `pub use` breaks this test at compile time.
    let _ = qcc::math::CMatrix::identity(2);
    let _ = qcc::graph::Graph::new(2);
    let _ = qcc::ir::Circuit::new(1);
    let _ = qcc::sim::StateVector::zero(1);
    let _ = qcc::hw::Device::transmon_line(2);
    let _ = qcc::control::GrapeConfig::fast();
    let _ = qcc::workloads::qaoa::paper_triangle_example();
    let _ = qcc::compiler::Strategy::all();
}
