//! Bit-exact equivalence of the pass-pipeline compiler with the pre-refactor
//! monolithic `Compiler::compile`.
//!
//! The golden values below were captured from the monolith (single-threaded,
//! calibrated model) **before** the pass-pipeline refactor, for every
//! `Strategy` on the QAOA and Ising workloads of the paper's evaluation. The
//! refactored driver must reproduce them bit for bit: `total_bits` is the raw
//! IEEE-754 representation of `total_latency_ns`, and the two hashes are
//! FNV-1a over the bit patterns of the per-instruction latency vector and of
//! the `(index, start, duration)` triples of the final schedule.

use qcc::compiler::{AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::ir::Circuit;
use qcc::workloads::{ising, qaoa};

struct Golden {
    instructions: usize,
    swaps: usize,
    total_bits: u64,
    latency_hash: u64,
    schedule_hash: u64,
}

fn fnv1a(bits: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn workloads() -> Vec<(&'static str, Circuit, Device)> {
    vec![
        (
            "qaoa_triangle",
            qaoa::paper_triangle_example(),
            Device::transmon_line(3),
        ),
        (
            "qaoa_maxcut_line_8",
            qaoa::maxcut_line(8),
            Device::transmon_grid(8),
        ),
        (
            "ising_chain_8",
            ising::ising_chain(8),
            Device::transmon_grid(8),
        ),
    ]
}

#[rustfmt::skip]
fn golden() -> Vec<(&'static str, Strategy, Golden)> {
    vec![
        ("qaoa_triangle", Strategy::IsaBaseline, Golden { instructions: 17, swaps: 2, total_bits: 0x40755eedf68e8b65, latency_hash: 0xb8a8baa1495f213a, schedule_hash: 0xce6543020416514f }),
        ("qaoa_triangle", Strategy::Cls, Golden { instructions: 11, swaps: 2, total_bits: 0x40755eedf68e8b65, latency_hash: 0xf454accef8fd7128, schedule_hash: 0x4c20e90093ec1797 }),
        ("qaoa_triangle", Strategy::AggregationOnly, Golden { instructions: 7, swaps: 2, total_bits: 0x4056a54dc9463088, latency_hash: 0xe63f306a5dd1ce76, schedule_hash: 0xbb027fbf72afb0ef }),
        ("qaoa_triangle", Strategy::ClsAggregation, Golden { instructions: 7, swaps: 2, total_bits: 0x4056a54dc9463088, latency_hash: 0xe63f306a5dd1ce76, schedule_hash: 0xbb027fbf72afb0ef }),
        ("qaoa_triangle", Strategy::ClsHandOptimized, Golden { instructions: 11, swaps: 2, total_bits: 0x406d35a57a60415d, latency_hash: 0x7fc0c3c6f955278b, schedule_hash: 0x9cb650aeee5ed884 }),
        ("qaoa_maxcut_line_8", Strategy::IsaBaseline, Golden { instructions: 39, swaps: 2, total_bits: 0x40846eb1accc9fd3, latency_hash: 0x101815ff518fdb1b, schedule_hash: 0xf527ff3129b78af0 }),
        ("qaoa_maxcut_line_8", Strategy::Cls, Golden { instructions: 28, swaps: 5, total_bits: 0x40817b45a7a89c3b, latency_hash: 0x09783735bd30248e, schedule_hash: 0x2bff890e82ef9b30 }),
        ("qaoa_maxcut_line_8", Strategy::AggregationOnly, Golden { instructions: 17, swaps: 2, total_bits: 0x405fec52080eb53b, latency_hash: 0x9f89dcd53344612a, schedule_hash: 0x029dfef9d2b31d92 }),
        ("qaoa_maxcut_line_8", Strategy::ClsAggregation, Golden { instructions: 17, swaps: 2, total_bits: 0x405fec52080eb53b, latency_hash: 0x9f89dcd53344612a, schedule_hash: 0x029dfef9d2b31d92 }),
        ("qaoa_maxcut_line_8", Strategy::ClsHandOptimized, Golden { instructions: 28, swaps: 5, total_bits: 0x4079f111ad7dff81, latency_hash: 0xab3e39fb4a44a205, schedule_hash: 0x42728e2946bed552 }),
        ("ising_chain_8", Strategy::IsaBaseline, Golden { instructions: 74, swaps: 8, total_bits: 0x408806948dd29995, latency_hash: 0xdae4b3ddd84d58ad, schedule_hash: 0xeaccbc2c6b583fae }),
        ("ising_chain_8", Strategy::Cls, Golden { instructions: 46, swaps: 8, total_bits: 0x408806948dd29995, latency_hash: 0x6e2902e1812ac109, schedule_hash: 0x5716e64a18d280da }),
        ("ising_chain_8", Strategy::AggregationOnly, Golden { instructions: 19, swaps: 8, total_bits: 0x407c2418cedd79aa, latency_hash: 0x3ed56ff164eed1e0, schedule_hash: 0x7d0750e7fb4d4698 }),
        ("ising_chain_8", Strategy::ClsAggregation, Golden { instructions: 19, swaps: 8, total_bits: 0x407c2418cedd79aa, latency_hash: 0x3757a0c5f3034ad8, schedule_hash: 0x0e0f1846806f49f4 }),
        ("ising_chain_8", Strategy::ClsHandOptimized, Golden { instructions: 46, swaps: 8, total_bits: 0x40813553cbc1142b, latency_hash: 0xdac4445a79622795, schedule_hash: 0x4a4c2535d75f2cb1 }),
    ]
}

#[test]
fn every_strategy_reproduces_the_pre_refactor_monolith_bit_for_bit() {
    let workloads = workloads();
    for (name, strategy, expected) in golden() {
        let (_, circuit, device) = workloads
            .iter()
            .find(|(n, _, _)| *n == name)
            .expect("workload listed");
        let model = CalibratedLatencyModel::new(device.limits);
        let compiler = Compiler::new(device, &model).with_threads(1);
        let r = compiler.compile(
            circuit,
            &CompilerOptions {
                strategy,
                aggregation: AggregationOptions::default(),
            },
        );
        assert_eq!(
            r.instructions.len(),
            expected.instructions,
            "{name}/{strategy:?}: instruction count"
        );
        assert_eq!(r.swap_count, expected.swaps, "{name}/{strategy:?}: swaps");
        assert_eq!(
            r.total_latency_ns.to_bits(),
            expected.total_bits,
            "{name}/{strategy:?}: total latency {} != {}",
            r.total_latency_ns,
            f64::from_bits(expected.total_bits)
        );
        assert_eq!(
            fnv1a(r.latencies.iter().map(|l| l.to_bits())),
            expected.latency_hash,
            "{name}/{strategy:?}: per-instruction latency vector drifted"
        );
        assert_eq!(
            fnv1a(r.schedule.entries.iter().flat_map(|e| [
                e.index as u64,
                e.start.to_bits(),
                e.duration.to_bits()
            ])),
            expected.schedule_hash,
            "{name}/{strategy:?}: final schedule drifted"
        );
    }
}

#[test]
fn parallel_pipeline_matches_the_pinned_golden_values() {
    // The same pins must hold with the pricing fan-out enabled: thread count
    // must never leak into results.
    let workloads = workloads();
    for (name, strategy, expected) in golden() {
        let (_, circuit, device) = workloads
            .iter()
            .find(|(n, _, _)| *n == name)
            .expect("workload listed");
        let model = CalibratedLatencyModel::new(device.limits);
        let compiler = Compiler::new(device, &model).with_threads(8);
        let r = compiler.compile(
            circuit,
            &CompilerOptions {
                strategy,
                aggregation: AggregationOptions::default(),
            },
        );
        assert_eq!(
            r.total_latency_ns.to_bits(),
            expected.total_bits,
            "{name}/{strategy:?} (8 threads)"
        );
        assert_eq!(
            fnv1a(r.latencies.iter().map(|l| l.to_bits())),
            expected.latency_hash,
            "{name}/{strategy:?} (8 threads)"
        );
    }
}
