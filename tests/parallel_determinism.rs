//! Determinism of the parallel pricing engine: compiling with the thread pool
//! fanned out must produce latencies identical to the single-threaded path.
//!
//! The compiler parallelizes three pricing loops (initial latency vectoring in
//! aggregation, final pricing, and the 5-way strategy fan-out) behind the
//! sharded compute-once latency cache. All latency models are deterministic,
//! so thread scheduling must never leak into the results — these tests pin
//! that property on the QAOA and Ising workloads the paper evaluates.

use qcc::compiler::{AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc::control::GrapeLatencyModel;
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::ir::Circuit;
use qcc::workloads::{ising, qaoa};

/// Asserts two compilation results agree to 1e-12 in every latency (they are
/// in fact bit-identical for our deterministic models, but the public
/// guarantee is the tolerance).
fn assert_latencies_match(
    a: &qcc::compiler::CompilationResult,
    b: &qcc::compiler::CompilationResult,
    context: &str,
) {
    assert!(
        (a.total_latency_ns - b.total_latency_ns).abs() < 1e-12,
        "{context}: total latency {} vs {}",
        a.total_latency_ns,
        b.total_latency_ns
    );
    assert_eq!(a.latencies.len(), b.latencies.len(), "{context}");
    for (i, (x, y)) in a.latencies.iter().zip(b.latencies.iter()).enumerate() {
        assert!(
            (x - y).abs() < 1e-12,
            "{context}: instruction {i} priced {x} vs {y}"
        );
    }
    assert_eq!(a.swap_count, b.swap_count, "{context}");
    assert_eq!(a.instructions.len(), b.instructions.len(), "{context}");
}

#[test]
fn parallel_compare_strategies_matches_the_serial_path() {
    let workloads: Vec<(&str, Circuit)> = vec![
        ("MAXCUT-line-8", qaoa::maxcut_line(8)),
        ("MAXCUT-reg4-8", qaoa::maxcut_reg4(8, 11)),
        ("Ising-chain-8", ising::ising_chain(8)),
    ];
    for (name, circuit) in &workloads {
        let device = Device::transmon_grid(circuit.n_qubits());
        let model = CalibratedLatencyModel::new(device.limits);
        let parallel = Compiler::new(&device, &model).with_threads(8);
        let serial = Compiler::new(&device, &model).with_threads(1);

        let fanned_out = parallel.compare_strategies(circuit, AggregationOptions::default());
        for strategy in Strategy::all() {
            let reference = serial.compile(
                circuit,
                &CompilerOptions {
                    strategy,
                    aggregation: AggregationOptions::default(),
                },
            );
            assert_latencies_match(
                fanned_out.get(strategy),
                &reference,
                &format!("{name}/{strategy:?}"),
            );
        }
    }
}

#[test]
fn parallel_grape_pricing_matches_the_serial_path() {
    // The same property through the real optimal-control unit: one shared
    // GRAPE model priced from the pool must give the single-threaded answer
    // (compute-once cache + deterministic seeded solves).
    let circuit = qaoa::paper_triangle_example();
    let device = Device::transmon_line(3);
    let options = CompilerOptions {
        strategy: Strategy::ClsAggregation,
        aggregation: AggregationOptions::with_width(2),
    };

    let serial_model = GrapeLatencyModel::fast_two_qubit();
    let reference = Compiler::new(&device, &serial_model)
        .with_threads(1)
        .compile(&circuit, &options);

    let parallel_model = GrapeLatencyModel::fast_two_qubit();
    let parallel = Compiler::new(&device, &parallel_model)
        .with_threads(8)
        .compile(&circuit, &options);

    assert_latencies_match(&parallel, &reference, "GRAPE triangle");
    // Every key was solved exactly once despite the 8-way pricing fan-out.
    assert_eq!(
        parallel_model.solve_count(),
        parallel_model.cached_entries()
    );
}
