//! The persistent cache tier, end to end: compile → snapshot → fresh service
//! warm-start must perform **zero** new GRAPE solves and return bit-identical
//! `CompilationResult`s, across two distinct backend fingerprints with no
//! cross-lane aliasing — while corrupt, truncated, or mismatched snapshots
//! degrade to a cold start, never a panic and never a wrong latency.

use qcc::compiler::persist;
use qcc::compiler::{CompilationResult, CompileService, CompilerOptions, Strategy};
use qcc::control::GrapeLatencyModel;
use qcc::hw::{ControlLimits, Device, Topology};
use qcc::ir::{ByteCursor, Circuit, Gate};

/// A fresh scratch snapshot directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qcc-persist-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn triangle() -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Gate::H, &[0]);
    c.push(Gate::Cnot, &[0, 1]);
    c.push(Gate::Rz(0.5), &[1]);
    c.push(Gate::Cnot, &[0, 1]);
    c
}

fn second_circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Gate::X, &[0]);
    c.push(Gate::H, &[1]);
    c.push(Gate::Cnot, &[1, 0]);
    c
}

/// Bit-level equality of two results via the canonical codec: every float by
/// bit pattern, every instruction, report, and layout byte-for-byte.
fn result_bits(r: &CompilationResult) -> Vec<u8> {
    let mut bytes = Vec::new();
    persist::encode_result(r, &mut bytes);
    bytes
}

/// Like [`result_bits`] but with the per-pass telemetry reports stripped:
/// wall-clock timings and per-pass solve counters legitimately differ when a
/// result is *recomputed* rather than served from cache. Everything the
/// compilation actually produced — instructions, latencies, schedule, layouts,
/// aggregate stats — must still match bit for bit.
fn artifact_bits(r: &CompilationResult) -> Vec<u8> {
    let mut stripped = r.clone();
    stripped.reports.clear();
    result_bits(&stripped)
}

#[test]
fn warm_started_service_recompiles_with_zero_grape_solves_bit_identically() {
    let dir = scratch_dir("warm");
    let device = Device::transmon_line(2);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let circuits = [triangle(), second_circuit()];

    // First process: compile, snapshot.
    let grape = GrapeLatencyModel::fast_two_qubit();
    let service = CompileService::with_model(&device, Box::new(&grape)).with_threads(1);
    let originals: Vec<CompilationResult> = circuits
        .iter()
        .map(|c| service.compile(c, &options).unwrap())
        .collect();
    let solves_first_run = grape.solve_count();
    assert!(solves_first_run > 0, "GRAPE priced the first run");
    let written = service.snapshot_to(&dir).unwrap();
    assert!(written > 0);
    drop(service);
    drop(grape);

    // "Restart": a fresh model and service warm-start from the directory.
    let grape = GrapeLatencyModel::fast_two_qubit();
    let service = CompileService::with_model(&device, Box::new(&grape)).with_threads(1);
    let loaded = service.warm_start_from(&dir).unwrap();
    assert_eq!(loaded, written, "every record loads back");
    // (a) zero new GRAPE solves …
    let warm: Vec<CompilationResult> = circuits
        .iter()
        .map(|c| service.compile(c, &options).unwrap())
        .collect();
    assert_eq!(grape.solve_count(), 0, "warm start must re-solve nothing");
    // … via pure compile-cache hits …
    let stats = service.compile_cache_stats();
    assert_eq!((stats.hits, stats.misses), (2, 0));
    // … and (b) bit-identical results.
    for (orig, re) in originals.iter().zip(&warm) {
        assert_eq!(result_bits(orig), result_bits(re));
    }

    // Even with the compile-result cache disabled, the warm GRAPE cache alone
    // reprices the whole pipeline without one new solve, bit-identically.
    let grape2 = GrapeLatencyModel::fast_two_qubit();
    let uncached = CompileService::with_model(&device, Box::new(&grape2))
        .with_threads(1)
        .with_compile_cache(0);
    uncached.warm_start_from(&dir).unwrap();
    let recompiled = uncached.compile(&triangle(), &options).unwrap();
    assert_eq!(grape2.solve_count(), 0);
    assert_eq!(artifact_bits(&originals[0]), artifact_bits(&recompiled));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn two_backend_fingerprints_never_alias_in_one_snapshot_dir() {
    let dir = scratch_dir("fleet");
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let line = Device::transmon_line(2);
    let grid = Device::transmon_with(
        Topology::Linear(2),
        ControlLimits::asplos19().scaled_drives(1.5),
    );

    let grape_a = GrapeLatencyModel::fast_two_qubit();
    let grape_b = GrapeLatencyModel::new(
        ControlLimits::asplos19().scaled_drives(1.5),
        qcc::control::GrapeConfig::fast(),
        2,
    );
    let lane_a = CompileService::with_model(&line, Box::new(&grape_a)).with_threads(1);
    let lane_b = CompileService::with_model(&grid, Box::new(&grape_b)).with_threads(1);
    let result_a = lane_a.compile(&triangle(), &options).unwrap();
    let result_b = lane_b.compile(&triangle(), &options).unwrap();
    // Distinct calibrations genuinely price differently (the aliasing hazard
    // is real, not hypothetical).
    assert_ne!(
        result_a.total_latency_ns.to_bits(),
        result_b.total_latency_ns.to_bits()
    );
    // Both lanes snapshot into the *same* directory: four distinct files.
    lane_a.snapshot_to(&dir).unwrap();
    lane_b.snapshot_to(&dir).unwrap();
    assert_ne!(
        lane_a.result_snapshot_path(&dir),
        lane_b.result_snapshot_path(&dir)
    );
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(files, 4, "two lanes, two files each");

    // Fresh lanes warm-start from the shared directory: each gets its own
    // entries back, zero solves, and lane A's results never leak into lane B.
    let fresh_a = GrapeLatencyModel::fast_two_qubit();
    let fresh_b = GrapeLatencyModel::new(
        ControlLimits::asplos19().scaled_drives(1.5),
        qcc::control::GrapeConfig::fast(),
        2,
    );
    let warm_a = CompileService::with_model(&line, Box::new(&fresh_a)).with_threads(1);
    let warm_b = CompileService::with_model(&grid, Box::new(&fresh_b)).with_threads(1);
    warm_a.warm_start_from(&dir).unwrap();
    warm_b.warm_start_from(&dir).unwrap();
    let re_a = warm_a.compile(&triangle(), &options).unwrap();
    let re_b = warm_b.compile(&triangle(), &options).unwrap();
    assert_eq!(fresh_a.solve_count(), 0);
    assert_eq!(fresh_b.solve_count(), 0);
    assert_eq!(result_bits(&result_a), result_bits(&re_a));
    assert_eq!(result_bits(&result_b), result_bits(&re_b));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn result_codec_round_trips_every_field_bit_identically() {
    let device = Device::transmon_line(2);
    let grape = GrapeLatencyModel::fast_two_qubit();
    let service = CompileService::with_model(&device, Box::new(&grape)).with_threads(1);
    for strategy in Strategy::all() {
        let result = service
            .compile(&triangle(), &CompilerOptions::strategy(strategy))
            .unwrap();
        let mut bytes = Vec::new();
        persist::encode_result(&result, &mut bytes);
        let mut cur = ByteCursor::new(&bytes);
        let decoded = persist::decode_result(&mut cur).unwrap();
        assert!(cur.is_empty(), "codec is self-delimiting");
        // Re-encoding the decoded result reproduces the bytes exactly —
        // fields round-trip bit-for-bit (floats by bit pattern, pass names
        // interned, wall times at nanosecond precision).
        assert_eq!(result_bits(&decoded), bytes);
        assert_eq!(decoded.strategy, result.strategy);
        assert_eq!(decoded.instructions, result.instructions);
        assert_eq!(
            decoded.total_latency_ns.to_bits(),
            result.total_latency_ns.to_bits()
        );
        assert_eq!(decoded.reports, result.reports);
        assert_eq!(decoded.initial_layout, result.initial_layout);
        assert_eq!(decoded.final_layout, result.final_layout);
        // Truncation never panics and never yields a result.
        for cut in 0..bytes.len() {
            let mut cur = ByteCursor::new(&bytes[..cut]);
            assert!(persist::decode_result(&mut cur).is_err(), "prefix {cut}");
        }
    }
}

#[test]
fn corrupt_or_truncated_snapshots_degrade_to_cold_start() {
    let dir = scratch_dir("corrupt");
    let device = Device::transmon_line(2);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);

    let grape = GrapeLatencyModel::fast_two_qubit();
    let service = CompileService::with_model(&device, Box::new(&grape)).with_threads(1);
    let original = service.compile(&triangle(), &options).unwrap();
    service.snapshot_to(&dir).unwrap();
    let result_path = service.result_snapshot_path(&dir);
    let model_path = service.model_snapshot_path(&dir).unwrap();

    // Corrupt one byte in the middle of each file.
    for path in [&result_path, &model_path] {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(path, &bytes).unwrap();
    }
    let grape2 = GrapeLatencyModel::fast_two_qubit();
    let cold = CompileService::with_model(&device, Box::new(&grape2)).with_threads(1);
    // Strict API rejects; boot API degrades to zero records, no panic.
    assert!(cold.warm_start_from(&dir).is_err());
    assert_eq!(cold.warm_start_or_cold(&dir), 0);
    assert_eq!(cold.compile_cache_stats().entries, 0);
    // The cold service still compiles correctly — and identically.
    let recomputed = cold.compile(&triangle(), &options).unwrap();
    assert!(grape2.solve_count() > 0, "cold start re-solves");
    assert_eq!(artifact_bits(&original), artifact_bits(&recomputed));

    // Truncated files: every strict prefix of the result snapshot fails the
    // load and leaves the service cold.
    let grape3 = GrapeLatencyModel::fast_two_qubit();
    let service3 = CompileService::with_model(&device, Box::new(&grape3)).with_threads(1);
    service3.compile(&triangle(), &options).unwrap();
    service3.snapshot_to(&dir).unwrap();
    let full = std::fs::read(&result_path).unwrap();
    for cut in [0, 1, full.len() / 2, full.len() - 1] {
        std::fs::write(&result_path, &full[..cut]).unwrap();
        let grape4 = GrapeLatencyModel::fast_two_qubit();
        let s = CompileService::with_model(&device, Box::new(&grape4)).with_threads(1);
        assert_eq!(s.warm_start_or_cold(&dir), 0, "truncated at {cut}");
        assert_eq!(s.compile_cache_stats().entries, 0);
    }

    // A missing directory is an ordinary cold start too.
    let empty = scratch_dir("never-written");
    let s = CompileService::new(&device);
    assert_eq!(s.warm_start_or_cold(&empty), 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshots_from_a_different_calibration_are_rejected_by_name() {
    let dir = scratch_dir("stale");
    let device = Device::transmon_line(2);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);

    let grape = GrapeLatencyModel::fast_two_qubit();
    let service = CompileService::with_model(&device, Box::new(&grape)).with_threads(1);
    service.compile(&triangle(), &options).unwrap();
    service.snapshot_to(&dir).unwrap();

    // Same device, same model *name*, different GRAPE calibration: the model
    // snapshot file lands at a different fingerprint-hashed name, so the
    // stale-read hazard is the *result* snapshot — rename the old one into
    // the new service's expected path to simulate a stale deployment.
    let grape_recal = GrapeLatencyModel::new(
        ControlLimits::asplos19(),
        qcc::control::GrapeConfig {
            max_iterations: 40,
            ..qcc::control::GrapeConfig::fast()
        },
        2,
    );
    let recal = CompileService::with_model(&device, Box::new(&grape_recal)).with_threads(1);
    std::fs::rename(
        service.result_snapshot_path(&dir),
        recal.result_snapshot_path(&dir),
    )
    .unwrap();
    let err = recal.warm_start_from(&dir).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("fingerprint mismatch"), "{msg}");
    assert_eq!(recal.compile_cache_stats().entries, 0);
    // The boot path degrades the same rejection to a cold start.
    assert_eq!(recal.warm_start_or_cold(&dir), 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fleet_lanes_warm_start_from_one_directory() {
    use qcc::compiler::Fleet;
    use qcc::hw::Backend;

    let dir = scratch_dir("fleet-boot");
    let options = CompilerOptions::strategy(Strategy::Cls);
    let backends = vec![
        Backend::calibrated("alpha", Device::transmon_line(3)),
        Backend::calibrated(
            "beta",
            Device::transmon_with(
                Topology::Linear(3),
                ControlLimits::asplos19().scaled_drives(1.5),
            ),
        ),
    ];

    let mut fleet = Fleet::new(&backends).with_threads(1);
    let t1 = fleet.submit(&triangle(), &options);
    let t2 = fleet.submit(&second_circuit(), &options);
    fleet.run();
    let r1 = fleet.wait(t1).unwrap();
    let _ = fleet.wait(t2).unwrap();
    let written = fleet.snapshot_to(&dir).unwrap();
    assert!(written >= 2, "both lanes spilled something");

    // A rebooted fleet over the same backends warm-starts every lane and
    // serves the same requests from cache, bit-identically.
    let mut rebooted = Fleet::new(&backends).with_threads(1);
    let loaded = rebooted.warm_start_or_cold(&dir);
    assert_eq!(loaded, written);
    let t1 = rebooted.submit(&triangle(), &options);
    rebooted.run();
    let r1_again = rebooted.wait(t1).unwrap();
    assert_eq!(result_bits(&r1), result_bits(&r1_again));

    std::fs::remove_dir_all(&dir).unwrap();
}
