//! Cross-crate integration tests: the full pipeline on the paper's worked
//! example and on small instances of every benchmark family.

use qcc::compiler::{verify_compilation, AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::workloads::{ising, qaoa, qft, uccsd};

fn compile(circuit: &qcc::ir::Circuit, strategy: Strategy) -> qcc::compiler::CompilationResult {
    let device = Device::transmon_grid(circuit.n_qubits());
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    compiler.compile(
        circuit,
        &CompilerOptions {
            strategy,
            aggregation: AggregationOptions::default(),
        },
    )
}

#[test]
fn qaoa_triangle_matches_paper_shape() {
    // The worked example of §3.1: gate-based vs aggregated compilation should
    // differ by roughly the paper's 2.97x (we accept anything ≥ 2x).
    let circuit = qaoa::paper_triangle_example();
    let device = Device::transmon_line(3);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    let isa = compiler
        .compile(&circuit, &CompilerOptions::strategy(Strategy::IsaBaseline))
        .total_latency_ns;
    let agg = compiler
        .compile(
            &circuit,
            &CompilerOptions::strategy(Strategy::ClsAggregation),
        )
        .total_latency_ns;
    assert!(isa > 200.0 && isa < 800.0, "ISA latency {isa} ns");
    assert!(agg < isa / 2.0, "aggregated {agg} vs ISA {isa}");
}

#[test]
fn strategy_ordering_holds_on_every_small_benchmark() {
    // CLS+Aggregation must never lose to the ISA baseline, and CLS alone must
    // never lose either (it only reorders commuting instructions).
    let circuits = vec![
        qaoa::maxcut_line(8),
        ising::ising_chain(8),
        uccsd::uccsd_benchmark(4),
        qft::qft(6),
    ];
    for circuit in circuits {
        let isa = compile(&circuit, Strategy::IsaBaseline).total_latency_ns;
        let cls = compile(&circuit, Strategy::Cls).total_latency_ns;
        let agg = compile(&circuit, Strategy::ClsAggregation).total_latency_ns;
        // CLS may perturb routing slightly (it optimizes parallelism, not SWAP
        // count — §3.3.2), so allow a few percent of slack on small circuits.
        assert!(cls <= isa * 1.05, "CLS {cls} > ISA {isa}");
        assert!(agg <= cls * 1.05, "CLS+Agg {agg} > CLS {cls}");
        assert!(
            agg < 0.8 * isa,
            "aggregation should clearly beat the baseline: {agg} vs {isa}"
        );
    }
}

#[test]
fn compilation_preserves_semantics_for_all_strategies() {
    let circuits = vec![
        qaoa::maxcut_line(5),
        ising::ising_chain(5),
        uccsd::uccsd_benchmark(4),
        qft::qft(4),
    ];
    for circuit in circuits {
        for strategy in Strategy::all() {
            // Use a line device so routing SWAPs are exercised.
            let device = Device::transmon_line(circuit.n_qubits());
            let model = CalibratedLatencyModel::new(device.limits);
            let compiler = Compiler::new(&device, &model);
            let result = compiler.compile(&circuit, &CompilerOptions::strategy(strategy));
            let check = verify_compilation(&circuit, &result);
            assert!(
                check.equivalent,
                "{strategy:?} corrupted a {}-qubit circuit (deviation {:.3e})",
                circuit.n_qubits(),
                check.max_deviation
            );
        }
    }
}

#[test]
fn commutative_workloads_benefit_from_cls_serial_ones_do_not() {
    // MAXCUT (highly commutative) must gain from CLS alone; UCCSD (serial,
    // non-commutative) must not gain appreciably — §6.1 of the paper.
    let maxcut = qaoa::maxcut_line(10);
    let isa = compile(&maxcut, Strategy::IsaBaseline).total_latency_ns;
    let cls = compile(&maxcut, Strategy::Cls).total_latency_ns;
    assert!(
        cls < 0.8 * isa,
        "CLS gained too little on MAXCUT: {cls} vs {isa}"
    );

    let uccsd = uccsd::uccsd_benchmark(4);
    let isa_u = compile(&uccsd, Strategy::IsaBaseline).total_latency_ns;
    let cls_u = compile(&uccsd, Strategy::Cls).total_latency_ns;
    assert!(
        cls_u > 0.9 * isa_u,
        "CLS should barely help UCCSD: {cls_u} vs {isa_u}"
    );
}

#[test]
fn wider_instruction_limits_help_serial_circuits() {
    // Fig. 10's qualitative claim: a serialized application keeps improving as
    // the allowed instruction width grows.
    let circuit = uccsd::uccsd_benchmark(4);
    let device = Device::transmon_grid(circuit.n_qubits());
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    let lat = |width: usize| {
        compiler
            .compile(
                &circuit,
                &CompilerOptions {
                    strategy: Strategy::ClsAggregation,
                    aggregation: AggregationOptions::with_width(width),
                },
            )
            .total_latency_ns
    };
    let w2 = lat(2);
    let w4 = lat(4);
    assert!(
        w4 <= w2 + 1e-6,
        "width 4 ({w4}) should not be slower than width 2 ({w2})"
    );
    assert!(
        w4 < 0.95 * w2,
        "a serial circuit should keep gaining with width: {w4} vs {w2}"
    );
}

#[test]
fn swap_heavy_circuits_gain_more_from_aggregation() {
    // Fig. 11's qualitative claim, on a single workload: the same QAOA circuit
    // routed on a line (many SWAPs) gains more from aggregation relative to
    // CLS than when routed on an all-to-all device (no SWAPs).
    let circuit = qaoa::maxcut_reg4(8, 11);
    let ratio = |device: Device| {
        let model = CalibratedLatencyModel::new(device.limits);
        let compiler = Compiler::new(&device, &model);
        let cls = compiler
            .compile(&circuit, &CompilerOptions::strategy(Strategy::Cls))
            .total_latency_ns;
        let agg = compiler
            .compile(
                &circuit,
                &CompilerOptions::strategy(Strategy::ClsAggregation),
            )
            .total_latency_ns;
        agg / cls
    };
    let line = ratio(Device::transmon_line(8));
    let full = ratio(Device::transmon(qcc::hw::Topology::AllToAll(8)));
    assert!(
        line <= full + 0.05,
        "low-locality (line) ratio {line} should not exceed all-to-all ratio {full}"
    );
}
