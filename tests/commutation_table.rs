//! Table 2 of the paper: the four commutation-relation families, checked both
//! structurally and against the exact unitary comparison.

use qcc::ir::{commute, Gate, Instruction};

fn inst(gate: Gate, qubits: &[usize]) -> Instruction {
    Instruction::new(gate, qubits.to_vec())
}

#[test]
fn gates_on_disjoint_qubits_commute() {
    let pairs = [
        (inst(Gate::H, &[0]), inst(Gate::Rx(0.4), &[1])),
        (inst(Gate::Cnot, &[0, 1]), inst(Gate::Cnot, &[2, 3])),
        (inst(Gate::Swap, &[0, 1]), inst(Gate::Rzz(0.9), &[2, 3])),
    ];
    for (a, b) in pairs {
        assert!(commute::commute_structural(&a, &b));
        assert!(commute::commute_exact(&a, &b));
    }
}

#[test]
fn z_rotations_commute_with_controls() {
    let rz = inst(Gate::Rz(1.2), &[0]);
    let t = inst(Gate::T, &[0]);
    let cnot = inst(Gate::Cnot, &[0, 1]);
    let cz = inst(Gate::Cz, &[0, 1]);
    for z_like in [&rz, &t] {
        assert!(commute::commute_exact(z_like, &cnot));
        assert!(commute::commute_exact(z_like, &cz));
    }
    // …but not with the CNOT target.
    let rz_target = inst(Gate::Rz(1.2), &[1]);
    assert!(!commute::commute_exact(&rz_target, &cnot));
}

#[test]
fn diagonal_unitaries_commute_with_each_other() {
    let diagonals = [
        inst(Gate::Rzz(0.3), &[0, 1]),
        inst(Gate::CPhase(1.1), &[1, 2]),
        inst(Gate::Cz, &[0, 2]),
        inst(Gate::Rz(0.8), &[1]),
        inst(Gate::T, &[2]),
    ];
    for a in &diagonals {
        for b in &diagonals {
            assert!(
                commute::commute(a, b),
                "diagonal gates must commute: {a} vs {b}"
            );
        }
    }
}

#[test]
fn cnots_with_disjoint_controls_and_shared_target_commute() {
    let a = inst(Gate::Cnot, &[0, 2]);
    let b = inst(Gate::Cnot, &[1, 2]);
    assert!(commute::commute_exact(&a, &b));
    // Sharing the control also commutes; chaining control→target does not.
    assert!(commute::commute_exact(
        &inst(Gate::Cnot, &[0, 1]),
        &inst(Gate::Cnot, &[0, 2])
    ));
    assert!(!commute::commute_exact(
        &inst(Gate::Cnot, &[0, 1]),
        &inst(Gate::Cnot, &[1, 2])
    ));
}

#[test]
fn structural_check_is_sound_with_respect_to_exact_check() {
    // Over a broad set of gate pairs, a structural "commute" verdict is always
    // confirmed by the exact unitary comparison.
    let gates = [
        inst(Gate::H, &[0]),
        inst(Gate::X, &[1]),
        inst(Gate::Rz(0.7), &[0]),
        inst(Gate::Rx(0.7), &[1]),
        inst(Gate::Cnot, &[0, 1]),
        inst(Gate::Cnot, &[1, 2]),
        inst(Gate::Cnot, &[0, 2]),
        inst(Gate::Cz, &[1, 2]),
        inst(Gate::Swap, &[0, 2]),
        inst(Gate::ISwap, &[1, 2]),
        inst(Gate::Rzz(1.3), &[0, 1]),
    ];
    for a in &gates {
        for b in &gates {
            if commute::commute_structural(a, b) {
                assert!(commute::commute_exact(a, b), "false positive: {a} / {b}");
            }
        }
    }
}
